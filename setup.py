"""Setup shim for environments without the `wheel` package.

The offline evaluation environment has setuptools but not `wheel`, so
modern PEP 517 editable installs fail with `invalid command 'bdist_wheel'`.
Keeping a setup.py (and no [build-system] table in pyproject.toml) lets
`pip install -e .` fall back to the legacy `setup.py develop` path.
"""

from setuptools import setup

setup()
