"""Command-line interface for the StreamTune reproduction.

Every subcommand is a thin shell over :mod:`repro.api`: flags build a
declarative :class:`~repro.api.TuningPlan` / :class:`~repro.api.CampaignPlan`
(or load one from a config file) and a :class:`~repro.api.TuningSession`
executes it.  Component names — engines, prediction layers, queries —
resolve through the ``repro.api`` registries, so a newly registered
component is immediately available to every subcommand.

Subcommands mirror the library's lifecycle::

    python -m repro.cli history   --engine flink --records 3000 --output history.jsonl
    python -m repro.cli pretrain  --history history.jsonl --output model_dir
    python -m repro.cli tune      --model model_dir --query q5 --rates 3,10,5
    python -m repro.cli serve-campaigns --queries q1,q2,q5 --rates 3,7,4,2
    python -m repro.cli run-plan  campaign.toml --follow
    python -m repro.cli sweep     sweep.toml --record events.jsonl
    python -m repro.cli matrix    examples/matrix_smoke.toml --output BENCH_MATRIX.json
    python -m repro.cli perf      --smoke
    python -m repro.cli experiments --scale smoke

``history`` and ``pretrain`` persist their outputs, so a tuned model can
be built once and reused across tuning sessions (the paper's
offline/online split).  ``run-plan`` and ``sweep`` execute through the
streaming session: ``--follow`` prints one line per execution event as
campaigns progress and ``--record`` writes the full typed event stream
to a JSONL file.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import (
    ENGINES,
    MODELS,
    CampaignPlan,
    EventBus,
    JsonlRecorder,
    PlanError,
    ProgressPrinter,
    ResumeError,
    ResumeLog,
    SweepPlan,
    TuningPlan,
    TuningSession,
    UnknownComponentError,
    build_engine,
    discover_latest_log,
    load_plan,
    replace,
    resolve_query,
)
from repro.service import CampaignExecutionError
from repro.service.cache import SnapshotError
from repro.core.history import HistoryGenerator
from repro.core.persistence import load_history, save_history, save_pretrained
from repro.core.pretrain import pretrain
from repro.experiments.context import corpus
from repro.experiments.scale import resolve_scale
from repro.utils.tables import format_table


def _resolve_query(name: str, engine_name: str):
    """Back-compat alias for :func:`repro.api.resolve_query`."""
    return resolve_query(name, engine_name)


def _parse_rates(raw: str) -> tuple[float, ...]:
    """Parse a comma-separated multiplier list, failing fast when garbled."""
    tokens = [token.strip() for token in raw.split(",")]
    if any(not token for token in tokens):
        raise PlanError(
            f"--rates {raw!r} is malformed: empty entry in the "
            "comma-separated list"
        )
    try:
        return tuple(float(token) for token in tokens)
    except ValueError:
        raise PlanError(
            f"--rates {raw!r} is malformed: every entry must be a number"
        ) from None


def _parse_queries(raw: str) -> tuple[str, ...]:
    tokens = tuple(token.strip() for token in raw.split(","))
    if any(not token for token in tokens):
        raise PlanError(
            f"--queries {raw!r} is malformed: empty entry in the "
            "comma-separated list"
        )
    return tokens


# ----------------------------------------------------------------------
# offline lifecycle: history + pretrain
# ----------------------------------------------------------------------

def _cmd_history(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.scale)
    engine = build_engine(args.engine, seed=scale.seed)
    generator = HistoryGenerator(engine, seed=args.seed)
    records = generator.generate(corpus(args.engine), args.records)
    save_history(records, args.output)
    n_labelled = sum(r.n_labelled for r in records)
    n_bottlenecks = sum(r.n_bottlenecks for r in records)
    print(
        f"wrote {len(records)} records to {args.output} "
        f"({n_labelled} labelled operators, {n_bottlenecks} bottlenecks)"
    )
    return 0


def _cmd_pretrain(args: argparse.Namespace) -> int:
    records = load_history(args.history)
    scale = resolve_scale(args.scale)
    engine = build_engine(args.engine, seed=scale.seed)
    artifact = pretrain(
        records,
        max_parallelism=engine.max_parallelism,
        n_clusters=args.clusters,
        epochs=args.epochs,
        seed=args.seed,
    )
    save_pretrained(artifact, args.output)
    accuracies = ", ".join(f"{r.final_accuracy:.3f}" for r in artifact.reports)
    print(
        f"pre-trained {artifact.n_clusters} cluster encoder(s) "
        f"(accuracies: {accuracies}) -> {args.output}"
    )
    return 0


# ----------------------------------------------------------------------
# online lifecycle: tune one query / serve a fleet / run a plan file
# ----------------------------------------------------------------------

def _print_tuning_result(outcome) -> None:
    result = outcome.result
    rows = [
        (
            f"{multiplier:g}",
            process.final_total_parallelism,
            process.n_reconfigurations,
            process.n_backpressure_events,
            "yes" if process.converged else "no",
        )
        for multiplier, process in zip(result.multipliers, result.processes)
    ]
    print(
        format_table(
            ["rate (xWu)", "total parallelism", "reconfigs", "bp events", "converged"],
            rows,
            title=f"{result.method} tuning {outcome.spec_name}",
        )
    )


def _print_campaign_outcomes(session_result) -> None:
    rows = []
    for outcome in session_result.outcomes:
        result = outcome.result
        rows.append(
            (
                outcome.spec_name,
                result.n_processes,
                f"{result.average_reconfigurations:.2f}",
                result.total_backpressure_events,
                sum(p.final_total_parallelism for p in result.processes),
                f"{outcome.wall_seconds:.2f}s",
            )
        )
    print(
        format_table(
            ["query", "processes", "avg reconfigs", "bp events",
             "sum final parallelism", "wall"],
            rows,
            title=f"tuning service ({session_result.backend})",
        )
    )
    stats = session_result.cache_stats
    if stats:
        summary = ", ".join(
            f"{kind}: {values.get('hits', 0)}h/{values.get('misses', 0)}m"
            for kind, values in stats.items()
        )
        print(f"cache hits/misses — {summary}")


def _cmd_tune(args: argparse.Namespace) -> int:
    plan = TuningPlan(
        query=args.query,
        rates=_parse_rates(args.rates),
        engine=args.engine,
        layer=args.layer,
        model=args.model,
        scale=args.scale,
        seed=args.seed,
        cache_path=args.cache_path,
    )
    result = TuningSession().run(plan)
    _print_tuning_result(result.outcomes[0])
    return 0


def _cmd_serve_campaigns(args: argparse.Namespace) -> int:
    plan = CampaignPlan(
        queries=_parse_queries(args.queries),
        rates=_parse_rates(args.rates),
        rates_per_query=args.rates_per_query,
        engine=args.engine,
        backend=args.backend,
        workers=args.workers,
        layer=args.layer,
        prioritize_backpressure=not args.no_priority,
        model=args.model,
        scale=args.scale,
        seed=args.seed,
        cache_path=args.cache_path,
    )
    _print_campaign_outcomes(TuningSession().run(plan))
    return 0


def _event_bus(args: argparse.Namespace) -> tuple[EventBus | None, JsonlRecorder | None]:
    """The subscriber set ``--follow`` / ``--record`` asked for."""
    recorder = None
    subscribers = []
    if getattr(args, "follow", False):
        subscribers.append(ProgressPrinter())
    if getattr(args, "record", None):
        recorder = JsonlRecorder(args.record)
        subscribers.append(recorder)
    if not subscribers:
        return None, None
    return EventBus(*subscribers), recorder


def _print_sweep_result(sweep_result) -> None:
    rows = []
    for label, cell in sweep_result.scenarios:
        for outcome in cell.outcomes:
            result = outcome.result
            rows.append(
                (
                    label,
                    outcome.spec_name,
                    f"{result.average_reconfigurations:.2f}",
                    result.total_backpressure_events,
                    sum(p.final_total_parallelism for p in result.processes),
                    f"{outcome.wall_seconds:.2f}s",
                )
            )
    print(
        format_table(
            ["scenario", "query", "avg reconfigs", "bp events",
             "sum final parallelism", "wall"],
            rows,
            title=(
                f"sweep: {sweep_result.plan.n_scenarios} scenario(s), "
                f"{sweep_result.n_campaigns} campaign(s) in "
                f"{sweep_result.wall_seconds:.2f}s"
            ),
        )
    )


def _resume_log(plan, args: argparse.Namespace) -> ResumeLog | None:
    """Load ``--resume`` (if given) and say what it will save.

    ``--resume auto`` discovers the most recent ``*.jsonl`` record in the
    plan's record directory — the directory of ``--record`` when given,
    the working directory otherwise — excluding the current run's own
    ``--record`` target.
    """
    path = getattr(args, "resume", None)
    if path is None:
        return None
    if path == "auto":
        from pathlib import Path

        record = getattr(args, "record", None)
        directory = Path(record).parent if record else Path(".")
        path = discover_latest_log(
            directory, exclude={Path(record)} if record else frozenset()
        )
        print(f"resume: auto-discovered {path}", file=sys.stderr)
    log = ResumeLog.load(path)
    keys = plan.cell_keys()
    recorded, missing = log.covers(keys)
    print(
        f"resume: {len(recorded)} of {len(keys)} campaign(s) already "
        f"recorded in {log.path}; executing {len(missing)}",
        file=sys.stderr,
    )
    return log


def _run_with_events(plan, args: argparse.Namespace, session=None):
    """Execute a plan through the streaming session, honouring
    ``--follow``/``--record``/``--resume``, and return its result."""
    resume = _resume_log(plan, args)
    bus, recorder = _event_bus(args)
    try:
        result = (session or TuningSession()).run(plan, bus=bus, resume=resume)
    finally:
        if recorder is not None:
            recorder.close()
    # Subscriber failures are isolated by the bus so they never kill a
    # fleet, but the operator must still hear about them — a broken
    # --record target would otherwise fail silently.
    if bus is not None and bus.errors:
        _, _, first_error = bus.errors[0]
        print(
            f"warning: {len(bus.errors)} event subscriber failure(s); "
            f"first: {first_error}",
            file=sys.stderr,
        )
    if recorder is not None:
        if recorder.n_events:
            print(f"recorded {recorder.n_events} events -> {recorder.path}")
        else:
            print(f"warning: no events were recorded to {recorder.path}", file=sys.stderr)
    return result


def _apply_plan_overrides(plan, args: argparse.Namespace):
    overrides = {}
    if getattr(args, "backend", None) is not None:
        if isinstance(plan, TuningPlan):
            raise PlanError("--backend applies to campaign and sweep plans only")
        overrides["backend"] = args.backend
    if getattr(args, "workers", None) is not None:
        if isinstance(plan, TuningPlan):
            raise PlanError("--workers applies to campaign and sweep plans only")
        overrides["workers"] = args.workers
    if getattr(args, "scale", None) is not None:
        overrides["scale"] = args.scale
    if overrides:
        plan = replace(plan, **overrides)
    return plan


def _cmd_run_plan(args: argparse.Namespace) -> int:
    plan = _apply_plan_overrides(load_plan(args.plan), args)
    result = _run_with_events(plan, args)
    if isinstance(plan, TuningPlan):
        _print_tuning_result(result.outcomes[0])
    elif isinstance(plan, SweepPlan):
        _print_sweep_result(result)
    else:
        _print_campaign_outcomes(result)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    plan = load_plan(args.plan)
    if not isinstance(plan, SweepPlan):
        raise PlanError(
            f"{args.plan} holds a {type(plan).__name__} (kind "
            f"{plan.kind!r}); the sweep command needs kind = \"sweep\" — "
            "use run-plan for single plans"
        )
    plan = _apply_plan_overrides(plan, args)
    _print_sweep_result(_run_with_events(plan, args))
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    """Run a benchmark-matrix sweep and write its summary report."""
    import json

    from repro.scenarios import matrix_report

    plan = load_plan(args.plan)
    if not isinstance(plan, SweepPlan):
        raise PlanError(
            f"{args.plan} holds a {type(plan).__name__} (kind "
            f"{plan.kind!r}); the matrix command needs kind = \"sweep\" — "
            "a benchmark matrix is a sweep grid with a summary report"
        )
    plan = _apply_plan_overrides(plan, args)
    session = None
    if plan.backend == "distributed":
        # Same execution path as `dispatch`, defaults only: an ephemeral
        # local spool staffed by subprocess workers.
        from repro.distributed import DistributedSession

        session = DistributedSession()
    result = _run_with_events(plan, args, session=session)
    report = matrix_report(result, backend=plan.backend)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    _print_sweep_result(result)
    print(
        f"matrix report: {report['n_scenarios']} scenario(s), "
        f"{report['n_campaigns']} campaign cell(s) -> {args.output}"
    )
    return 0


# ----------------------------------------------------------------------
# the distributed fleet: worker agents + the dispatch coordinator
# ----------------------------------------------------------------------

def _cmd_worker(args: argparse.Namespace) -> int:
    import signal

    from repro.distributed import Spool, WorkerAgent

    if args.fault_plan is not None:
        from repro.faults import activate, load_fault_plan

        activate(load_fault_plan(args.fault_plan))
    spool = Spool(args.spool, ttl_seconds=args.ttl)
    agent = WorkerAgent(
        spool,
        worker_id=args.worker_id,
        poll_seconds=args.poll,
        exit_when_done=args.exit_when_done,
        max_cells=args.max_cells,
        fsync=not args.no_fsync,
    )

    def drain(signum, frame) -> None:
        agent.request_stop()

    # SIGTERM/SIGINT drain: finish the in-flight cell, then exit.  A
    # SIGKILL needs no handling at all — the lease expires and a peer
    # reclaims the cell.
    signal.signal(signal.SIGTERM, drain)
    signal.signal(signal.SIGINT, drain)
    print(
        f"worker {agent.worker_id} draining spool {spool.root} "
        f"(lease TTL {spool.ttl_seconds:g}s)",
        file=sys.stderr,
    )
    completed = agent.run()
    abandoned = (
        f", abandoned {agent.n_abandoned} reclaimed attempt(s)"
        if agent.n_abandoned else ""
    )
    print(
        f"worker {agent.worker_id} exiting: completed {completed} "
        f"cell(s){abandoned}",
        file=sys.stderr,
    )
    return 0


def _cmd_dispatch(args: argparse.Namespace) -> int:
    from repro.distributed import DistributedSession

    plan = load_plan(args.plan)
    if isinstance(plan, TuningPlan):
        raise PlanError(
            "dispatch executes campaign and sweep plans; a single-query "
            "TuningPlan gains nothing from a fleet — use run-plan"
        )
    overrides = {"backend": "distributed"}
    if args.spool_dir is not None:
        overrides["spool_dir"] = args.spool_dir
    plan = replace(plan, **overrides)
    session = DistributedSession(
        local_workers=args.local_workers,
        ttl_seconds=args.ttl,
        stall_seconds=args.stall_seconds,
        fsync=not args.no_fsync,
    )
    result = _run_with_events(plan, args, session=session)
    if isinstance(plan, SweepPlan):
        _print_sweep_result(result)
    else:
        _print_campaign_outcomes(result)
    return 0


# ----------------------------------------------------------------------
# the daemon: serve / submit / jobs
# ----------------------------------------------------------------------

def _cmd_soak(args: argparse.Namespace) -> int:
    import json

    from repro.faults.supervisor import (
        ChurnSpec,
        FleetSupervisor,
        RestartPolicy,
    )

    plan = load_plan(args.plan)
    if isinstance(plan, TuningPlan):
        raise PlanError(
            "soak churns a worker fleet over campaign and sweep plans; a "
            "single-query TuningPlan has no fleet to churn — use run-plan"
        )
    plan = replace(plan, backend="distributed")
    supervisor = FleetSupervisor(
        plan,
        workers=args.workers,
        churn=ChurnSpec(
            kills_per_worker=args.kills_per_worker,
            min_gap_cells=args.min_gap_cells,
            max_gap_cells=args.max_gap_cells,
            warmup_cells=args.warmup_cells,
            seed=args.seed,
        ),
        restart=RestartPolicy(max_restarts=args.max_restarts),
        ttl_seconds=args.ttl,
        stall_seconds=args.stall_seconds,
        spool_dir=args.spool_dir,
        fsync=not args.no_fsync,
        fault_plan=args.fault_plan,
    )
    progress = (
        None if args.json
        else (lambda message: print(message, file=sys.stderr))
    )
    report = supervisor.run(
        record=args.record,
        reference=not args.no_reference,
        progress=progress,
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
            )
    if args.json:
        print(json.dumps(
            report.deterministic_view(), indent=2, sort_keys=True
        ))
    else:
        verdict = "ok" if report.ok else "FAILED"
        checks = report.invariant_failures + (report.stream_failures or [])
        print(
            f"soak {verdict}: {report.n_cells} cell(s) on {report.workers} "
            f"worker(s), {len(report.kills)}/{len(report.schedule)} "
            f"scheduled kill(s), {report.unplanned_respawns} unplanned "
            f"respawn(s), {report.wall_seconds:.1f}s"
        )
        if report.stream_failures is not None and not report.stream_failures:
            print("event stream bit-identical to the sequential reference")
        for failure in checks:
            print(f"  violation: {failure}", file=sys.stderr)
        if report.error is not None:
            print(f"  error: {report.error}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.daemon import TuningDaemon

    daemon = TuningDaemon(
        host=args.host,
        port=args.port,
        ledger_dir=args.ledger_dir,
        max_queue_depth=args.max_queue_depth,
        cache_path=args.cache_path,
        resume=args.resume,
        fsync=not args.no_fsync,
        spool_dir=args.spool_dir,
    )

    def announce(ready) -> None:
        print(
            f"repro daemon serving on {ready.url} "
            f"(ledger: {ready.ledger_dir}); SIGTERM/SIGINT drains and exits",
            file=sys.stderr,
        )

    daemon.serve(on_ready=announce)
    print("repro daemon stopped cleanly", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.api import event_from_dict
    from repro.daemon import DaemonClient

    client = DaemonClient(args.url)
    job = client.submit_plan(
        args.plan, tenant=args.tenant, priority=args.priority
    )
    if args.json:
        print(json.dumps(job, sort_keys=True))
    else:
        print(
            f"submitted {job['job']} ({job['plan_kind']}, {job['n_cells']} "
            f"cell(s), tenant {job['tenant']}) -> "
            f"{client.url}/v1/jobs/{job['job']}"
        )
    if not (args.follow or args.wait):
        return 0
    printer = ProgressPrinter() if args.follow and not args.json else None
    for data in client.follow(job["job"]):
        if args.json and args.follow:
            print(json.dumps(data, sort_keys=True))
        elif printer is not None:
            try:
                printer(event_from_dict(data))
            except ValueError:
                pass  # a daemon newer than this client; skip unknown events
    final = client.job(job["job"])
    if args.json:
        print(json.dumps(final, sort_keys=True))
    else:
        suffix = f": {final['error']}" if final.get("error") else ""
        print(f"job {final['job']} {final['state']}{suffix}")
    return 1 if final["state"] == "failed" else 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from repro.daemon import DaemonClient

    client = DaemonClient(args.url)
    if args.events:
        for line in client.event_lines(args.events):
            print(line)
        return 0
    jobs = client.jobs(tenant=args.tenant, state=args.state)
    if args.json:
        for job in jobs:
            print(json.dumps(job, sort_keys=True))
        return 0
    rows = [
        (
            job["job"],
            job["tenant"],
            job["priority"],
            job["state"],
            job["plan_kind"],
            job["n_cells"],
            job["n_events"],
            "yes" if job["replayed"] else "no",
        )
        for job in jobs
    ]
    print(
        format_table(
            ["job", "tenant", "priority", "state", "kind", "cells",
             "events", "replayed"],
            rows,
            title=f"jobs at {client.url}",
        )
    )
    return 0


# ----------------------------------------------------------------------
# experiment harness passthroughs
# ----------------------------------------------------------------------

def _cmd_experiments(args: argparse.Namespace) -> int:
    import os

    os.environ["REPRO_SCALE"] = args.scale or "default"
    from repro.experiments.__main__ import main as run_all

    return run_all()


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    ablations.main(resolve_scale(args.scale))
    return 0


# ----------------------------------------------------------------------
# hot-path benchmarks
# ----------------------------------------------------------------------

def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import BENCHMARKS, run_perf

    if args.list:
        for bench in BENCHMARKS:
            print(f"{bench.name:<30} [{bench.hot_path}] {bench.description}")
        return 0
    only = None
    if args.only:
        only = [token.strip() for token in args.only.split(",") if token.strip()]
    return run_perf(
        smoke=args.smoke,
        only=only,
        output=args.output,
        baseline_path=args.baseline,
        tolerance=args.tolerance,
        gate_absolute=args.gate_absolute,
        update_baseline=args.update_baseline,
    )


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="StreamTune reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    engine_names = ENGINES.names()
    layer_names = MODELS.names()

    history = sub.add_parser("history", help="generate an execution history")
    history.add_argument("--engine", choices=engine_names, default="flink")
    history.add_argument("--records", type=int, default=3000)
    history.add_argument("--output", required=True)
    history.add_argument("--seed", type=int, default=7)
    history.add_argument("--scale", default=None)
    history.set_defaults(func=_cmd_history)

    pre = sub.add_parser("pretrain", help="cluster + pre-train encoders")
    pre.add_argument("--history", required=True)
    pre.add_argument("--output", required=True)
    pre.add_argument("--engine", choices=engine_names, default="flink")
    pre.add_argument("--clusters", type=int, default=None)
    pre.add_argument("--epochs", type=int, default=40)
    pre.add_argument("--seed", type=int, default=7)
    pre.add_argument("--scale", default=None)
    pre.set_defaults(func=_cmd_pretrain)

    tune = sub.add_parser("tune", help="tune a query through rate changes")
    tune.add_argument("--model", required=True, help="directory from `pretrain`")
    tune.add_argument(
        "--query",
        required=True,
        help="nexmark name (q1..q8) or PQP '<template>/<index>'",
    )
    tune.add_argument("--rates", default="3,10,5", help="comma-separated xWu multipliers")
    tune.add_argument("--engine", choices=engine_names, default="flink")
    tune.add_argument("--layer", choices=layer_names, default="svm")
    tune.add_argument("--seed", type=int, default=17)
    tune.add_argument("--scale", default=None)
    tune.add_argument(
        "--cache-path", default=None,
        help="persist the tuning cache set to this snapshot file",
    )
    tune.set_defaults(func=_cmd_tune)

    serve = sub.add_parser(
        "serve-campaigns",
        help="tune many queries concurrently through the tuning service",
    )
    serve.add_argument(
        "--queries",
        required=True,
        help="comma-separated query names (nexmark q1..q8 or '<template>/<index>')",
    )
    serve.add_argument(
        "--model", default=None, help="directory from `pretrain` (default: build at --scale)"
    )
    serve.add_argument("--rates", default="3,7,4,2", help="comma-separated xWu multipliers")
    serve.add_argument(
        "--rates-per-query",
        action="store_true",
        help="split --rates into one equal chunk per query (its length must "
        "then be a multiple of the query count) instead of sharing the trace",
    )
    serve.add_argument("--engine", choices=engine_names, default="flink")
    serve.add_argument(
        "--backend",
        choices=("sequential", "thread", "process", "distributed"),
        default="thread",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument("--layer", choices=layer_names, default="svm")
    serve.add_argument(
        "--no-priority",
        action="store_true",
        help="dispatch in submission order instead of backpressure-first",
    )
    serve.add_argument("--seed", type=int, default=17)
    serve.add_argument("--scale", default=None)
    serve.add_argument(
        "--cache-path", default=None,
        help="persist the service cache set to this snapshot file",
    )
    serve.set_defaults(func=_cmd_serve_campaigns)

    def add_stream_flags(command) -> None:
        command.add_argument(
            "--follow", action="store_true",
            help="print one line per execution event as campaigns progress",
        )
        command.add_argument(
            "--record", default=None, metavar="PATH",
            help="write the typed event stream to PATH as JSON lines "
                 "(overwrites an existing file)",
        )
        command.add_argument(
            "--resume", default=None, metavar="PATH",
            help="replay campaigns already recorded in PATH (a --record "
                 "JSONL log, possibly from an interrupted run) instead of "
                 "re-executing them; results are bit-identical to an "
                 "uninterrupted run.  PATH may be 'auto' to pick the most "
                 "recent *.jsonl log in the record directory (--record's "
                 "directory, else the working directory)",
        )

    run_plan = sub.add_parser(
        "run-plan", help="execute a TuningPlan/CampaignPlan/SweepPlan config file"
    )
    run_plan.add_argument("plan", help="path to a .json or .toml plan file")
    run_plan.add_argument(
        "--backend",
        choices=("sequential", "thread", "process", "distributed"),
        default=None,
        help="override the plan's worker-pool backend",
    )
    run_plan.add_argument("--workers", type=int, default=None)
    run_plan.add_argument("--scale", default=None, help="override the plan's scale")
    add_stream_flags(run_plan)
    run_plan.set_defaults(func=_cmd_run_plan)

    sweep = sub.add_parser(
        "sweep",
        help="run a SweepPlan scenario grid (engines x tuners x rate traces)",
    )
    sweep.add_argument("plan", help="path to a .json or .toml sweep-plan file")
    sweep.add_argument(
        "--backend",
        choices=("sequential", "thread", "process", "distributed"),
        default=None,
        help="override the sweep's worker-pool backend",
    )
    sweep.add_argument("--workers", type=int, default=None)
    sweep.add_argument("--scale", default=None, help="override the sweep's scale")
    add_stream_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    matrix = sub.add_parser(
        "matrix",
        help="run a SweepPlan benchmark grid (queries x tuners x engines x "
             "traces x chaos) and write a machine-readable summary report",
    )
    matrix.add_argument("plan", help="path to a .json or .toml sweep-plan file")
    matrix.add_argument(
        "--backend",
        choices=("sequential", "thread", "process", "distributed"),
        default=None,
        help="override the matrix's worker-pool backend",
    )
    matrix.add_argument("--workers", type=int, default=None)
    matrix.add_argument("--scale", default=None, help="override the matrix's scale")
    matrix.add_argument(
        "--output", default="BENCH_MATRIX.json", metavar="PATH",
        help="summary report target (default: %(default)s)",
    )
    add_stream_flags(matrix)
    matrix.set_defaults(func=_cmd_matrix)

    from repro.distributed.spool import DEFAULT_TTL_SECONDS

    worker = sub.add_parser(
        "worker",
        help="run a long-lived worker agent claiming campaign cells from "
             "a shared work spool (see `dispatch`)",
    )
    worker.add_argument("spool", help="the spool directory to drain")
    worker.add_argument(
        "--ttl", type=float, default=DEFAULT_TTL_SECONDS, metavar="SECONDS",
        help="lease time-to-live; a worker silent this long is presumed "
             "dead and its cells are reclaimed (default: %(default)s)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle delay between spool scans (default: %(default)s)",
    )
    worker.add_argument(
        "--exit-when-done", action="store_true",
        help="exit once every spooled cell has completed, instead of "
             "polling for newly seeded work forever",
    )
    worker.add_argument(
        "--max-cells", type=int, default=None,
        help="exit after completing this many cells",
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="stable identity in leases/ledgers (default: <host>-<pid>)",
    )
    worker.add_argument(
        "--no-fsync", action="store_true",
        help="skip the per-event fsync of cell ledgers (faster, loses "
             "crash-durability of the tail)",
    )
    worker.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="activate a deterministic failpoint plan (.json/.toml) in "
             "this agent — fault-injection testing only",
    )
    worker.set_defaults(func=_cmd_worker)

    dispatch = sub.add_parser(
        "dispatch",
        help="execute a campaign/sweep plan across a fleet of worker "
             "agents via a shared work spool (backend=distributed)",
    )
    dispatch.add_argument("plan", help="path to a .json or .toml plan file")
    dispatch.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="shared work spool a standing fleet of `repro worker` agents "
             "is draining (default: an ephemeral local spool staffed by "
             "--local-workers subprocesses)",
    )
    dispatch.add_argument(
        "--local-workers", type=int, default=None, metavar="N",
        help="spawn N local worker agents on this spool (default: the "
             "plan's `workers`, else 2 for an ephemeral spool, 0 for a "
             "--spool-dir fleet)",
    )
    dispatch.add_argument(
        "--ttl", type=float, default=DEFAULT_TTL_SECONDS, metavar="SECONDS",
        help="lease time-to-live for crash detection (default: %(default)s)",
    )
    dispatch.add_argument(
        "--stall-seconds", type=float, default=None, metavar="SECONDS",
        help="declare the fleet dead after this long with no live worker "
             "and no completions (default: 4x --ttl)",
    )
    dispatch.add_argument(
        "--no-fsync", action="store_true",
        help="run local workers without per-event ledger fsync",
    )
    add_stream_flags(dispatch)
    dispatch.set_defaults(func=_cmd_dispatch)

    soak = sub.add_parser(
        "soak",
        help="run a campaign/sweep plan through an N-worker fleet under a "
             "seeded worker-churn schedule, then assert the standing "
             "invariants (exactly-once, zero stale leases, bit-identical "
             "event stream)",
    )
    soak.add_argument("plan", help="path to a .json or .toml plan file")
    soak.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="fleet size (default: %(default)s)",
    )
    soak.add_argument(
        "--kills-per-worker", type=int, default=2, metavar="N",
        help="SIGKILL every worker slot this many times (default: %(default)s)",
    )
    soak.add_argument(
        "--seed", type=int, default=0,
        help="churn-schedule seed; the same seed replays the same kill "
             "schedule and report (default: %(default)s)",
    )
    soak.add_argument(
        "--min-gap-cells", type=int, default=1, metavar="N",
        help="minimum done-cell gap between kills (default: %(default)s)",
    )
    soak.add_argument(
        "--max-gap-cells", type=int, default=6, metavar="N",
        help="maximum done-cell gap between kills (default: %(default)s)",
    )
    soak.add_argument(
        "--warmup-cells", type=int, default=1, metavar="N",
        help="done cells before the first kill (default: %(default)s)",
    )
    soak.add_argument(
        "--max-restarts", type=int, default=16, metavar="N",
        help="per-slot restart budget (default: %(default)s)",
    )
    soak.add_argument(
        "--ttl", type=float, default=2.0, metavar="SECONDS",
        help="lease time-to-live; short, so killed workers' cells are "
             "reclaimed quickly (default: %(default)s)",
    )
    soak.add_argument(
        "--stall-seconds", type=float, default=None, metavar="SECONDS",
        help="declare the fleet dead after this long with no live worker "
             "and no completions (default: 4x --ttl)",
    )
    soak.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="keep the spool (ledgers, logs, done markers) here instead "
             "of an ephemeral temp directory",
    )
    soak.add_argument(
        "--record", default=None, metavar="PATH",
        help="write the merged distributed event stream to this JSONL file",
    )
    soak.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the full soak report (JSON) here",
    )
    soak.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="failpoint plan (.json/.toml) activated inside every worker",
    )
    soak.add_argument(
        "--no-reference", action="store_true",
        help="skip the in-process sequential reference run and the "
             "bit-identity check",
    )
    soak.add_argument(
        "--no-fsync", action="store_true",
        help="run workers without per-event ledger fsync",
    )
    soak.add_argument(
        "--json", action="store_true",
        help="print the deterministic report view as JSON (the part that "
             "must be identical across same-seed episodes)",
    )
    soak.set_defaults(func=_cmd_soak)

    from repro.perf.report import BENCH_FILENAME

    perf = sub.add_parser(
        "perf",
        help="time the fleet's hot paths against frozen fixtures and gate "
             "speedup ratios against the committed baseline",
    )
    perf.add_argument(
        "--smoke", action="store_true",
        help="CI-sized fixtures (fewer queries/rows/repeats, same benchmark "
             "names)",
    )
    perf.add_argument(
        "--output", default=BENCH_FILENAME, metavar="PATH",
        help="machine-readable report target (default: %(default)s at the "
             "repo root)",
    )
    perf.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline report to gate against (default: "
             "benchmarks/perf_baseline.json when present)",
    )
    perf.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop of a speedup ratio before the gate "
             "fails (default: %(default)s)",
    )
    perf.add_argument(
        "--gate-absolute", action="store_true",
        help="additionally gate raw per-benchmark seconds (same-host "
             "comparisons only)",
    )
    perf.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    perf.add_argument(
        "--only", default=None, metavar="NAMES",
        help="comma-separated benchmark names to run (skips the gate)",
    )
    perf.add_argument(
        "--list", action="store_true", help="list benchmarks and exit"
    )
    perf.set_defaults(func=_cmd_perf)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the persistent tuning daemon (HTTP plan submission, "
             "per-tenant queueing, live event streams, /metrics)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8642,
        help="listen port; 0 binds an ephemeral port (default: %(default)s)",
    )
    serve_cmd.add_argument(
        "--ledger-dir", default="daemon-ledger", metavar="DIR",
        help="where the job manifest and per-job JSONL ledgers live "
             "(default: %(default)s)",
    )
    serve_cmd.add_argument(
        "--max-queue-depth", type=int, default=16,
        help="queued jobs each tenant may hold before submissions get "
             "429 (default: %(default)s)",
    )
    serve_cmd.add_argument(
        "--cache-path", default=None, metavar="PATH",
        help="load the shared cache plane from this snapshot at start and "
             "save it back on shutdown",
    )
    serve_cmd.add_argument(
        "--resume", choices=("auto",), default=None,
        help="replay the ledger directory at start: finished jobs serve "
             "their events bit-identically, interrupted jobs re-run only "
             "their missing cells",
    )
    serve_cmd.add_argument(
        "--no-fsync", action="store_true",
        help="skip the per-event fsync of ledgers (faster, loses "
             "crash-durability of the tail)",
    )
    serve_cmd.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="shared work spool for backend=\"distributed\" plans: jobs "
             "without their own spool_dir execute across the worker "
             "agents draining DIR",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a plan file to a running daemon"
    )
    submit.add_argument("plan", help="path to a .json or .toml plan file")
    submit.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="daemon base URL (default: %(default)s)",
    )
    submit.add_argument("--tenant", default="default")
    submit.add_argument(
        "--priority", type=int, default=0,
        help="higher dispatches first (default: %(default)s)",
    )
    submit.add_argument(
        "--follow", action="store_true",
        help="stream the job's events live (one line per event) and exit "
             "with the job's outcome",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes (no per-event output) and exit "
             "with its outcome",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="machine-readable output: one JSON object per line (the "
             "submission, each --follow event, the final job state)",
    )
    submit.set_defaults(func=_cmd_submit)

    jobs_cmd = sub.add_parser(
        "jobs", help="list a running daemon's jobs (or dump one job's events)"
    )
    jobs_cmd.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="daemon base URL (default: %(default)s)",
    )
    jobs_cmd.add_argument("--tenant", default=None, help="filter by tenant")
    jobs_cmd.add_argument(
        "--state", choices=("queued", "running", "finished", "failed"),
        default=None, help="filter by lifecycle state",
    )
    jobs_cmd.add_argument(
        "--events", default=None, metavar="JOB_ID",
        help="print JOB_ID's event ledger as JSON lines instead of the table",
    )
    jobs_cmd.add_argument(
        "--json", action="store_true",
        help="machine-readable output: one JSON object per job instead of "
             "the table",
    )
    jobs_cmd.set_defaults(func=_cmd_jobs)

    experiments = sub.add_parser("experiments", help="run every paper experiment")
    experiments.add_argument("--scale", default="default")
    experiments.set_defaults(func=_cmd_experiments)

    ablate = sub.add_parser(
        "ablations", help="run the extended ablations (DESIGN.md §6, paper §VII)"
    )
    ablate.add_argument("--scale", default="smoke")
    ablate.set_defaults(func=_cmd_ablations)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.daemon.client import DaemonClientError
    from repro.faults import FaultError
    from repro.perf.report import PerfError

    try:
        return args.func(args)
    except (
        PlanError, UnknownComponentError, SnapshotError, ResumeError, PerfError,
        DaemonClientError, FaultError,
    ) as error:
        # Operator errors (bad plan file, unknown component, stale cache
        # snapshot, unusable resume log, unusable perf baseline, refused
        # or unreachable daemon, malformed fault/churn plan) exit 2 with
        # one line, never a traceback.
        print(f"{parser.prog}: error: {error}", file=sys.stderr)
        return 2
    except CampaignExecutionError as error:
        # Worker failures: the surviving fleet finished (and was recorded
        # if --record was given) before this surfaced, so the operator can
        # retry just the lost campaigns with --resume.
        names = ", ".join(event.campaign for event in error.failures)
        first = error.failures[0]
        if first.traceback:
            print(first.traceback, file=sys.stderr, end="")
        print(
            f"{parser.prog}: error: {len(error.failures)} campaign(s) "
            f"failed ({names}); completed campaigns were not lost — "
            "re-run with --record and retry via --resume <log.jsonl>",
            file=sys.stderr,
        )
        return 1


if __name__ == "__main__":
    sys.exit(main())
