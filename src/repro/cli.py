"""Command-line interface for the StreamTune reproduction.

Subcommands mirror the library's lifecycle::

    python -m repro.cli history   --engine flink --records 3000 --output history.jsonl
    python -m repro.cli pretrain  --history history.jsonl --output model_dir
    python -m repro.cli tune      --model model_dir --query q5 --rates 3,10,5
    python -m repro.cli experiments --scale smoke

``history`` and ``pretrain`` persist their outputs, so a tuned model can be
built once and reused across tuning sessions (the paper's offline/online
split).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.history import HistoryGenerator
from repro.core.persistence import (
    load_history,
    load_pretrained,
    save_history,
    save_pretrained,
)
from repro.core.pretrain import pretrain
from repro.core.tuner import StreamTuneTuner
from repro.experiments.context import corpus, make_engine
from repro.experiments.scale import resolve_scale
from repro.utils.tables import format_table
from repro.workloads import nexmark_query, pqp_query_set


def _cmd_history(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.scale)
    engine = make_engine(args.engine, scale)
    generator = HistoryGenerator(engine, seed=args.seed)
    records = generator.generate(corpus(args.engine), args.records)
    save_history(records, args.output)
    n_labelled = sum(r.n_labelled for r in records)
    n_bottlenecks = sum(r.n_bottlenecks for r in records)
    print(
        f"wrote {len(records)} records to {args.output} "
        f"({n_labelled} labelled operators, {n_bottlenecks} bottlenecks)"
    )
    return 0


def _cmd_pretrain(args: argparse.Namespace) -> int:
    records = load_history(args.history)
    scale = resolve_scale(args.scale)
    engine = make_engine(args.engine, scale)
    artifact = pretrain(
        records,
        max_parallelism=engine.max_parallelism,
        n_clusters=args.clusters,
        epochs=args.epochs,
        seed=args.seed,
    )
    save_pretrained(artifact, args.output)
    accuracies = ", ".join(f"{r.final_accuracy:.3f}" for r in artifact.reports)
    print(
        f"pre-trained {artifact.n_clusters} cluster encoder(s) "
        f"(accuracies: {accuracies}) -> {args.output}"
    )
    return 0


def _resolve_query(name: str, engine_name: str):
    if name.startswith("q"):
        return nexmark_query(name, engine_name)
    template, _, index = name.rpartition("/")
    queries = pqp_query_set()[template]
    return queries[int(index)]


def _cmd_tune(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.scale)
    artifact = load_pretrained(args.model)
    engine = make_engine(args.engine, scale)
    query = _resolve_query(args.query, args.engine)
    tuner = StreamTuneTuner(engine, artifact, model_kind=args.layer, seed=args.seed)
    tuner.prepare(query)
    deployment = engine.deploy(
        query.flow,
        dict.fromkeys(query.flow.operator_names, 1),
        query.rates_at(float(args.rates.split(",")[0])),
    )
    rows = []
    for multiplier in (float(m) for m in args.rates.split(",")):
        result = tuner.tune(deployment, query.rates_at(multiplier))
        rows.append(
            (
                f"{multiplier:g}",
                result.final_total_parallelism,
                result.n_reconfigurations,
                result.n_backpressure_events,
                "yes" if result.converged else "no",
            )
        )
    engine.stop(deployment)
    print(
        format_table(
            ["rate (xWu)", "total parallelism", "reconfigs", "bp events", "converged"],
            rows,
            title=f"StreamTune tuning {query.name}",
        )
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    import os

    os.environ["REPRO_SCALE"] = args.scale or "default"
    from repro.experiments.__main__ import main as run_all

    return run_all()


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    ablations.main(resolve_scale(args.scale))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="StreamTune reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    history = sub.add_parser("history", help="generate an execution history")
    history.add_argument("--engine", choices=("flink", "timely"), default="flink")
    history.add_argument("--records", type=int, default=3000)
    history.add_argument("--output", required=True)
    history.add_argument("--seed", type=int, default=7)
    history.add_argument("--scale", default=None)
    history.set_defaults(func=_cmd_history)

    pre = sub.add_parser("pretrain", help="cluster + pre-train encoders")
    pre.add_argument("--history", required=True)
    pre.add_argument("--output", required=True)
    pre.add_argument("--engine", choices=("flink", "timely"), default="flink")
    pre.add_argument("--clusters", type=int, default=None)
    pre.add_argument("--epochs", type=int, default=40)
    pre.add_argument("--seed", type=int, default=7)
    pre.add_argument("--scale", default=None)
    pre.set_defaults(func=_cmd_pretrain)

    tune = sub.add_parser("tune", help="tune a query through rate changes")
    tune.add_argument("--model", required=True, help="directory from `pretrain`")
    tune.add_argument(
        "--query",
        required=True,
        help="nexmark name (q1..q8) or PQP '<template>/<index>'",
    )
    tune.add_argument("--rates", default="3,10,5", help="comma-separated xWu multipliers")
    tune.add_argument("--engine", choices=("flink", "timely"), default="flink")
    tune.add_argument(
        "--layer", choices=("svm", "xgboost", "isotonic", "nn"), default="svm"
    )
    tune.add_argument("--seed", type=int, default=17)
    tune.add_argument("--scale", default=None)
    tune.set_defaults(func=_cmd_tune)

    experiments = sub.add_parser("experiments", help="run every paper experiment")
    experiments.add_argument("--scale", default="default")
    experiments.set_defaults(func=_cmd_experiments)

    ablate = sub.add_parser(
        "ablations", help="run the extended ablations (DESIGN.md §6, paper §VII)"
    )
    ablate.add_argument("--scale", default="smoke")
    ablate.set_defaults(func=_cmd_ablations)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
