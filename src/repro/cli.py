"""Command-line interface for the StreamTune reproduction.

Subcommands mirror the library's lifecycle::

    python -m repro.cli history   --engine flink --records 3000 --output history.jsonl
    python -m repro.cli pretrain  --history history.jsonl --output model_dir
    python -m repro.cli tune      --model model_dir --query q5 --rates 3,10,5
    python -m repro.cli experiments --scale smoke

``history`` and ``pretrain`` persist their outputs, so a tuned model can be
built once and reused across tuning sessions (the paper's offline/online
split).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.history import HistoryGenerator
from repro.core.persistence import (
    load_history,
    load_pretrained,
    save_history,
    save_pretrained,
)
from repro.core.pretrain import pretrain
from repro.core.tuner import StreamTuneTuner
from repro.experiments.context import corpus, make_engine
from repro.experiments.scale import resolve_scale
from repro.utils.tables import format_table
from repro.workloads import nexmark_query, pqp_query_set


def _cmd_history(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.scale)
    engine = make_engine(args.engine, scale)
    generator = HistoryGenerator(engine, seed=args.seed)
    records = generator.generate(corpus(args.engine), args.records)
    save_history(records, args.output)
    n_labelled = sum(r.n_labelled for r in records)
    n_bottlenecks = sum(r.n_bottlenecks for r in records)
    print(
        f"wrote {len(records)} records to {args.output} "
        f"({n_labelled} labelled operators, {n_bottlenecks} bottlenecks)"
    )
    return 0


def _cmd_pretrain(args: argparse.Namespace) -> int:
    records = load_history(args.history)
    scale = resolve_scale(args.scale)
    engine = make_engine(args.engine, scale)
    artifact = pretrain(
        records,
        max_parallelism=engine.max_parallelism,
        n_clusters=args.clusters,
        epochs=args.epochs,
        seed=args.seed,
    )
    save_pretrained(artifact, args.output)
    accuracies = ", ".join(f"{r.final_accuracy:.3f}" for r in artifact.reports)
    print(
        f"pre-trained {artifact.n_clusters} cluster encoder(s) "
        f"(accuracies: {accuracies}) -> {args.output}"
    )
    return 0


def _resolve_query(name: str, engine_name: str):
    if name.startswith("q"):
        return nexmark_query(name, engine_name)
    template, _, index = name.rpartition("/")
    queries = pqp_query_set()[template]
    return queries[int(index)]


def _cmd_tune(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.scale)
    artifact = load_pretrained(args.model)
    engine = make_engine(args.engine, scale)
    query = _resolve_query(args.query, args.engine)
    tuner = StreamTuneTuner(engine, artifact, model_kind=args.layer, seed=args.seed)
    tuner.prepare(query)
    deployment = engine.deploy(
        query.flow,
        dict.fromkeys(query.flow.operator_names, 1),
        query.rates_at(float(args.rates.split(",")[0])),
    )
    rows = []
    for multiplier in (float(m) for m in args.rates.split(",")):
        result = tuner.tune(deployment, query.rates_at(multiplier))
        rows.append(
            (
                f"{multiplier:g}",
                result.final_total_parallelism,
                result.n_reconfigurations,
                result.n_backpressure_events,
                "yes" if result.converged else "no",
            )
        )
    engine.stop(deployment)
    print(
        format_table(
            ["rate (xWu)", "total parallelism", "reconfigs", "bp events", "converged"],
            rows,
            title=f"StreamTune tuning {query.name}",
        )
    )
    return 0


def _cmd_serve_campaigns(args: argparse.Namespace) -> int:
    from repro.experiments.context import pretrained_model
    from repro.service import CampaignSpec, TuningService

    scale = resolve_scale(args.scale)
    if args.model:
        artifact = load_pretrained(args.model)
    else:
        artifact = pretrained_model(args.engine, scale)
    multipliers = tuple(float(m) for m in args.rates.split(","))
    specs = [
        CampaignSpec(
            query=_resolve_query(name.strip(), args.engine),
            multipliers=multipliers,
            engine=args.engine,
            engine_seed=args.seed,
            seed=args.seed,
            model_kind=args.layer,
        )
        for name in args.queries.split(",")
    ]
    manager = None
    if args.backend == "process":
        import multiprocessing

        manager = multiprocessing.Manager()
    service = TuningService(
        artifact,
        backend=args.backend,
        max_workers=args.workers,
        prioritize_backpressure=not args.no_priority,
        manager=manager,
    )
    outcomes = service.run(specs)
    rows = []
    for outcome in outcomes:
        result = outcome.result
        rows.append(
            (
                outcome.spec_name,
                result.n_processes,
                f"{result.average_reconfigurations:.2f}",
                result.total_backpressure_events,
                sum(p.final_total_parallelism for p in result.processes),
                f"{outcome.wall_seconds:.2f}s",
            )
        )
    print(
        format_table(
            ["query", "processes", "avg reconfigs", "bp events",
             "sum final parallelism", "wall"],
            rows,
            title=f"tuning service ({args.backend}, {service.max_workers} workers)",
        )
    )
    stats = service.cache_stats()
    summary = ", ".join(
        f"{kind}: {values.get('hits', 0)}h/{values.get('misses', 0)}m"
        for kind, values in stats.items()
    )
    print(f"cache hits/misses — {summary}")
    if manager is not None:
        manager.shutdown()
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    import os

    os.environ["REPRO_SCALE"] = args.scale or "default"
    from repro.experiments.__main__ import main as run_all

    return run_all()


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    ablations.main(resolve_scale(args.scale))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="StreamTune reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    history = sub.add_parser("history", help="generate an execution history")
    history.add_argument("--engine", choices=("flink", "timely"), default="flink")
    history.add_argument("--records", type=int, default=3000)
    history.add_argument("--output", required=True)
    history.add_argument("--seed", type=int, default=7)
    history.add_argument("--scale", default=None)
    history.set_defaults(func=_cmd_history)

    pre = sub.add_parser("pretrain", help="cluster + pre-train encoders")
    pre.add_argument("--history", required=True)
    pre.add_argument("--output", required=True)
    pre.add_argument("--engine", choices=("flink", "timely"), default="flink")
    pre.add_argument("--clusters", type=int, default=None)
    pre.add_argument("--epochs", type=int, default=40)
    pre.add_argument("--seed", type=int, default=7)
    pre.add_argument("--scale", default=None)
    pre.set_defaults(func=_cmd_pretrain)

    tune = sub.add_parser("tune", help="tune a query through rate changes")
    tune.add_argument("--model", required=True, help="directory from `pretrain`")
    tune.add_argument(
        "--query",
        required=True,
        help="nexmark name (q1..q8) or PQP '<template>/<index>'",
    )
    tune.add_argument("--rates", default="3,10,5", help="comma-separated xWu multipliers")
    tune.add_argument("--engine", choices=("flink", "timely"), default="flink")
    tune.add_argument(
        "--layer", choices=("svm", "xgboost", "isotonic", "nn"), default="svm"
    )
    tune.add_argument("--seed", type=int, default=17)
    tune.add_argument("--scale", default=None)
    tune.set_defaults(func=_cmd_tune)

    serve = sub.add_parser(
        "serve-campaigns",
        help="tune many queries concurrently through the tuning service",
    )
    serve.add_argument(
        "--queries",
        required=True,
        help="comma-separated query names (nexmark q1..q8 or '<template>/<index>')",
    )
    serve.add_argument(
        "--model", default=None, help="directory from `pretrain` (default: build at --scale)"
    )
    serve.add_argument("--rates", default="3,7,4,2", help="comma-separated xWu multipliers")
    serve.add_argument("--engine", choices=("flink", "timely"), default="flink")
    serve.add_argument(
        "--backend", choices=("sequential", "thread", "process"), default="thread"
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--layer", choices=("svm", "xgboost", "isotonic", "nn"), default="svm"
    )
    serve.add_argument(
        "--no-priority",
        action="store_true",
        help="dispatch in submission order instead of backpressure-first",
    )
    serve.add_argument("--seed", type=int, default=17)
    serve.add_argument("--scale", default=None)
    serve.set_defaults(func=_cmd_serve_campaigns)

    experiments = sub.add_parser("experiments", help="run every paper experiment")
    experiments.add_argument("--scale", default="default")
    experiments.set_defaults(func=_cmd_experiments)

    ablate = sub.add_parser(
        "ablations", help="run the extended ablations (DESIGN.md §6, paper §VII)"
    )
    ablate.add_argument("--scale", default="smoke")
    ablate.set_defaults(func=_cmd_ablations)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
