"""Edit-operation costs for dataflow-DAG GED (paper §IV-C).

Beyond the four standard operations, the paper introduces two operations
tailored to dataflow DAGs:

* **Operator Type Modification** — relabel a node (e.g. filter -> join);
* **Edge Direction Modification** — reverse an existing edge.

Unit costs make the direction modification (cost 1) strictly cheaper than
the delete+insert alternative (cost 2), so it is a genuine extra operation
rather than syntactic sugar.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EditCosts:
    """Costs of the six edit operations.  All must be positive."""

    node_insert: float = 1.0
    node_delete: float = 1.0
    node_substitute: float = 1.0   # operator type modification
    edge_insert: float = 1.0
    edge_delete: float = 1.0
    edge_reverse: float = 1.0      # edge direction modification

    def __post_init__(self) -> None:
        values = (
            self.node_insert,
            self.node_delete,
            self.node_substitute,
            self.edge_insert,
            self.edge_delete,
            self.edge_reverse,
        )
        if any(v <= 0 for v in values):
            raise ValueError("all edit costs must be positive")
        if self.edge_reverse > self.edge_insert + self.edge_delete:
            raise ValueError(
                "edge_reverse must not exceed edge_delete + edge_insert, "
                "otherwise the operation is never optimal and GED is "
                "equivalent to the 4-operation variant"
            )

    def edge_pair_cost(self, direction_a: int, direction_b: int) -> float:
        """Cost of reconciling one edge slot between two mapped node pairs.

        ``direction_*`` encodes the edge between the pair in each graph:
        0 = no edge, +1 = forward, -1 = backward.
        """
        if direction_a == direction_b:
            return 0.0
        if direction_a == 0:
            return self.edge_insert
        if direction_b == 0:
            return self.edge_delete
        return self.edge_reverse


DEFAULT_COSTS = EditCosts()
