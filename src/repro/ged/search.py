"""Graph similarity search over DAG collections (paper Definition 1).

``Sim(q, tau) = { g in G | ged(q, g) <= tau }`` — implemented with
AStar+-LSa threshold verification, plus a signature-keyed distance cache so
repeated structures (ubiquitous in execution histories, where the same
query runs many times) cost one computation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dataflow.graph import LogicalDataflow
from repro.ged.astar_lsa import astar_lsa_ged
from repro.ged.bounds import combined_bound
from repro.ged.costs import DEFAULT_COSTS, EditCosts
from repro.ged.exact import exact_ged
from repro.ged.view import GraphView, as_view

#: Float slack used whenever an admissible bound gates an exact decision:
#: bounds are admissible in real arithmetic, and the margin keeps last-ulp
#: float drift in a bound from ever pruning a true nearest neighbour.
BOUND_SLACK = 1e-9


def nearest_center(cache, graph, centers) -> int:
    """Index of the nearest center by exact GED, with bound pruning.

    Bit-identical to the exhaustive
    ``min(range(len(centers)), key=[cache.distance(graph, c)].__getitem__)``
    — including the first-index tie-break — while skipping the exact
    A*-LSa search for every center whose *admissible lower bound* already
    exceeds the best exact distance found so far:

    * centers are verified in ascending lower-bound order (best-first), so
      the running best becomes tight as early as possible;
    * a center is skipped only when ``bound > best + BOUND_SLACK``; since
      ``ged >= bound`` (admissibility) its exact distance is then strictly
      greater than the running best, so it can be neither the minimum nor
      an earlier-index tie — and bounds being sorted, every remaining
      center is skipped with it;
    * exact ties are resolved by the original center index, matching the
      exhaustive argmin's first-occurrence rule;
    * cached exact distances serve as their own (tight) bound for free;
      cheap O(n) :func:`~repro.ged.bounds.combined_bound` covers the rest.

    ``cache`` is a :class:`GEDCache` or
    :class:`~repro.service.cache.SharedGEDCache` (anything with
    ``distance``, ``costs`` and an ``_exact`` store with ``get``).
    """
    if not centers:
        raise ValueError("nearest_center needs at least one center")
    query = as_view(graph)
    views = [as_view(center) for center in centers]
    bounds = []
    for view in views:
        known = cache._exact.get(cache._key(query, view), None)
        bounds.append(
            known if known is not None
            else combined_bound(query, view, cache.costs)
        )
    order = sorted(range(len(views)), key=lambda position: (bounds[position], position))
    best_index = -1
    best = float("inf")
    for position in order:
        if bounds[position] > best + BOUND_SLACK:
            break                        # sorted: every remaining bound is too
        value = cache.distance(query, views[position])
        if value < best or (value == best and position < best_index):
            best, best_index = value, position
    return best_index


class GEDCache:
    """Signature-keyed cache of exact GED values.

    Keys are unordered signature pairs (GED with symmetric costs is
    symmetric).  Threshold-pruned verifications are *not* cached as
    distances — only as one-sided bounds — so mixing verify and exact
    queries stays correct.
    """

    def __init__(self, costs: EditCosts = DEFAULT_COSTS) -> None:
        self.costs = costs
        self._exact: dict[tuple[str, str], float] = {}
        self._lower_bounds: dict[tuple[str, str], float] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(a: GraphView, b: GraphView) -> tuple[str, str]:
        return (a.signature, b.signature) if a.signature <= b.signature else (
            b.signature,
            a.signature,
        )

    def distance(self, graph1, graph2) -> float:
        """Exact GED with label-set acceleration, cached."""
        a, b = as_view(graph1), as_view(graph2)
        key = self._key(a, b)
        if key in self._exact:
            self.hits += 1
            return self._exact[key]
        self.misses += 1
        value = astar_lsa_ged(a, b, costs=self.costs)
        assert value is not None
        self._exact[key] = value
        return value

    def within(self, graph1, graph2, threshold: float) -> bool:
        """Cached threshold verification (Definition 1 predicate)."""
        a, b = as_view(graph1), as_view(graph2)
        key = self._key(a, b)
        if key in self._exact:
            self.hits += 1
            return self._exact[key] <= threshold + 1e-9
        bound = self._lower_bounds.get(key)
        if bound is not None and bound > threshold:
            self.hits += 1
            return False
        self.misses += 1
        # Cheap admissible pre-filter: ged >= combined_bound, so a bound
        # beyond the threshold decides the predicate without any search.
        cheap = combined_bound(a, b, self.costs)
        if cheap > threshold + BOUND_SLACK:
            previous = self._lower_bounds.get(key, 0.0)
            self._lower_bounds[key] = max(previous, cheap)
            return False
        value = astar_lsa_ged(a, b, costs=self.costs, threshold=threshold)
        if value is None:
            previous = self._lower_bounds.get(key, 0.0)
            self._lower_bounds[key] = max(previous, threshold + 1.0)
            return False
        self._exact[key] = value
        return True

    def nearest(self, graph, centers) -> int:
        """Bound-pruned nearest-center index (see :func:`nearest_center`)."""
        return nearest_center(self, graph, centers)


def similarity_search(
    query,
    dataset: Sequence,
    threshold: float,
    cache: GEDCache | None = None,
    use_lsa: bool = True,
    prefilter: bool = False,
) -> list[int]:
    """Indices of dataset graphs within GED ``threshold`` of ``query``.

    With ``use_lsa=False`` every pair is resolved by the direct exact GED
    baseline (no threshold pruning) — the slow path Fig. 11b compares
    against.  ``prefilter=True`` runs the O(n) admissible lower bounds of
    :mod:`repro.ged.bounds` first and verifies only the survivors (the
    classic filter-and-verification arrangement of §IV-C).
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    if prefilter:
        from repro.ged.bounds import prefilter_indices

        candidates = prefilter_indices(query, dataset, threshold)
    else:
        candidates = range(len(dataset))
    matches: list[int] = []
    for index in candidates:
        graph = dataset[index]
        if use_lsa:
            if cache is not None:
                hit = cache.within(query, graph, threshold)
            else:
                hit = astar_lsa_ged(query, graph, threshold=threshold) is not None
        else:
            hit = exact_ged(query, graph) <= threshold + 1e-9
        if hit:
            matches.append(index)
    return matches
