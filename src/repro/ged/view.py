"""Compact immutable graph view used by the GED solvers.

:class:`GraphView` extracts from a :class:`~repro.dataflow.graph.LogicalDataflow`
exactly what GED needs — integer-indexed nodes, structural labels (operator
types), and a direction-encoded adjacency table — so the inner search loop
touches only small tuples and dicts.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.dataflow.graph import LogicalDataflow


@dataclass(frozen=True)
class GraphView:
    """Integer-indexed labelled digraph.

    ``adjacency[u]`` maps a neighbour ``v`` to +1 (edge u->v) or -1
    (edge v->u); absent entries mean no edge.  DAGs have no 2-cycles, so a
    single signed entry per pair is sufficient.
    """

    labels: tuple[str, ...]
    edges: tuple[tuple[int, int], ...]
    adjacency: tuple[dict[int, int], ...]
    signature: str

    @property
    def n_nodes(self) -> int:
        return len(self.labels)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def direction(self, u: int, v: int) -> int:
        """+1 for u->v, -1 for v->u, 0 for no edge."""
        return self.adjacency[u].get(v, 0)

    @classmethod
    def from_dataflow(cls, flow: LogicalDataflow) -> "GraphView":
        order = flow.topological_order()
        index = {name: i for i, name in enumerate(order)}
        labels = tuple(flow.operator(name).structural_label() for name in order)
        edges = tuple((index[u], index[v]) for u, v in flow.edges)
        adjacency: list[dict[int, int]] = [{} for _ in order]
        for u, v in edges:
            adjacency[u][v] = 1
            adjacency[v][u] = -1
        return cls(
            labels=labels,
            edges=edges,
            adjacency=tuple(adjacency),
            signature=flow.structural_signature(),
        )


_VIEW_CACHE: "weakref.WeakKeyDictionary[LogicalDataflow, GraphView]" = (
    weakref.WeakKeyDictionary()
)


def as_view(graph: LogicalDataflow | GraphView) -> GraphView:
    """Coerce to a :class:`GraphView`, caching per dataflow object."""
    if isinstance(graph, GraphView):
        return graph
    cached = _VIEW_CACHE.get(graph)
    if cached is None:
        cached = GraphView.from_dataflow(graph)
        _VIEW_CACHE[graph] = cached
    return cached
