"""Beam-search GED: an anytime upper bound for larger graphs.

The exact searches in this package are practical because dataflow DAGs
are small (the paper: "typically fewer than 20 nodes and edges").  For
histories containing occasional larger graphs — multi-way join trees or
machine-generated plans — exact search can blow up, and an *upper* bound
is enough for many uses (seeding threshold pruning, approximate
clustering of outliers).

:func:`beam_ged` explores the same mapping space as
:func:`repro.ged._core.ged_search` but keeps only the ``beam_width`` best
partial mappings per depth.  The result is the cost of a *valid* edit
script, hence always >= the true GED, and it converges to the exact value
as the beam widens (tests pin both properties).  Complexity is
``O(n1 * beam_width * n2)`` expansions instead of exponential.
"""

from __future__ import annotations

from repro.ged.costs import DEFAULT_COSTS, EditCosts
from repro.ged.view import as_view


def beam_ged(
    graph1,
    graph2,
    beam_width: int = 16,
    costs: EditCosts = DEFAULT_COSTS,
) -> float:
    """Upper bound on GED via width-limited best-first mapping search.

    ``beam_width=1`` degenerates to a greedy assignment; widths around
    16-64 are near-exact on dataflow-sized graphs.  The returned value is
    always achievable by a concrete edit script.
    """
    if beam_width < 1:
        raise ValueError("beam_width must be >= 1")
    view1, view2 = as_view(graph1), as_view(graph2)
    if view1.signature == view2.signature:
        return 0.0
    # Mirror the exact search: map the larger graph onto the smaller one.
    if view1.n_nodes < view2.n_nodes:
        view1, view2 = view2, view1

    n1, n2 = view1.n_nodes, view2.n_nodes
    order = sorted(
        range(n1),
        key=lambda u: (-len(view1.adjacency[u]), view1.labels[u]),
    )

    # Beam state: (g, used_mask, mapping tuple aligned with ``order``).
    beam: list[tuple[float, int, tuple[int, ...]]] = [(0.0, 0, ())]
    for i in range(n1):
        u = order[i]
        label_u = view1.labels[u]
        candidates: list[tuple[float, int, tuple[int, ...]]] = []
        for g, used_mask, mapping in beam:
            delete_cost = costs.node_delete
            for j in range(i):
                if view1.direction(u, order[j]) != 0:
                    delete_cost += costs.edge_delete
            candidates.append((g + delete_cost, used_mask, mapping + (-1,)))
            for w in range(n2):
                if used_mask >> w & 1:
                    continue
                step = 0.0 if view2.labels[w] == label_u else costs.node_substitute
                for j in range(i):
                    d1 = view1.direction(u, order[j])
                    partner = mapping[j]
                    if partner == -1:
                        if d1 != 0:
                            step += costs.edge_delete
                    else:
                        step += costs.edge_pair_cost(d1, view2.direction(w, partner))
                candidates.append((g + step, used_mask | (1 << w), mapping + (w,)))
        candidates.sort(key=lambda state: state[0])
        beam = candidates[:beam_width]

    best = float("inf")
    for g, used_mask, _mapping in beam:
        completion = (n2 - bin(used_mask).count("1")) * costs.node_insert
        for a, b in view2.edges:
            if not (used_mask >> a & 1) or not (used_mask >> b & 1):
                completion += costs.edge_insert
        best = min(best, g + completion)
    return best


def beam_within(
    graph1,
    graph2,
    threshold: float,
    beam_width: int = 16,
    costs: EditCosts = DEFAULT_COSTS,
) -> bool | None:
    """One-sided threshold test from the beam upper bound.

    Returns ``True`` when the bound proves ``ged <= threshold``; ``None``
    when the bound is inconclusive (the true distance may still be within
    the threshold — run exact verification).  It can never certify a
    "no", because beam search only upper-bounds the distance.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    bound = beam_ged(graph1, graph2, beam_width=beam_width, costs=costs)
    if bound <= threshold + 1e-9:
        return True
    return None
