"""Graph Edit Distance and graph similarity search (paper §IV-C).

GED between dataflow DAGs with the paper's extended edit-operation set
(node insert/delete, edge insert/delete, *operator type modification*,
*edge direction modification*), an exact A* solver used as the "directly
computing GED" baseline of Fig. 11b, and an AStar+-LSa-style best-first
search with label-set lower bounds and threshold pruning for fast
similarity search (Definition 1).
"""

from repro.ged.costs import EditCosts
from repro.ged.view import GraphView
from repro.ged.exact import exact_ged
from repro.ged.astar_lsa import astar_lsa_ged, verify_within_threshold
from repro.ged.beam import beam_ged, beam_within
from repro.ged.bounds import (
    combined_bound,
    degree_sequence_bound,
    label_multiset_bound,
    prefilter_indices,
)
from repro.ged.search import GEDCache, similarity_search

__all__ = [
    "EditCosts",
    "GEDCache",
    "GraphView",
    "astar_lsa_ged",
    "beam_ged",
    "beam_within",
    "combined_bound",
    "degree_sequence_bound",
    "exact_ged",
    "label_multiset_bound",
    "prefilter_indices",
    "similarity_search",
    "verify_within_threshold",
]
