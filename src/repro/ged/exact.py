"""Plain exact GED — the paper's "Directly Computing GED" baseline.

Uniform-cost mapping search with no lower bound and no threshold pruning.
It returns the same (exact) distances as AStar+-LSa but explores vastly
more states, which is precisely the gap Fig. 11b measures.
"""

from __future__ import annotations

from repro.dataflow.graph import LogicalDataflow
from repro.ged._core import ged_search
from repro.ged.costs import DEFAULT_COSTS, EditCosts
from repro.ged.view import GraphView, as_view


def exact_ged(
    graph1: LogicalDataflow | GraphView,
    graph2: LogicalDataflow | GraphView,
    costs: EditCosts = DEFAULT_COSTS,
    max_expansions: int | None = None,
) -> float:
    """Exact graph edit distance via uniform-cost search (no heuristic)."""
    result = ged_search(
        as_view(graph1),
        as_view(graph2),
        costs=costs,
        use_label_set_bound=False,
        threshold=None,
        max_expansions=max_expansions,
    )
    assert result is not None  # unbounded search always terminates at a goal
    return result
