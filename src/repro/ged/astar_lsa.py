"""AStar+-LSa-style GED computation and verification (paper §IV-C).

The paper adopts AStar+-LSa [51] for graph similarity search because it is
**index-free** (no structure to rebuild as clusters evolve) and **fast**
(best-first search over partial node mappings with tight label-set lower
bounds and threshold pruning).  This module implements that algorithmic
recipe on the shared search core:

* partial mappings explored best-first,
* an admissible label-set bound on the unmapped remainder (node label
  multiset matching plus an edge-count term),
* branches whose lower bound exceeds the threshold are pruned, and the
  whole search aborts as soon as the threshold is provably exceeded.

The label-set bound here follows the LS family of bounds rather than the
exact LSa anchoring of the original paper; it preserves the properties the
paper relies on (admissibility, index-freeness, orders-of-magnitude pruning
versus direct GED — see ``benchmarks/bench_fig11.py``).
"""

from __future__ import annotations

from repro.dataflow.graph import LogicalDataflow
from repro.ged._core import ged_search
from repro.ged.costs import DEFAULT_COSTS, EditCosts
from repro.ged.view import GraphView, as_view


def astar_lsa_ged(
    graph1: LogicalDataflow | GraphView,
    graph2: LogicalDataflow | GraphView,
    costs: EditCosts = DEFAULT_COSTS,
    threshold: float | None = None,
    max_expansions: int | None = None,
) -> float | None:
    """GED with label-set lower bounds; ``None`` if above ``threshold``."""
    return ged_search(
        as_view(graph1),
        as_view(graph2),
        costs=costs,
        use_label_set_bound=True,
        threshold=threshold,
        max_expansions=max_expansions,
    )


def verify_within_threshold(
    graph1: LogicalDataflow | GraphView,
    graph2: LogicalDataflow | GraphView,
    threshold: float,
    costs: EditCosts = DEFAULT_COSTS,
) -> bool:
    """Definition 1 verification: is ged(g1, g2) <= threshold?"""
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    return astar_lsa_ged(graph1, graph2, costs=costs, threshold=threshold) is not None
