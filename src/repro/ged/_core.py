"""Shared best-first GED search engine.

Both the exact baseline (h = 0, the paper's "directly computing GED") and
AStar+-LSa (label-set lower bounds + threshold pruning) run this mapping
search; they differ only in heuristic strength and pruning.

The search explores partial node mappings of g1 onto g2 in a fixed node
order.  Each expansion either maps the next g1 node onto an unused g2 node
or deletes it; edge costs are charged incrementally against previously
processed nodes, so every state's ``g`` value is the exact cost of the
partial edit script.  When all g1 nodes are processed, the remaining g2
nodes and their incident edges are inserted.
"""

from __future__ import annotations

import heapq
from collections import Counter

from repro.ged.costs import DEFAULT_COSTS, EditCosts
from repro.ged.view import GraphView


class SearchBudgetExceeded(RuntimeError):
    """Raised when a GED search exceeds its expansion budget."""


def ged_search(
    view1: GraphView,
    view2: GraphView,
    costs: EditCosts = DEFAULT_COSTS,
    use_label_set_bound: bool = True,
    threshold: float | None = None,
    max_expansions: int | None = None,
) -> float | None:
    """Best-first GED between two graph views.

    Returns the exact GED, or ``None`` when ``threshold`` is given and the
    distance provably exceeds it.  ``use_label_set_bound`` selects the
    AStar+-LSa-style admissible heuristic; with ``False`` the search is the
    plain uniform-cost baseline.
    """
    if view1.signature == view2.signature:
        return 0.0
    # Put the larger graph on the mapping side: branching factor is n2 + 1.
    if view1.n_nodes < view2.n_nodes:
        view1, view2 = view2, view1

    n1, n2 = view1.n_nodes, view2.n_nodes
    order = sorted(
        range(n1),
        key=lambda u: (-len(view1.adjacency[u]), view1.labels[u]),
    )

    # Precomputations keyed by search depth i (nodes order[:i] processed).
    suffix_labels: list[Counter] = [Counter() for _ in range(n1 + 1)]
    for i in range(n1 - 1, -1, -1):
        suffix_labels[i] = suffix_labels[i + 1].copy()
        suffix_labels[i][view1.labels[order[i]]] += 1
    processed_at: list[set[int]] = [set() for _ in range(n1 + 1)]
    for i in range(1, n1 + 1):
        processed_at[i] = processed_at[i - 1] | {order[i - 1]}
    remaining_g1_edges = [
        sum(
            1
            for a, b in view1.edges
            if a not in processed_at[i] or b not in processed_at[i]
        )
        for i in range(n1 + 1)
    ]

    all_labels2 = Counter(view2.labels)
    min_edge_cost = min(costs.edge_insert, costs.edge_delete)

    def heuristic(i: int, used_mask: int) -> float:
        if not use_label_set_bound:
            return 0.0
        rem1 = suffix_labels[i]
        r1 = n1 - i
        rem2 = all_labels2.copy()
        r2 = n2
        for v in range(n2):
            if used_mask >> v & 1:
                rem2[view2.labels[v]] -= 1
                r2 -= 1
        matchable = sum(min(rem1[label], rem2[label]) for label in rem1)
        m = min(r1, r2)
        node_h = (
            (m - matchable) * costs.node_substitute
            + (r1 - m) * costs.node_delete
            + (r2 - m) * costs.node_insert
        )
        e2r = sum(
            1
            for a, b in view2.edges
            if not (used_mask >> a & 1) or not (used_mask >> b & 1)
        )
        edge_h = abs(remaining_g1_edges[i] - e2r) * min_edge_cost
        return node_h + edge_h

    def completion_cost(used_mask: int) -> float:
        unused = n2 - bin(used_mask).count("1")
        cost = unused * costs.node_insert
        for a, b in view2.edges:
            if not (used_mask >> a & 1) or not (used_mask >> b & 1):
                cost += costs.edge_insert
        return cost

    # State: (f, tie, g, i, used_mask, mapping-tuple).  The transition into
    # depth n1 folds the completion cost (inserting unused g2 nodes and
    # their incident edges) into g, so popped goal states carry their exact
    # final cost and best-first order implies optimality.
    tie = 0

    def push(g_new: float, i_new: int, mask: int, mapping: tuple[int, ...]) -> None:
        nonlocal tie
        if i_new == n1:
            g_new += completion_cost(mask)
            h_new = 0.0
        else:
            h_new = heuristic(i_new, mask)
        if threshold is not None and g_new + h_new > threshold + 1e-9:
            return
        tie += 1
        heapq.heappush(frontier, (g_new + h_new, tie, g_new, i_new, mask, mapping))

    frontier: list[tuple[float, int, float, int, int, tuple[int, ...]]] = []
    if n1 == 0:
        push(0.0, 0, 0, ())
    else:
        start_h = heuristic(0, 0)
        if threshold is None or start_h <= threshold + 1e-9:
            frontier.append((start_h, tie, 0.0, 0, 0, ()))
    expansions = 0

    while frontier:
        f, _, g, i, used_mask, mapping = heapq.heappop(frontier)
        if threshold is not None and f > threshold + 1e-9:
            return None
        if i == n1:
            return g
        expansions += 1
        if max_expansions is not None and expansions > max_expansions:
            raise SearchBudgetExceeded(
                f"GED search exceeded {max_expansions} expansions"
            )
        u = order[i]
        label_u = view1.labels[u]

        # Option 1: delete u (and its edges to already-processed nodes).
        delete_cost = costs.node_delete
        for j in range(i):
            if view1.direction(u, order[j]) != 0:
                delete_cost += costs.edge_delete
        push(g + delete_cost, i + 1, used_mask, mapping + (-1,))

        # Option 2: map u onto every unused g2 node.
        for w in range(n2):
            if used_mask >> w & 1:
                continue
            step = 0.0 if view2.labels[w] == label_u else costs.node_substitute
            for j in range(i):
                d1 = view1.direction(u, order[j])
                partner = mapping[j]
                if partner == -1:
                    if d1 != 0:
                        step += costs.edge_delete
                else:
                    step += costs.edge_pair_cost(d1, view2.direction(w, partner))
            push(g + step, i + 1, used_mask | (1 << w), mapping + (w,))

    return None


def trivial_upper_bound(view1: GraphView, view2: GraphView, costs: EditCosts) -> float:
    """Delete-everything/insert-everything upper bound (sanity checks)."""
    return (
        view1.n_nodes * costs.node_delete
        + view1.n_edges * costs.edge_delete
        + view2.n_nodes * costs.node_insert
        + view2.n_edges * costs.edge_insert
    )
