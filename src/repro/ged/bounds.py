"""Cheap admissible GED lower bounds — the "filtering" phase.

The paper (§IV-C) describes the common filter-and-verification strategy
for graph similarity search: prune candidates with inexpensive lower
bounds before paying for GED verification.  StreamTune's chosen verifier,
AStar+-LSa, is index-free, but the O(n)-time bounds here still pay for
themselves as a pre-filter in front of it: a candidate whose *lower* bound
already exceeds tau can be rejected without any search at all.

Two classic bounds are provided, both admissible (never exceed true GED):

* :func:`label_multiset_bound` — compares node-label multisets and edge
  counts, ignoring structure.
* :func:`degree_sequence_bound` — compares sorted degree sequences; an
  edge edit perturbs at most two degree entries, so half the total
  variation lower-bounds the edge-edit count.

:func:`combined_bound` takes the best of both, and
:func:`prefilter_indices` applies it over a candidate set.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.ged.costs import DEFAULT_COSTS, EditCosts
from repro.ged.view import GraphView, as_view


def label_multiset_bound(
    view1: GraphView, view2: GraphView, costs: EditCosts = DEFAULT_COSTS
) -> float:
    """Label-multiset lower bound on GED.

    Nodes: at most ``min(n1, n2)`` nodes can be mapped; mapped nodes with
    different labels cost a substitution, and the size difference costs
    deletions/insertions.  Edges: every unit of edge-count difference
    needs at least one edge insert or delete.
    """
    labels1 = Counter(view1.labels)
    labels2 = Counter(view2.labels)
    n1, n2 = view1.n_nodes, view2.n_nodes
    matchable = sum(min(labels1[label], labels2[label]) for label in labels1)
    mapped = min(n1, n2)
    node_bound = (
        (mapped - matchable) * costs.node_substitute
        + (n1 - mapped) * costs.node_delete
        + (n2 - mapped) * costs.node_insert
    )
    # ``matchable`` can exceed ``mapped`` only when one multiset dominates;
    # clamp so the substitution term never goes negative.
    node_bound = max(
        node_bound,
        (n1 - mapped) * costs.node_delete + (n2 - mapped) * costs.node_insert,
    )
    edge_bound = abs(view1.n_edges - view2.n_edges) * min(
        costs.edge_insert, costs.edge_delete
    )
    return node_bound + edge_bound


def _total_degrees(view: GraphView) -> list[int]:
    degrees = [0] * view.n_nodes
    for a, b in view.edges:
        degrees[a] += 1
        degrees[b] += 1
    return sorted(degrees, reverse=True)


def degree_sequence_bound(
    view1: GraphView, view2: GraphView, costs: EditCosts = DEFAULT_COSTS
) -> float:
    """Degree-sequence lower bound on the *edge-edit* portion of GED.

    Pad the shorter sorted (total-)degree sequence with zeros and take the
    total variation.  Any single edge insertion or deletion changes
    exactly two degree entries by one each, and node substitutions change
    none, so the optimal edit script performs at least ``ceil(TV / 2)``
    edge edits.  Sorting both sequences gives the pairing that minimises
    the total variation, which keeps the bound admissible for whatever
    node mapping the optimal script uses.
    """
    degrees1 = _total_degrees(view1)
    degrees2 = _total_degrees(view2)
    size = max(len(degrees1), len(degrees2))
    degrees1 += [0] * (size - len(degrees1))
    degrees2 += [0] * (size - len(degrees2))
    variation = sum(abs(a - b) for a, b in zip(degrees1, degrees2))
    min_edge_cost = min(costs.edge_insert, costs.edge_delete)
    return math.ceil(variation / 2) * min_edge_cost


def combined_bound(
    graph1, graph2, costs: EditCosts = DEFAULT_COSTS
) -> float:
    """The tighter of the two bounds (both are admissible, so max is too).

    The node-indel part of the label bound and the edge part of the degree
    bound count *disjoint* edit operations, but simply adding them is not
    admissible in general (a node deletion also deletes incident edges,
    moving degree mass); taking the maximum always is.
    """
    view1, view2 = as_view(graph1), as_view(graph2)
    return max(
        label_multiset_bound(view1, view2, costs),
        degree_sequence_bound(view1, view2, costs),
    )


def prefilter_indices(
    query,
    dataset,
    threshold: float,
    costs: EditCosts = DEFAULT_COSTS,
) -> list[int]:
    """Indices of candidates whose lower bound does not rule them out.

    The survivors still need verification (the bound may under-estimate);
    the rejected ones are *guaranteed* to lie beyond ``threshold``.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    query_view = as_view(query)
    return [
        index
        for index, graph in enumerate(dataset)
        if combined_bound(query_view, as_view(graph), costs) <= threshold + 1e-9
    ]
