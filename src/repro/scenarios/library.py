"""The trace library: named, seeded source-rate trace families.

The paper evaluates on one load shape — the §V-A periodic pattern.  Real
deployments see many more (the elasticity survey's catalogue: diurnal
day/night curves, bursty flash crowds, linear ramps, noisy periodics),
and an adaptive tuner must be stress-tested against all of them.  This
module turns "a rate trace" from an anonymous float list into a named,
reproducible artifact:

* :data:`TRACES` — a :class:`~repro.api.registry.Registry` of trace
  *families* (the same machinery as ENGINES/TUNERS): each family is a
  deterministic generator ``(rng, **params) -> multipliers`` whose
  parameter surface is declared as typed :class:`ParamSpec` rows;
* :class:`TraceSpec` — a frozen ``{family, params, seed}`` value that
  round-trips dict/JSON/TOML and :meth:`~TraceSpec.materialize`\\ s into
  the concrete multiplier tuple, bit-identically for the same spec.

Every family emits multipliers in units of Wu (the Table II rate units),
finite and strictly positive, typically in the paper's 1..10 band.  All
randomness flows through one :func:`~repro.utils.rng.seeded_rng`
generator derived from the spec's seed, so a spec *is* its trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import ParamSpec, REQUIRED, Registry, RegistryError, UnknownComponentError
from repro.utils.rng import seeded_rng

__all__ = [
    "BASIC_CYCLE",
    "TRACES",
    "ScenarioError",
    "TraceSpec",
    "periodic_multipliers",
]


class ScenarioError(ValueError):
    """A trace or chaos spec failed validation or materialization."""


#: §V-A basic cycle of source-rate multipliers (x Wu).
BASIC_CYCLE: tuple[int, ...] = (3, 7, 4, 2, 1, 10, 8, 5, 6, 9)

#: The registry of named trace families.
TRACES = Registry("trace family")


def periodic_multipliers(
    n_permutations: int = 6,
    cycle: tuple[int, ...] = BASIC_CYCLE,
    seed: int | None = None,
) -> list[int]:
    """The §V-A rate-multiplier sequence.

    Each permutation of the basic cycle is replicated once (20 entries);
    ``n_permutations`` permutations concatenate to ``20 * n`` multipliers
    (120 at the paper's scale).  The first permutation is the identity so
    small campaigns still start with the canonical cycle.
    """
    if n_permutations < 1:
        raise ValueError("n_permutations must be >= 1")
    return _periodic(seeded_rng(seed), n_permutations=n_permutations, cycle=cycle)


# ----------------------------------------------------------------------
# the families
# ----------------------------------------------------------------------

_N_STEPS = ParamSpec("n_steps", int, None, help="trace length in rate changes")


def _check_steps(n_steps: int, family: str) -> None:
    if n_steps < 1:
        raise ScenarioError(f"trace family {family!r}: n_steps must be >= 1")


def _check_band(low: float, high: float, family: str) -> None:
    if not (math.isfinite(low) and low > 0):
        raise ScenarioError(f"trace family {family!r}: low must be a positive finite number")
    if not (math.isfinite(high) and high > low):
        raise ScenarioError(f"trace family {family!r}: high must be finite and > low")


@TRACES.register(
    "inline",
    params=(ParamSpec("rates", tuple, REQUIRED, help="the literal multiplier list"),),
)
def _inline(rng, rates):
    """A literal multiplier list wrapped as a spec (raw-list back-compat)."""
    del rng
    return tuple(float(rate) for rate in rates)


@TRACES.register(
    "periodic",
    params=(
        ParamSpec("n_permutations", int, 6, help="permutations of the basic cycle"),
        ParamSpec("cycle", tuple, None, help="base cycle (default: the §V-A cycle)"),
        _N_STEPS,
    ),
)
def _periodic_family(rng, n_permutations=6, cycle=None, n_steps=None):
    """The paper's §V-A periodic pattern (permuted, replicated cycles)."""
    if n_permutations < 1:
        raise ScenarioError("trace family 'periodic': n_permutations must be >= 1")
    sequence = _periodic(
        rng, n_permutations=n_permutations,
        cycle=tuple(cycle) if cycle is not None else BASIC_CYCLE,
    )
    if n_steps is not None:
        _check_steps(n_steps, "periodic")
        sequence = sequence[:n_steps]
    return sequence


def _periodic(rng, n_permutations: int, cycle: tuple[int, ...]) -> list[int]:
    sequence: list[int] = []
    for index in range(n_permutations):
        if index == 0:
            perm = list(cycle)
        else:
            perm = [int(x) for x in rng.permutation(np.asarray(cycle))]
        sequence.extend(perm + perm)
    return sequence


@TRACES.register(
    "diurnal",
    params=(
        _N_STEPS,
        ParamSpec("low", float, 1.0, help="overnight trough rate (x Wu)"),
        ParamSpec("high", float, 8.0, help="midday peak rate (x Wu)"),
        ParamSpec("period", int, None, help="steps per day (default n_steps)"),
        ParamSpec("jitter", float, 0.0, help="relative gaussian jitter per step"),
    ),
)
def _diurnal(rng, n_steps=None, low=1.0, high=8.0, period=None, jitter=0.0):
    """Day/night sinusoid: trough at step 0, peak half a period later."""
    n_steps = 24 if n_steps is None else n_steps
    _check_steps(n_steps, "diurnal")
    _check_band(low, high, "diurnal")
    period = n_steps if period is None else period
    if period < 2:
        raise ScenarioError("trace family 'diurnal': period must be >= 2")
    steps = np.arange(n_steps)
    curve = low + (high - low) * 0.5 * (1.0 - np.cos(2.0 * np.pi * steps / period))
    if jitter:
        if not (math.isfinite(jitter) and 0 < jitter < 1):
            raise ScenarioError("trace family 'diurnal': jitter must be in (0, 1)")
        curve = curve * (1.0 + jitter * rng.standard_normal(n_steps))
    return np.maximum(curve, low / 10.0)


@TRACES.register(
    "bursty",
    params=(
        _N_STEPS,
        ParamSpec("base", float, 2.0, help="steady-state rate between bursts"),
        ParamSpec("spike", float, 9.0, help="flash-crowd rate during a burst"),
        ParamSpec("p_burst", float, 0.2, help="per-step burst start probability"),
        ParamSpec("burst_length", int, 2, help="steps a burst lasts"),
    ),
)
def _bursty(rng, n_steps=None, base=2.0, spike=9.0, p_burst=0.2, burst_length=2):
    """Flash crowds: a steady base rate with seeded multi-step spikes."""
    n_steps = 16 if n_steps is None else n_steps
    _check_steps(n_steps, "bursty")
    _check_band(base, spike, "bursty")
    if not 0.0 <= p_burst <= 1.0:
        raise ScenarioError("trace family 'bursty': p_burst must be in [0, 1]")
    if burst_length < 1:
        raise ScenarioError("trace family 'bursty': burst_length must be >= 1")
    values = []
    remaining = 0
    any_burst = False
    for _ in range(n_steps):
        if remaining == 0 and rng.random() < p_burst:
            remaining = burst_length
            any_burst = True
        if remaining > 0:
            values.append(spike)
            remaining -= 1
        else:
            values.append(base)
    if not any_burst and n_steps > 1:
        # A flash-crowd trace with no crowd tests nothing: guarantee one
        # burst mid-trace (deterministic — the draws above already ran).
        for offset in range(min(burst_length, n_steps - n_steps // 2)):
            values[n_steps // 2 + offset] = spike
    return values


@TRACES.register(
    "ramp",
    params=(
        _N_STEPS,
        ParamSpec("start", float, 1.0, help="first step's rate (x Wu)"),
        ParamSpec("stop", float, 10.0, help="last step's rate (x Wu)"),
    ),
)
def _ramp(rng, n_steps=None, start=1.0, stop=10.0):
    """Linear scale-up (or scale-down) from ``start`` to ``stop``."""
    del rng
    n_steps = 8 if n_steps is None else n_steps
    _check_steps(n_steps, "ramp")
    for name, value in (("start", start), ("stop", stop)):
        if not (math.isfinite(value) and value > 0):
            raise ScenarioError(
                f"trace family 'ramp': {name} must be a positive finite number"
            )
    if n_steps == 1:
        return [float(start)]
    return np.linspace(start, stop, n_steps)


@TRACES.register(
    "sinusoid-noise",
    aliases=("sinusoid",),
    params=(
        _N_STEPS,
        ParamSpec("mean", float, 5.0, help="carrier mean rate (x Wu)"),
        ParamSpec("amplitude", float, 3.0, help="carrier amplitude"),
        ParamSpec("period", int, 8, help="steps per carrier cycle"),
        ParamSpec("noise_std", float, 0.4, help="additive gaussian noise std"),
    ),
)
def _sinusoid_noise(rng, n_steps=None, mean=5.0, amplitude=3.0, period=8, noise_std=0.4):
    """A sinusoid carrier with seeded additive measurement-like noise."""
    n_steps = 16 if n_steps is None else n_steps
    _check_steps(n_steps, "sinusoid-noise")
    if not (math.isfinite(mean) and mean > 0):
        raise ScenarioError("trace family 'sinusoid-noise': mean must be > 0")
    if not (math.isfinite(amplitude) and 0 <= amplitude < mean):
        raise ScenarioError(
            "trace family 'sinusoid-noise': amplitude must satisfy "
            "0 <= amplitude < mean (rates stay positive)"
        )
    if period < 2:
        raise ScenarioError("trace family 'sinusoid-noise': period must be >= 2")
    if not (math.isfinite(noise_std) and noise_std >= 0):
        raise ScenarioError("trace family 'sinusoid-noise': noise_std must be >= 0")
    steps = np.arange(n_steps)
    carrier = mean + amplitude * np.sin(2.0 * np.pi * steps / period)
    if noise_std:
        carrier = carrier + noise_std * rng.standard_normal(n_steps)
    floor = max((mean - amplitude) / 4.0, 1e-3)
    return np.maximum(carrier, floor)


@TRACES.register(
    "adversarial",
    params=(
        _N_STEPS,
        ParamSpec("low", float, 1.0, help="lowest rate visited"),
        ParamSpec("high", float, 10.0, help="highest rate visited"),
    ),
)
def _adversarial(rng, n_steps=None, low=1.0, high=10.0):
    """Worst case for the predictor's cluster assignment: every step jumps
    between the extremes of the rate band (maximal step-to-step variation,
    so warm-up datasets from adjacent steps disagree as much as possible),
    with the extreme pairing seeded-shuffled for reproducible variety."""
    n_steps = 12 if n_steps is None else n_steps
    _check_steps(n_steps, "adversarial")
    _check_band(low, high, "adversarial")
    grid = np.linspace(low, high, n_steps)
    half = n_steps // 2
    lows, highs = grid[:half], grid[half:][::-1]
    order = rng.permutation(half)
    values: list[float] = []
    for position in order:
        values.append(float(lows[position]))
        values.append(float(highs[position]))
    if n_steps % 2:
        values.append(float(grid[half]))
    return values


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------

def _freeze(value):
    """Canonicalize a param value for hashable, order-stable storage."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (int, float, str)):
        return value
    raise ScenarioError(
        f"trace params must be numbers, strings, booleans or lists of "
        f"those, got {type(value).__name__} ({value!r})"
    )


def _thaw(value):
    """The JSON-facing view of a canonical param value."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class TraceSpec:
    """A named, seeded rate trace: ``{family, params, seed}`` as a value.

    ``params`` accepts a dict at construction and is stored canonically
    (sorted key/value pairs, lists frozen to tuples), so two specs built
    from differently ordered dicts compare — and hash — equal.  The spec
    is the identity: :meth:`materialize` always returns the same
    multipliers for an equal spec.
    """

    family: str
    params: tuple = field(default=())
    seed: int | None = None

    def __post_init__(self) -> None:
        try:
            entry = TRACES.entry(self.family)
        except UnknownComponentError as error:
            raise ScenarioError(str(error)) from None
        object.__setattr__(self, "family", entry.name)
        params = self.params
        if isinstance(params, dict):
            items = params.items()
        elif isinstance(params, (list, tuple)):
            items = [tuple(pair) for pair in params]
        else:
            raise ScenarioError(
                f"trace params must be a mapping, got {type(params).__name__}"
            )
        frozen = {str(key): _freeze(value) for key, value in items}
        try:
            validated = TRACES.validate_kwargs(entry.name, frozen)
        except (RegistryError, UnknownComponentError) as error:
            raise ScenarioError(str(error)) from None
        object.__setattr__(
            self, "params", tuple(sorted((k, _freeze(v)) for k, v in validated.items()))
        )
        if self.seed is not None and (
            not isinstance(self.seed, int) or isinstance(self.seed, bool)
        ):
            raise ScenarioError(f"trace seed must be an integer, got {self.seed!r}")

    @classmethod
    def inline(cls, rates) -> "TraceSpec":
        """Wrap a literal multiplier list as an ``inline`` spec."""
        return cls(family="inline", params={"rates": tuple(rates)})

    def materialize(self) -> tuple[float, ...]:
        """The concrete multiplier tuple (bit-identical per equal spec)."""
        try:
            values = TRACES.create(self.family, seeded_rng(self.seed), **dict(self.params))
        except ScenarioError:
            raise
        except (RegistryError, UnknownComponentError) as error:
            raise ScenarioError(str(error)) from None
        rates = tuple(float(value) for value in values)
        if not rates:
            raise ScenarioError(
                f"trace family {self.family!r} produced an empty trace"
            )
        for rate in rates:
            if not (math.isfinite(rate) and rate > 0):
                raise ScenarioError(
                    f"trace family {self.family!r} produced a non-positive or "
                    f"non-finite rate ({rate!r}); fix the family's parameters"
                )
        return rates

    def label(self) -> str:
        """A short, unique, human-scannable identity for scenario labels."""
        import hashlib

        digest = hashlib.sha1(
            repr((self.family, self.params, self.seed)).encode("utf-8")
        ).hexdigest()[:6]
        seed_note = f"s{self.seed}." if self.seed is not None else ""
        return f"{self.family}#{seed_note}{digest}"

    def to_dict(self) -> dict:
        data: dict = {"family": self.family}
        if self.params:
            data["params"] = {key: _thaw(value) for key, value in self.params}
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpec":
        if not isinstance(data, dict):
            raise ScenarioError(
                f"a trace spec must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"family", "params", "seed"})
        if unknown:
            raise ScenarioError(
                f"trace spec does not understand field(s) "
                f"{', '.join(map(repr, unknown))} (valid: family, params, seed)"
            )
        if "family" not in data:
            raise ScenarioError("a trace spec needs a 'family' name")
        return cls(
            family=data["family"],
            params=data.get("params") or {},
            seed=data.get("seed"),
        )
