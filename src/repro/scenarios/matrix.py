"""The standing benchmark matrix report (``BENCH_MATRIX.json``).

PDSP-Bench-style summary of a finished sweep: one row per campaign of
the queries x tuners x engines x traces x chaos grid, carrying the
numbers an adaptive-parallelism paper tables — final parallelism,
reconfiguration counts, backpressure, SLA violations (tuning processes
that never converged).  The report is plain JSON-serialisable data with
a ``schema`` tag, so CI can assert its shape and diff runs.

Rows contain only deterministic quantities plus each campaign's
wall-clock; :func:`matrix_determinism_view` strips the timing so reports
produced by different backends (thread vs distributed) of the same plan
compare equal.
"""

from __future__ import annotations

__all__ = [
    "MATRIX_SCHEMA",
    "matrix_determinism_view",
    "matrix_report",
    "validate_matrix_report",
]

MATRIX_SCHEMA = "repro.matrix/v1"

#: Per-row fields that must survive a backend change bit-identically.
_DETERMINISTIC_ROW_FIELDS = (
    "scenario",
    "engine",
    "tuner",
    "query",
    "cell_key",
    "trace",
    "chaos",
    "rates",
    "n_steps",
    "final_parallelism",
    "mean_final_parallelism",
    "reconfigurations",
    "backpressure_events",
    "sla_violations",
    "converged_steps",
)
_ROW_FIELDS = _DETERMINISTIC_ROW_FIELDS + ("wall_seconds",)


def _trace_descriptor(cell_plan) -> dict:
    trace = getattr(cell_plan, "trace", None)
    if trace is not None:
        return trace.to_dict()
    return {"family": "inline"}


def _chaos_label(cell_plan) -> str:
    chaos = getattr(cell_plan, "chaos", None)
    return chaos.label() if chaos is not None else "none"


def matrix_report(sweep_result, *, backend: str | None = None) -> dict:
    """Render a finished :class:`~repro.api.session.SweepResult`.

    ``backend`` overrides the recorded execution backend in the header
    (useful when the caller dispatched the sweep itself, e.g. the
    distributed coordinator).
    """
    plan = sweep_result.plan
    rows = []
    for label, cell_result in sweep_result.scenarios:
        cell_plan = cell_result.plan
        cell_keys = cell_plan.cell_keys()
        for index, outcome in enumerate(cell_result.outcomes):
            campaign = outcome.result
            processes = campaign.processes
            finals = [process.final_total_parallelism for process in processes]
            rows.append({
                "scenario": label,
                "engine": cell_plan.engine,
                "tuner": cell_plan.tuner,
                "query": outcome.spec_name,
                "cell_key": cell_keys[index],
                "trace": _trace_descriptor(cell_plan),
                "chaos": _chaos_label(cell_plan),
                "rates": [float(rate) for rate in cell_plan.rates],
                "n_steps": len(processes),
                "final_parallelism": finals[-1] if finals else 0,
                "mean_final_parallelism": (
                    round(sum(finals) / len(finals), 6) if finals else 0.0
                ),
                "reconfigurations": sum(
                    process.n_reconfigurations for process in processes
                ),
                "backpressure_events": campaign.total_backpressure_events,
                "sla_violations": sum(
                    1 for process in processes if not process.converged
                ),
                "converged_steps": sum(
                    1 for process in processes if process.converged
                ),
                "wall_seconds": round(outcome.wall_seconds, 6),
            })
    chaos_axis = [spec.label() for spec in getattr(plan, "chaos", ())]
    report = {
        "schema": MATRIX_SCHEMA,
        "backend": backend if backend is not None else plan.backend,
        "grid": {
            "queries": list(plan.queries),
            "tuners": list(plan.tuners),
            "engines": list(plan.engines),
            "traces": [
                trace.label() if hasattr(trace, "label")
                else "-".join(f"{rate:g}" for rate in trace)
                for trace in plan.rate_traces
            ],
            "chaos": chaos_axis,
        },
        "n_scenarios": plan.n_scenarios,
        "n_campaigns": len(rows),
        "cells": rows,
        "wall_seconds": round(sweep_result.wall_seconds, 6),
    }
    validate_matrix_report(report)
    return report


def validate_matrix_report(report: dict) -> dict:
    """Assert ``report`` has the ``repro.matrix/v1`` shape; returns it."""
    def bad(message: str):
        return ValueError(f"not a {MATRIX_SCHEMA} report: {message}")

    if not isinstance(report, dict):
        raise bad(f"expected a mapping, got {type(report).__name__}")
    if report.get("schema") != MATRIX_SCHEMA:
        raise bad(f"schema is {report.get('schema')!r}")
    for key in ("backend", "grid", "n_scenarios", "n_campaigns", "cells",
                "wall_seconds"):
        if key not in report:
            raise bad(f"missing top-level field {key!r}")
    grid = report["grid"]
    if not isinstance(grid, dict):
        raise bad("grid must be a mapping")
    for axis in ("queries", "tuners", "engines", "traces", "chaos"):
        if not isinstance(grid.get(axis), list):
            raise bad(f"grid.{axis} must be a list")
    cells = report["cells"]
    if not isinstance(cells, list):
        raise bad("cells must be a list")
    if report["n_campaigns"] != len(cells):
        raise bad(
            f"n_campaigns says {report['n_campaigns']} but there are "
            f"{len(cells)} cell rows"
        )
    for position, row in enumerate(cells):
        if not isinstance(row, dict):
            raise bad(f"cells[{position}] is not a mapping")
        missing = [key for key in _ROW_FIELDS if key not in row]
        if missing:
            raise bad(f"cells[{position}] is missing {', '.join(missing)}")
        if not isinstance(row["trace"], dict) or "family" not in row["trace"]:
            raise bad(f"cells[{position}].trace needs a 'family'")
    return report


def matrix_determinism_view(report: dict) -> dict:
    """The backend-independent projection of a matrix report.

    Two runs of the same plan on different backends (thread, process,
    distributed) must produce equal views — wall-clock and the backend
    tag are the only fields allowed to differ.
    """
    validate_matrix_report(report)
    return {
        "schema": report["schema"],
        "grid": report["grid"],
        "n_scenarios": report["n_scenarios"],
        "n_campaigns": report["n_campaigns"],
        "cells": [
            {key: row[key] for key in _DETERMINISTIC_ROW_FIELDS}
            for row in report["cells"]
        ],
    }
