"""Chaos schedules: deterministic mid-campaign faults and latency spikes.

A :class:`ChaosSpec` describes *when* and *how* a campaign's engine
misbehaves, keyed to rate-trace step indices — so sweeps can cross
scenarios x chaos and a chaos cell is exactly as reproducible as a clean
one.  Two effect kinds, executed through machinery the engines already
have:

* :class:`OperatorLoss` — before step ``step``, fail ``count`` instances
  of one operator (``operator=""`` picks the widest operator of the
  current deployment deterministically).  Needs an engine with the
  ``faults`` trait (``flink-faulty``): the loss surfaces as degraded
  capacity -> backpressure, and the tuner's own stop-and-restart
  reconfiguration heals it, exactly like a real TaskManager loss.
* :class:`LatencySpike` — during step ``step``, telemetry takes
  ``seconds`` longer per measurement.  Needs the ``paced`` trait
  (``flink-paced``); the spike stretches wall-clock only, never touching
  the engine RNG, so results stay bit-identical to the unspiked run.
* :class:`TraceDropout` — at step ``step``, the arriving rate multiplier
  is scaled by ``factor`` (a partial source outage: the workload itself
  drops, not the engine).  Needs no engine trait — the dropout rewrites
  the step's effective multiplier before the tuner sees it, identically
  on every backend.
* :class:`WorkerChurn` — *infrastructure* chaos: once ``after_cells``
  spool cells have completed, the distributed coordinator SIGKILLs and
  respawns local worker slot ``slot``.  In-process backends ignore it
  (there is no fleet to churn), and because lease reclaim re-runs
  interrupted cells bit-identically, results never depend on it — only
  the machinery under test does.

Injections are surfaced as typed
:class:`~repro.api.events.ChaosInjected` events through the campaign's
ordinary event stream, and the chaos schedule participates in the
campaign's ``cell_key`` — a chaos run can never be confused with (or
resumed from) a clean one.
"""

from __future__ import annotations

import math
from dataclasses import MISSING, dataclass, field, fields as dataclass_fields

__all__ = [
    "ChaosInjector",
    "ChaosSpec",
    "LatencySpike",
    "OperatorLoss",
    "TraceDropout",
    "WorkerChurn",
]

from repro.scenarios.library import ScenarioError


def _check_step(step, what: str) -> None:
    if not isinstance(step, int) or isinstance(step, bool) or step < 0:
        raise ScenarioError(
            f"chaos {what}: step must be a non-negative trace index, got {step!r}"
        )


@dataclass(frozen=True)
class OperatorLoss:
    """Fail ``count`` instances of one operator before step ``step``."""

    step: int
    count: int = 1
    #: Operator to degrade; "" picks the operator with the highest
    #: configured parallelism at injection time (first in flow order on
    #: ties) — deterministic, and always an operator that exists.
    operator: str = ""

    def __post_init__(self) -> None:
        _check_step(self.step, "operator_loss")
        if not isinstance(self.count, int) or isinstance(self.count, bool) or self.count < 1:
            raise ScenarioError(
                f"chaos operator_loss: count must be a positive integer, "
                f"got {self.count!r}"
            )
        if not isinstance(self.operator, str):
            raise ScenarioError(
                f"chaos operator_loss: operator must be a name string, "
                f"got {self.operator!r}"
            )

    def to_dict(self) -> dict:
        data = {"step": self.step, "count": self.count}
        if self.operator:
            data["operator"] = self.operator
        return data


@dataclass(frozen=True)
class LatencySpike:
    """Stretch every telemetry wait of step ``step`` by ``seconds``."""

    step: int
    seconds: float = 0.05

    def __post_init__(self) -> None:
        _check_step(self.step, "latency_spikes")
        seconds = self.seconds
        if isinstance(seconds, int) and not isinstance(seconds, bool):
            seconds = float(seconds)
            object.__setattr__(self, "seconds", seconds)
        if not isinstance(seconds, float) or not (
            math.isfinite(seconds) and seconds > 0
        ):
            raise ScenarioError(
                f"chaos latency_spikes: seconds must be a positive finite "
                f"number, got {self.seconds!r}"
            )

    def to_dict(self) -> dict:
        return {"step": self.step, "seconds": self.seconds}


@dataclass(frozen=True)
class TraceDropout:
    """Scale step ``step``'s rate multiplier by ``factor`` (source outage)."""

    step: int
    factor: float = 0.25

    def __post_init__(self) -> None:
        _check_step(self.step, "trace_dropout")
        factor = self.factor
        if isinstance(factor, int) and not isinstance(factor, bool):
            factor = float(factor)
            object.__setattr__(self, "factor", factor)
        if not isinstance(factor, float) or not (
            math.isfinite(factor) and 0.0 < factor < 1.0
        ):
            raise ScenarioError(
                f"chaos trace_dropout: factor must be a fraction in (0, 1), "
                f"got {self.factor!r}"
            )

    def to_dict(self) -> dict:
        return {"step": self.step, "factor": self.factor}


@dataclass(frozen=True)
class WorkerChurn:
    """Kill/respawn local worker ``slot`` after ``after_cells`` completions."""

    after_cells: int
    slot: int = 0

    def __post_init__(self) -> None:
        if (
            not isinstance(self.after_cells, int)
            or isinstance(self.after_cells, bool)
            or self.after_cells < 1
        ):
            raise ScenarioError(
                f"chaos worker_churn: after_cells must be a positive cell "
                f"count, got {self.after_cells!r}"
            )
        if not isinstance(self.slot, int) or isinstance(self.slot, bool) or self.slot < 0:
            raise ScenarioError(
                f"chaos worker_churn: slot must be a non-negative worker "
                f"index, got {self.slot!r}"
            )

    def to_dict(self) -> dict:
        data: dict = {"after_cells": self.after_cells}
        if self.slot:
            data["slot"] = self.slot
        return data


def _entries(value, cls, what: str) -> tuple:
    if isinstance(value, (str, bytes)) or not isinstance(value, (list, tuple)):
        raise ScenarioError(
            f"chaos {what} must be a list of tables, got {value!r}"
        )
    entries = []
    for item in value:
        if isinstance(item, cls):
            entries.append(item)
        elif isinstance(item, dict):
            known = {spec.name for spec in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
            unknown = sorted(set(item) - known)
            if unknown:
                raise ScenarioError(
                    f"chaos {what} does not understand field(s) "
                    f"{', '.join(map(repr, unknown))} (valid: "
                    f"{', '.join(sorted(known))})"
                )
            required = [
                spec.name
                for spec in dataclass_fields(cls)
                if spec.default is MISSING and spec.default_factory is MISSING
            ]
            missing = [name for name in required if name not in item]
            if missing:
                raise ScenarioError(
                    f"chaos {what}: every entry needs a {missing[0]!r}"
                )
            entries.append(cls(**item))
        else:
            raise ScenarioError(
                f"chaos {what} entries must be tables, got {item!r}"
            )
    return tuple(entries)


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic schedule of engine misbehaviour for one campaign."""

    operator_loss: tuple = field(default=())
    latency_spikes: tuple = field(default=())
    trace_dropout: tuple = field(default=())
    worker_churn: tuple = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "operator_loss",
            _entries(self.operator_loss, OperatorLoss, "operator_loss"),
        )
        object.__setattr__(
            self,
            "latency_spikes",
            _entries(self.latency_spikes, LatencySpike, "latency_spikes"),
        )
        object.__setattr__(
            self,
            "trace_dropout",
            _entries(self.trace_dropout, TraceDropout, "trace_dropout"),
        )
        object.__setattr__(
            self,
            "worker_churn",
            _entries(self.worker_churn, WorkerChurn, "worker_churn"),
        )

    @property
    def is_noop(self) -> bool:
        return not (
            self.operator_loss
            or self.latency_spikes
            or self.trace_dropout
            or self.worker_churn
        )

    @property
    def max_step(self) -> int:
        """The largest trace step index the schedule references (-1: none).

        Worker churn does not participate: its trigger is a done-cell
        count, not a trace step, so it can never overrun the trace.
        """
        steps = [entry.step for entry in self.operator_loss]
        steps += [entry.step for entry in self.latency_spikes]
        steps += [entry.step for entry in self.trace_dropout]
        return max(steps, default=-1)

    def required_traits(self) -> frozenset:
        """Engine registry traits this schedule needs to execute."""
        traits = set()
        if self.operator_loss:
            traits.add("faults")
        if self.latency_spikes:
            traits.add("paced")
        return frozenset(traits)

    def label(self) -> str:
        """Compact deterministic identity (participates in ``cell_key``)."""
        if self.is_noop:
            return "none"
        parts = []
        for loss in self.operator_loss:
            note = f"[{loss.operator}]" if loss.operator else ""
            parts.append(f"loss@{loss.step}x{loss.count}{note}")
        for spike in self.latency_spikes:
            parts.append(f"spike@{spike.step}x{spike.seconds:g}")
        for drop in self.trace_dropout:
            parts.append(f"drop@{drop.step}x{drop.factor:g}")
        for churn in self.worker_churn:
            parts.append(f"churn@{churn.after_cells}w{churn.slot}")
        return "+".join(parts)

    def to_dict(self) -> dict:
        data: dict = {}
        if self.operator_loss:
            data["operator_loss"] = [entry.to_dict() for entry in self.operator_loss]
        if self.latency_spikes:
            data["latency_spikes"] = [entry.to_dict() for entry in self.latency_spikes]
        if self.trace_dropout:
            data["trace_dropout"] = [entry.to_dict() for entry in self.trace_dropout]
        if self.worker_churn:
            data["worker_churn"] = [entry.to_dict() for entry in self.worker_churn]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        if not isinstance(data, dict):
            raise ScenarioError(
                f"a chaos spec must be a mapping, got {type(data).__name__}"
            )
        valid = ("operator_loss", "latency_spikes", "trace_dropout", "worker_churn")
        unknown = sorted(set(data) - set(valid))
        if unknown:
            raise ScenarioError(
                f"chaos spec does not understand field(s) "
                f"{', '.join(map(repr, unknown))} (valid: {', '.join(valid)})"
            )
        return cls(
            operator_loss=data.get("operator_loss") or (),
            latency_spikes=data.get("latency_spikes") or (),
            trace_dropout=data.get("trace_dropout") or (),
            worker_churn=data.get("worker_churn") or (),
        )


class ChaosInjector:
    """Execute one campaign's :class:`ChaosSpec` against a live engine.

    Stateful per campaign (it remembers the paced engine's base telemetry
    latency between :meth:`begin_step` and :meth:`end_step`) but driven
    purely by the deterministic schedule — injection never touches an
    engine RNG.
    """

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self._base_telemetry: float | None = None

    def begin_step(self, engine, deployment, step_index: int, campaign: str = ""):
        """Apply this step's scheduled effects; returns the typed events."""
        from repro.api.events import ChaosInjected

        events = []
        for loss in self.spec.operator_loss:
            if loss.step != step_index:
                continue
            operator = loss.operator or self._widest_operator(deployment)
            if not hasattr(engine, "fail_instances"):
                from repro.engines.base import EngineError

                raise EngineError(
                    f"chaos operator_loss needs a fault-capable engine "
                    f"(e.g. flink-faulty); {getattr(engine, 'name', type(engine).__name__)!r} "
                    "cannot fail instances"
                )
            configured = deployment.parallelisms.get(operator)
            if configured is None:
                from repro.engines.base import EngineError

                raise EngineError(
                    f"chaos operator_loss names operator {operator!r}, which "
                    f"this campaign's query does not have (operators: "
                    f"{', '.join(deployment.parallelisms)})"
                )
            already = 0
            if hasattr(engine, "lost_instances"):
                already = engine.lost_instances(deployment).get(operator, 0)
            # At least one instance must survive; a schedule asking for
            # more than the deployment can lose degrades to the maximum
            # injectable count (deterministic — the map is deterministic).
            count = min(loss.count, configured - already - 1)
            if count < 1:
                continue
            engine.fail_instances(deployment, operator, count)
            events.append(ChaosInjected(
                campaign=campaign,
                step_index=step_index,
                effect="operator-loss",
                operator=operator,
                count=count,
            ))
        for spike in self.spec.latency_spikes:
            if spike.step != step_index:
                continue
            if not hasattr(engine, "telemetry_seconds"):
                from repro.engines.base import EngineError

                raise EngineError(
                    f"chaos latency_spikes needs a paced engine (e.g. "
                    f"flink-paced); {getattr(engine, 'name', type(engine).__name__)!r} "
                    "has no telemetry latency to stretch"
                )
            if self._base_telemetry is None:
                self._base_telemetry = engine.telemetry_seconds
            engine.telemetry_seconds = self._base_telemetry + spike.seconds
            events.append(ChaosInjected(
                campaign=campaign,
                step_index=step_index,
                effect="latency-spike",
                seconds=spike.seconds,
            ))
        for drop in self.spec.trace_dropout:
            if drop.step != step_index:
                continue
            events.append(ChaosInjected(
                campaign=campaign,
                step_index=step_index,
                effect="trace-dropout",
                factor=drop.factor,
            ))
        return events

    def effective_multiplier(self, step_index: int, multiplier: float) -> float:
        """The rate multiplier the tuner should see at ``step_index``.

        Trace dropouts compound (two schedules hitting one step multiply)
        and rewrite the workload *before* tuning — so the recommendation,
        the recorded ``result.multipliers`` and the cell's events all
        agree on what actually arrived, on every backend.
        """
        for drop in self.spec.trace_dropout:
            if drop.step == step_index:
                multiplier *= drop.factor
        return multiplier

    def end_step(self, engine) -> None:
        """Restore any per-step effect (latency spikes end with the step)."""
        if self._base_telemetry is not None:
            engine.telemetry_seconds = self._base_telemetry
            self._base_telemetry = None

    @staticmethod
    def _widest_operator(deployment) -> str:
        """Highest configured parallelism, first in flow order on ties."""
        best_name, best_width = "", -1
        for name, width in deployment.parallelisms.items():
            if width > best_width:
                best_name, best_width = name, width
        return best_name
