"""Chaos schedules: deterministic mid-campaign faults and latency spikes.

A :class:`ChaosSpec` describes *when* and *how* a campaign's engine
misbehaves, keyed to rate-trace step indices — so sweeps can cross
scenarios x chaos and a chaos cell is exactly as reproducible as a clean
one.  Two effect kinds, executed through machinery the engines already
have:

* :class:`OperatorLoss` — before step ``step``, fail ``count`` instances
  of one operator (``operator=""`` picks the widest operator of the
  current deployment deterministically).  Needs an engine with the
  ``faults`` trait (``flink-faulty``): the loss surfaces as degraded
  capacity -> backpressure, and the tuner's own stop-and-restart
  reconfiguration heals it, exactly like a real TaskManager loss.
* :class:`LatencySpike` — during step ``step``, telemetry takes
  ``seconds`` longer per measurement.  Needs the ``paced`` trait
  (``flink-paced``); the spike stretches wall-clock only, never touching
  the engine RNG, so results stay bit-identical to the unspiked run.

Injections are surfaced as typed
:class:`~repro.api.events.ChaosInjected` events through the campaign's
ordinary event stream, and the chaos schedule participates in the
campaign's ``cell_key`` — a chaos run can never be confused with (or
resumed from) a clean one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ChaosInjector", "ChaosSpec", "LatencySpike", "OperatorLoss"]

from repro.scenarios.library import ScenarioError


def _check_step(step, what: str) -> None:
    if not isinstance(step, int) or isinstance(step, bool) or step < 0:
        raise ScenarioError(
            f"chaos {what}: step must be a non-negative trace index, got {step!r}"
        )


@dataclass(frozen=True)
class OperatorLoss:
    """Fail ``count`` instances of one operator before step ``step``."""

    step: int
    count: int = 1
    #: Operator to degrade; "" picks the operator with the highest
    #: configured parallelism at injection time (first in flow order on
    #: ties) — deterministic, and always an operator that exists.
    operator: str = ""

    def __post_init__(self) -> None:
        _check_step(self.step, "operator_loss")
        if not isinstance(self.count, int) or isinstance(self.count, bool) or self.count < 1:
            raise ScenarioError(
                f"chaos operator_loss: count must be a positive integer, "
                f"got {self.count!r}"
            )
        if not isinstance(self.operator, str):
            raise ScenarioError(
                f"chaos operator_loss: operator must be a name string, "
                f"got {self.operator!r}"
            )

    def to_dict(self) -> dict:
        data = {"step": self.step, "count": self.count}
        if self.operator:
            data["operator"] = self.operator
        return data


@dataclass(frozen=True)
class LatencySpike:
    """Stretch every telemetry wait of step ``step`` by ``seconds``."""

    step: int
    seconds: float = 0.05

    def __post_init__(self) -> None:
        _check_step(self.step, "latency_spikes")
        seconds = self.seconds
        if isinstance(seconds, int) and not isinstance(seconds, bool):
            seconds = float(seconds)
            object.__setattr__(self, "seconds", seconds)
        if not isinstance(seconds, float) or not (
            math.isfinite(seconds) and seconds > 0
        ):
            raise ScenarioError(
                f"chaos latency_spikes: seconds must be a positive finite "
                f"number, got {self.seconds!r}"
            )

    def to_dict(self) -> dict:
        return {"step": self.step, "seconds": self.seconds}


def _entries(value, cls, what: str) -> tuple:
    if isinstance(value, (str, bytes)) or not isinstance(value, (list, tuple)):
        raise ScenarioError(
            f"chaos {what} must be a list of tables, got {value!r}"
        )
    entries = []
    for item in value:
        if isinstance(item, cls):
            entries.append(item)
        elif isinstance(item, dict):
            known = {spec.name for spec in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
            unknown = sorted(set(item) - known)
            if unknown:
                raise ScenarioError(
                    f"chaos {what} does not understand field(s) "
                    f"{', '.join(map(repr, unknown))} (valid: "
                    f"{', '.join(sorted(known))})"
                )
            if "step" not in item:
                raise ScenarioError(f"chaos {what}: every entry needs a 'step'")
            entries.append(cls(**item))
        else:
            raise ScenarioError(
                f"chaos {what} entries must be tables, got {item!r}"
            )
    return tuple(entries)


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic schedule of engine misbehaviour for one campaign."""

    operator_loss: tuple = field(default=())
    latency_spikes: tuple = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "operator_loss",
            _entries(self.operator_loss, OperatorLoss, "operator_loss"),
        )
        object.__setattr__(
            self,
            "latency_spikes",
            _entries(self.latency_spikes, LatencySpike, "latency_spikes"),
        )

    @property
    def is_noop(self) -> bool:
        return not self.operator_loss and not self.latency_spikes

    @property
    def max_step(self) -> int:
        """The largest trace step index the schedule references (-1: none)."""
        steps = [entry.step for entry in self.operator_loss]
        steps += [entry.step for entry in self.latency_spikes]
        return max(steps, default=-1)

    def required_traits(self) -> frozenset:
        """Engine registry traits this schedule needs to execute."""
        traits = set()
        if self.operator_loss:
            traits.add("faults")
        if self.latency_spikes:
            traits.add("paced")
        return frozenset(traits)

    def label(self) -> str:
        """Compact deterministic identity (participates in ``cell_key``)."""
        if self.is_noop:
            return "none"
        parts = []
        for loss in self.operator_loss:
            note = f"[{loss.operator}]" if loss.operator else ""
            parts.append(f"loss@{loss.step}x{loss.count}{note}")
        for spike in self.latency_spikes:
            parts.append(f"spike@{spike.step}x{spike.seconds:g}")
        return "+".join(parts)

    def to_dict(self) -> dict:
        data: dict = {}
        if self.operator_loss:
            data["operator_loss"] = [entry.to_dict() for entry in self.operator_loss]
        if self.latency_spikes:
            data["latency_spikes"] = [entry.to_dict() for entry in self.latency_spikes]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        if not isinstance(data, dict):
            raise ScenarioError(
                f"a chaos spec must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"operator_loss", "latency_spikes"})
        if unknown:
            raise ScenarioError(
                f"chaos spec does not understand field(s) "
                f"{', '.join(map(repr, unknown))} (valid: operator_loss, "
                "latency_spikes)"
            )
        return cls(
            operator_loss=data.get("operator_loss") or (),
            latency_spikes=data.get("latency_spikes") or (),
        )


class ChaosInjector:
    """Execute one campaign's :class:`ChaosSpec` against a live engine.

    Stateful per campaign (it remembers the paced engine's base telemetry
    latency between :meth:`begin_step` and :meth:`end_step`) but driven
    purely by the deterministic schedule — injection never touches an
    engine RNG.
    """

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self._base_telemetry: float | None = None

    def begin_step(self, engine, deployment, step_index: int, campaign: str = ""):
        """Apply this step's scheduled effects; returns the typed events."""
        from repro.api.events import ChaosInjected

        events = []
        for loss in self.spec.operator_loss:
            if loss.step != step_index:
                continue
            operator = loss.operator or self._widest_operator(deployment)
            if not hasattr(engine, "fail_instances"):
                from repro.engines.base import EngineError

                raise EngineError(
                    f"chaos operator_loss needs a fault-capable engine "
                    f"(e.g. flink-faulty); {getattr(engine, 'name', type(engine).__name__)!r} "
                    "cannot fail instances"
                )
            configured = deployment.parallelisms.get(operator)
            if configured is None:
                from repro.engines.base import EngineError

                raise EngineError(
                    f"chaos operator_loss names operator {operator!r}, which "
                    f"this campaign's query does not have (operators: "
                    f"{', '.join(deployment.parallelisms)})"
                )
            already = 0
            if hasattr(engine, "lost_instances"):
                already = engine.lost_instances(deployment).get(operator, 0)
            # At least one instance must survive; a schedule asking for
            # more than the deployment can lose degrades to the maximum
            # injectable count (deterministic — the map is deterministic).
            count = min(loss.count, configured - already - 1)
            if count < 1:
                continue
            engine.fail_instances(deployment, operator, count)
            events.append(ChaosInjected(
                campaign=campaign,
                step_index=step_index,
                effect="operator-loss",
                operator=operator,
                count=count,
            ))
        for spike in self.spec.latency_spikes:
            if spike.step != step_index:
                continue
            if not hasattr(engine, "telemetry_seconds"):
                from repro.engines.base import EngineError

                raise EngineError(
                    f"chaos latency_spikes needs a paced engine (e.g. "
                    f"flink-paced); {getattr(engine, 'name', type(engine).__name__)!r} "
                    "has no telemetry latency to stretch"
                )
            if self._base_telemetry is None:
                self._base_telemetry = engine.telemetry_seconds
            engine.telemetry_seconds = self._base_telemetry + spike.seconds
            events.append(ChaosInjected(
                campaign=campaign,
                step_index=step_index,
                effect="latency-spike",
                seconds=spike.seconds,
            ))
        return events

    def end_step(self, engine) -> None:
        """Restore any per-step effect (latency spikes end with the step)."""
        if self._base_telemetry is not None:
            engine.telemetry_seconds = self._base_telemetry
            self._base_telemetry = None

    @staticmethod
    def _widest_operator(deployment) -> str:
        """Highest configured parallelism, first in flow order on ties."""
        best_name, best_width = "", -1
        for name, width in deployment.parallelisms.items():
            if width > best_width:
                best_name, best_width = name, width
        return best_name
