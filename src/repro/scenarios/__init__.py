"""Scenario plane: typed rate traces, chaos schedules, benchmark matrix.

This package gives workload dynamics a first-class representation.
:mod:`repro.scenarios.library` holds the ``TRACES`` registry of seeded
deterministic rate-trace families and the frozen :class:`TraceSpec`;
:mod:`repro.scenarios.chaos` adds deterministic fault / latency-spike
schedules (:class:`ChaosSpec`) keyed to trace steps; and
:mod:`repro.scenarios.matrix` renders a finished sweep into the standing
``BENCH_MATRIX.json`` benchmark report.
"""

from repro.scenarios.library import (
    BASIC_CYCLE,
    TRACES,
    ScenarioError,
    TraceSpec,
    periodic_multipliers,
)
from repro.scenarios.chaos import (
    ChaosInjector,
    ChaosSpec,
    LatencySpike,
    OperatorLoss,
    TraceDropout,
    WorkerChurn,
)
from repro.scenarios.matrix import MATRIX_SCHEMA, matrix_determinism_view, matrix_report, validate_matrix_report

__all__ = [
    "BASIC_CYCLE",
    "ChaosInjector",
    "ChaosSpec",
    "LatencySpike",
    "MATRIX_SCHEMA",
    "OperatorLoss",
    "ScenarioError",
    "TRACES",
    "TraceDropout",
    "TraceSpec",
    "WorkerChurn",
    "matrix_determinism_view",
    "matrix_report",
    "periodic_multipliers",
    "validate_matrix_report",
]
