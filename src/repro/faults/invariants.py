"""Standing post-episode invariants for fault-injected fleet runs.

Every soak episode — however many workers were SIGKILLed, however many
leases were reclaimed — must end in exactly the same place a calm run
does.  This module states that contract as small pure checks returning
human-readable violation strings (empty list = invariant holds), so the
:class:`~repro.faults.supervisor.FleetSupervisor`, the CI soak job and
ad-hoc scripts all assert the same thing:

* **exactly-once** — every spooled cell carries exactly one completion
  marker, the marker's status is ``ok``, and the attempt ledger it
  names exists (:func:`check_spool`);
* **no stale leases** — after sweeping done-cell debris, no lease
  outlives its TTL (:func:`check_spool`);
* **no shared-memory leaks** — ``/dev/shm`` holds no cache-plane
  segments beyond those present before the episode
  (:func:`shm_segments`);
* **bit-identity** — the merged distributed event stream equals the
  sequential reference, wall-clock fields aside
  (:func:`compare_event_streams`).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "check_spool",
    "compare_event_streams",
    "load_event_log",
    "shm_segments",
]

#: Payload fields that measure the host, not the computation.
_WALL_CLOCK_STEP_FIELDS = ("recommendation_seconds",)


def shm_segments(prefix: str = "reprocache") -> list[str]:
    """Names of ``/dev/shm`` segments created by the cache plane.

    The supervisor snapshots this before an episode and asserts the
    after-set introduces nothing new: a SIGKILLed worker must not leak
    its shared-memory cache segments past the coordinator's cleanup.
    """
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return []
    return sorted(path.name for path in shm.glob(f"{prefix}*"))


def load_event_log(path: "str | Path") -> list[dict]:
    """Parse one ``--record`` JSONL event log into plain dicts."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _deterministic_result(record: dict) -> dict:
    result = json.loads(json.dumps(record["result"]))   # deep copy
    for process in result["processes"]:
        for step in process["steps"]:
            for field in _WALL_CLOCK_STEP_FIELDS:
                step.pop(field, None)
    return result


def _results_by_key(records: list[dict]) -> dict[str, dict]:
    results = {}
    for record in records:
        if record["event"] == "CampaignFinished":
            key = (
                f"{record.get('scenario') or ''}/"
                f"{record.get('cell_key') or record['campaign']}"
            )
            results[key] = _deterministic_result(record)
    return results


def compare_event_streams(
    reference: list[dict],
    candidate: list[dict],
    *,
    backend: str = "distributed",
) -> list[str]:
    """Violations of stream equivalence between two recorded runs.

    ``reference`` is the sequential single-host log; ``candidate`` the
    fleet log under test.  Checks: no failures, every campaign event
    stamped with ``backend``, strictly increasing unique ``seq``, the
    same campaign set, and per-campaign result payloads bit-identical
    once wall-clock fields are stripped.
    """
    failures = []
    if any(r["event"] == "CampaignFailed" for r in candidate):
        failures.append(f"{backend} run recorded CampaignFailed event(s)")
    campaign_events = [r for r in candidate if r["event"].startswith("Campaign")]
    off_backend = sorted({
        r["backend"] for r in campaign_events
        if r.get("backend") not in (None, backend)
    })
    if off_backend:
        failures.append(
            f"campaign events carry non-{backend} backend(s): {off_backend}"
        )
    seqs = [r["seq"] for r in candidate]
    if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
        failures.append(f"{backend} event seq is not strictly increasing")

    expected = _results_by_key(reference)
    actual = _results_by_key(candidate)
    if set(expected) != set(actual):
        failures.append(
            "campaign sets differ: "
            f"only-reference={sorted(set(expected) - set(actual))}, "
            f"only-{backend}={sorted(set(actual) - set(expected))}"
        )
    else:
        for key in sorted(expected):
            if expected[key] != actual[key]:
                failures.append(f"result payload differs for {key}")
    return failures


def check_spool(spool, n_cells: int | None = None) -> list[str]:
    """Violations of the spool's post-episode contract.

    Call after the coordinator finished (and swept done-cell leases):
    every cell done exactly once with status ``ok``, the winning
    attempt's ledger on disk, and no lease — stale or fresh — left
    standing anywhere.
    """
    failures = []
    cell_ids = spool.cell_ids()
    done = spool.done_ids()
    if n_cells is not None and len(cell_ids) != n_cells:
        failures.append(
            f"spool holds {len(cell_ids)} cell(s), expected {n_cells}"
        )
    missing = [cell_id for cell_id in cell_ids if cell_id not in done]
    if missing:
        failures.append(f"cell(s) never completed: {missing}")
    for cell_id in sorted(done):
        payload = spool.done_payload(cell_id)
        status = payload.get("status")
        if status != "ok":
            failures.append(f"cell {cell_id} completed with status {status!r}")
        ledger = spool.ledgers_dir / payload.get("ledger", "")
        if not ledger.is_file():
            failures.append(
                f"cell {cell_id} names missing ledger {payload.get('ledger')!r}"
            )
    leases = spool.leases()
    if leases:
        failures.append(f"lease(s) left standing after the episode: {leases}")
    return failures
