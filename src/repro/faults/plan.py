"""The frozen, seeded fault schedule: which failpoint fires, and when.

A :class:`FaultPlan` is to failure injection what
:class:`~repro.scenarios.TraceSpec` is to workloads and
:class:`~repro.scenarios.ChaosSpec` is to engine misbehaviour: a frozen
value object that round-trips dict/JSON/TOML, validates eagerly with
targeted errors, and pins every run-affecting choice to a seed — so a
fault schedule that surfaced a bug is replayable bit-for-bit, attached
to a CI job, or handed to a colleague as one small file.

A plan is a list of :class:`FaultRule`\\ s.  Each rule names one
*injection site* from :data:`FAULT_SITES` — a ``fire()`` call compiled
into the production code path (spool claims, lease heartbeats, ledger
writes, worker execution, daemon sockets) — plus a *trigger* (which
visits of the site fire) and an *effect* (what happens when it does):

``delay``
    sleep ``seconds`` at the site — slow filesystems, claim races;
``error``
    raise the named exception class — transient faults the retry
    machinery must absorb (``OSError`` for spool paths, ``URLError``
    for the daemon client, ``ConnectionResetError`` for stream drops);
``crash``
    terminate the process immediately with ``exit_code`` — SIGKILL-like
    worker death at a precise code location;
``torn``
    honoured by the ledger writer: persist only a prefix of the line,
    then die — a torn final write, the exact artifact a power loss
    leaves behind.

Triggers count *hits*: the n-th time execution reaches the site (1-based,
per process).  Exactly one of ``hits`` (explicit ordinals), ``every``
(periodic) or ``probability`` (seeded Bernoulli per hit — the RNG
derives from the plan seed and the site name, so the same plan trips the
same hit numbers every run) must be given.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FAULT_SITES",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "load_fault_plan",
]


class FaultError(ValueError):
    """A fault plan or failpoint usage is invalid; the message says why."""


#: Every compiled-in injection site, with what firing there simulates.
#: ``fire()``/``trip()`` on a name outside this registry is a
#: :class:`FaultError` — a typo'd site would otherwise never fire.
FAULT_SITES: dict[str, str] = {
    "spool.claim.race-delay":
        "pause between preparing a claim and linking it into place — "
        "widens the claim race window so steals and double-claim "
        "defences actually get exercised",
    "spool.heartbeat.stall":
        "fail (OSError) or delay a lease heartbeat refresh — drives the "
        "worker's retry/deadline path and, held long enough, a reclaim",
    "ledger.write.torn-tail":
        "die mid-line while appending an event: the ledger keeps a "
        "truncated final line, exactly like a crash during write()",
    "ledger.fsync.crash-before":
        "die after a ledger line reaches the page cache but before "
        "fsync returns — the line a power loss would eat",
    "worker.execute.crash":
        "kill the worker process right after it claims a cell, before "
        "any event is recorded",
    "coordinator.poll.delay":
        "slow the coordinator's completion-polling loop (a laggy "
        "shared filesystem on the dispatch host)",
    "daemon.client.conn-drop":
        "drop the client's connection before the request leaves "
        "(URLError — the retryable kind)",
    "daemon.server.stream.drop":
        "sever a follow stream mid-flight; the follower sees a "
        "truncated chunked body",
}

_EFFECTS = ("delay", "error", "crash", "torn")
_ERRORS = ("OSError", "URLError", "ConnectionResetError", "TimeoutError")


def _check_int(value, what: str, *, minimum: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise FaultError(
            f"fault rule: {what} must be an integer >= {minimum}, got {value!r}"
        )


@dataclass(frozen=True)
class FaultRule:
    """One site, one trigger, one effect."""

    site: str
    effect: str = "error"
    #: Explicit 1-based hit ordinals at which the rule fires.
    hits: tuple = ()
    #: Fire on every ``every``-th hit of the site.
    every: int | None = None
    #: Fire each hit with this probability, drawn from a per-site RNG
    #: seeded by the plan — deterministic hit numbers for a given plan.
    probability: float | None = None
    #: Stop after this many firings (unbounded when ``None``).
    max_triggers: int | None = None
    #: ``delay`` effect: how long to sleep.
    seconds: float = 0.05
    #: ``error`` effect: which exception class to raise.
    error: str = "OSError"
    #: ``crash``/``torn`` effects: the process exit status.
    exit_code: int = 137

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise FaultError(
                f"unknown failpoint site {self.site!r} (known: "
                f"{', '.join(sorted(FAULT_SITES))})"
            )
        if self.effect not in _EFFECTS:
            raise FaultError(
                f"fault rule at {self.site}: effect must be one of "
                f"{', '.join(_EFFECTS)}, got {self.effect!r}"
            )
        hits = self.hits
        if isinstance(hits, list):
            hits = tuple(hits)
            object.__setattr__(self, "hits", hits)
        if not isinstance(hits, tuple):
            raise FaultError(
                f"fault rule at {self.site}: hits must be a list of 1-based "
                f"hit ordinals, got {self.hits!r}"
            )
        for hit in hits:
            _check_int(hit, "every hits entry", minimum=1)
        triggers = sum(
            1 for given in (hits or None, self.every, self.probability)
            if given is not None
        )
        if triggers != 1:
            raise FaultError(
                f"fault rule at {self.site}: exactly one trigger of hits, "
                f"every, probability must be set (got {triggers})"
            )
        if self.every is not None:
            _check_int(self.every, "every", minimum=1)
        if self.probability is not None:
            probability = self.probability
            if isinstance(probability, int) and not isinstance(probability, bool):
                probability = float(probability)
                object.__setattr__(self, "probability", probability)
            if not isinstance(probability, float) or not 0.0 < probability <= 1.0:
                raise FaultError(
                    f"fault rule at {self.site}: probability must be in "
                    f"(0, 1], got {self.probability!r}"
                )
        if self.max_triggers is not None:
            _check_int(self.max_triggers, "max_triggers", minimum=1)
        seconds = self.seconds
        if isinstance(seconds, int) and not isinstance(seconds, bool):
            seconds = float(seconds)
            object.__setattr__(self, "seconds", seconds)
        if not isinstance(seconds, float) or seconds < 0:
            raise FaultError(
                f"fault rule at {self.site}: seconds must be a non-negative "
                f"number, got {self.seconds!r}"
            )
        if self.error not in _ERRORS:
            raise FaultError(
                f"fault rule at {self.site}: error must be one of "
                f"{', '.join(_ERRORS)}, got {self.error!r}"
            )
        _check_int(self.exit_code, "exit_code", minimum=1)
        if self.exit_code > 255:
            raise FaultError(
                f"fault rule at {self.site}: exit_code must fit a process "
                f"status (1..255), got {self.exit_code}"
            )

    def trigger_label(self) -> str:
        if self.hits:
            return "h" + ",".join(str(hit) for hit in self.hits)
        if self.every is not None:
            return f"e{self.every}"
        return f"p{self.probability:g}"

    def to_dict(self) -> dict:
        data: dict = {"site": self.site, "effect": self.effect}
        if self.hits:
            data["hits"] = list(self.hits)
        if self.every is not None:
            data["every"] = self.every
        if self.probability is not None:
            data["probability"] = self.probability
        if self.max_triggers is not None:
            data["max_triggers"] = self.max_triggers
        if self.effect == "delay":
            data["seconds"] = self.seconds
        if self.effect == "error":
            data["error"] = self.error
        if self.effect in ("crash", "torn") and self.exit_code != 137:
            data["exit_code"] = self.exit_code
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict):
            raise FaultError(
                f"a fault rule must be a mapping, got {type(data).__name__}"
            )
        known = {spec.name for spec in cls.__dataclass_fields__.values()}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultError(
                f"fault rule does not understand field(s) "
                f"{', '.join(map(repr, unknown))} (valid: "
                f"{', '.join(sorted(known))})"
            )
        if "site" not in data:
            raise FaultError("every fault rule needs a 'site'")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable schedule of failpoint firings."""

    rules: tuple = field(default=())
    seed: int = 0

    def __post_init__(self) -> None:
        rules = self.rules
        if isinstance(rules, (str, bytes)) or not isinstance(rules, (list, tuple)):
            raise FaultError(
                f"fault plan rules must be a list of rule tables, got {rules!r}"
            )
        entries = []
        for rule in rules:
            if isinstance(rule, FaultRule):
                entries.append(rule)
            else:
                entries.append(FaultRule.from_dict(rule))
        object.__setattr__(self, "rules", tuple(entries))
        _check_int(self.seed, "plan seed", minimum=0)

    @property
    def is_noop(self) -> bool:
        return not self.rules

    def label(self) -> str:
        """Compact deterministic identity, report- and filename-friendly."""
        if self.is_noop:
            return "none"
        parts = [
            f"{rule.site}!{rule.effect}@{rule.trigger_label()}"
            for rule in self.rules
        ]
        return f"s{self.seed}:" + "+".join(parts)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultError(
                f"a fault plan must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"seed", "rules"})
        if unknown:
            raise FaultError(
                f"fault plan does not understand field(s) "
                f"{', '.join(map(repr, unknown))} (valid: rules, seed)"
            )
        return cls(rules=data.get("rules") or (), seed=data.get("seed", 0))


def _toml_module():
    try:
        import tomllib
        return tomllib
    except ModuleNotFoundError:                     # pragma: no cover
        try:
            import tomli
            return tomli
        except ModuleNotFoundError:
            raise FaultError(
                "reading TOML fault plans needs Python 3.11+ (tomllib) or "
                "the 'tomli' package; use a JSON plan instead"
            ) from None


def load_fault_plan(path: "str | Path") -> FaultPlan:
    """Load a :class:`FaultPlan` from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise FaultError(f"fault plan file not found: {path}") from None
    if path.suffix.lower() == ".toml":
        data = _toml_module().loads(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultError(f"fault plan {path} is not valid JSON: {error}") from None
    return FaultPlan.from_dict(data)
