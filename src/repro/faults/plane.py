"""The process-wide failpoint plane: counting hits, applying effects.

Production code marks its injection sites with a single call::

    from repro.faults.plane import fire
    ...
    fire("spool.heartbeat.stall")

With no plan active — the overwhelmingly common case — ``fire`` is a
dict lookup and a ``None`` check; the sites cost nothing measurable on
hot paths (the ``failpoint_*`` perf benchmarks price exactly this).
With a plan active, every call counts one *hit* of the site and asks
each matching :class:`~repro.faults.plan.FaultRule` whether this hit
triggers; a triggered rule's effect is applied in place (sleep, raise,
or hard process exit).

Activation is explicit (:func:`activate`) or inherited: a process whose
environment carries ``REPRO_FAULT_PLAN=<path.json|.toml>`` activates
that plan lazily on the first ``fire``/``trip`` — which is how a
supervisor injects faults into the ``repro worker`` subprocesses it
spawns without touching their command line.

Hit counting is per process and thread-safe; the per-rule probability
RNG derives from the plan seed and the site name, so for a given plan
the *hit numbers* that trigger are the same every run, regardless of
which thread happens to reach the site.
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
import time

from repro.faults.plan import FAULT_SITES, FaultError, FaultPlan, FaultRule, load_fault_plan

__all__ = [
    "ENV_FAULT_PLAN",
    "FaultPlane",
    "activate",
    "active_plane",
    "deactivate",
    "fire",
    "hard_exit",
    "trip",
]

#: Environment variable naming a fault-plan file to activate lazily.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"


def _derive_seed(seed: int, site: str) -> int:
    digest = hashlib.sha1(f"{seed}:{site}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def hard_exit(code: int) -> None:  # pragma: no cover — exits the process
    """Terminate immediately, skipping atexit/finally — a crash, not an
    exit.  A module-level indirection so tests can intercept it."""
    os._exit(code)


class FaultPlane:
    """One activated :class:`FaultPlan`: per-site counters and RNGs."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._rngs: dict[int, random.Random] = {}

    def trip(self, site: str) -> "FaultRule | None":
        """Count one hit of ``site``; the rule that triggered, if any.

        At most one rule fires per hit (the first matching one in plan
        order) — a schedule wanting two effects at one hit writes one
        rule per hit ordinal instead.
        """
        if site not in FAULT_SITES:
            raise FaultError(
                f"unknown failpoint site {site!r} (known: "
                f"{', '.join(sorted(FAULT_SITES))})"
            )
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for index, rule in enumerate(self.plan.rules):
                if rule.site != site:
                    continue
                fired = self._fired.get(index, 0)
                if rule.max_triggers is not None and fired >= rule.max_triggers:
                    continue
                if self._matches(rule, index, hit):
                    self._fired[index] = fired + 1
                    return rule
        return None

    def _matches(self, rule: FaultRule, index: int, hit: int) -> bool:
        if rule.hits:
            return hit in rule.hits
        if rule.every is not None:
            return hit % rule.every == 0
        rng = self._rngs.get(index)
        if rng is None:
            rng = self._rngs[index] = random.Random(
                _derive_seed(self.plan.seed, rule.site)
            )
        return rng.random() < rule.probability

    def snapshot(self) -> dict:
        """Hit and firing counters so far (reports, tests)."""
        with self._lock:
            return {
                "hits": dict(sorted(self._hits.items())),
                "fired": {
                    self.plan.rules[index].site: count
                    for index, count in sorted(self._fired.items())
                },
            }


_plane: "FaultPlane | None" = None
_env_consulted = False
_state_lock = threading.Lock()


def activate(plan: FaultPlan) -> FaultPlane:
    """Install ``plan`` as this process's fault plane (replacing any)."""
    global _plane, _env_consulted
    with _state_lock:
        _plane = FaultPlane(plan)
        _env_consulted = True
        return _plane


def deactivate() -> None:
    """Remove any active plane; the environment is *not* re-consulted."""
    global _plane, _env_consulted
    with _state_lock:
        _plane = None
        _env_consulted = True


def _reset_for_env() -> None:
    """Forget everything, re-arming lazy env activation (tests)."""
    global _plane, _env_consulted
    with _state_lock:
        _plane = None
        _env_consulted = False


def active_plane() -> "FaultPlane | None":
    """The current plane, activating from the environment on first use."""
    global _plane, _env_consulted
    if _plane is not None or _env_consulted:
        return _plane
    with _state_lock:
        if _plane is None and not _env_consulted:
            _env_consulted = True
            path = os.environ.get(ENV_FAULT_PLAN)
            if path:
                _plane = FaultPlane(load_fault_plan(path))
        return _plane


def trip(site: str) -> "FaultRule | None":
    """Count a hit of ``site``; the triggered rule (for cooperative
    effects like ``torn``) or ``None``.  Fast no-op without a plane."""
    plane = active_plane()
    if plane is None:
        return None
    return plane.trip(site)


def fire(site: str) -> None:
    """The standard injection-site call: trip, then apply the effect."""
    rule = trip(site)
    if rule is None:
        return
    if rule.effect == "delay":
        if rule.seconds > 0:
            time.sleep(rule.seconds)
        return
    if rule.effect == "error":
        raise _make_error(rule)
    # crash — and torn at a site that does not implement cooperative
    # truncation degrades to the same thing: sudden process death.
    hard_exit(rule.exit_code)


def _make_error(rule: FaultRule) -> BaseException:
    message = f"injected fault at {rule.site}"
    if rule.error == "URLError":
        import urllib.error

        return urllib.error.URLError(message)
    classes = {
        "OSError": OSError,
        "ConnectionResetError": ConnectionResetError,
        "TimeoutError": TimeoutError,
    }
    return classes[rule.error](message)
