"""The fleet supervisor: seeded worker churn over a spooled plan.

``repro soak`` drives one :class:`FleetSupervisor` episode: a
:class:`~repro.distributed.coordinator.DistributedSession` coordinator
(spawning no workers of its own) runs in a background thread while the
supervisor staffs the spool with N ``repro worker`` subprocesses and
executes a :class:`ChurnSpec` — a frozen, seeded schedule of
:class:`KillTrigger` thresholds keyed to the spool's *done-cell count*,
not wall-clock.  Count-keyed triggers make an episode replayable: the
same seed produces the same kill schedule whatever the host's speed,
and every kill is guaranteed to land while the fleet still has work
(thresholds clamp below the final cell).

Each SIGKILLed worker is respawned under a :class:`RestartPolicy`
(deterministic capped exponential backoff, a per-slot restart budget),
and after the episode the supervisor asserts the standing invariants of
:mod:`repro.faults.invariants` — exactly-once completion, zero stale
leases, no ``/dev/shm`` leaks, and (optionally) a merged event stream
bit-identical to an in-process sequential reference run of the same
plan.  The :class:`SoakReport`'s :meth:`~SoakReport.deterministic_view`
excludes wall-clock and scheduling noise, so two runs with the same
seeds must render the identical view.
"""

from __future__ import annotations

import dataclasses
import os
import random
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.invariants import (
    check_spool,
    compare_event_streams,
    load_event_log,
    shm_segments,
)
from repro.faults.plan import FaultError

__all__ = [
    "ChurnSpec",
    "FleetSupervisor",
    "KillTrigger",
    "RestartPolicy",
    "SoakReport",
]


@dataclass(frozen=True)
class KillTrigger:
    """SIGKILL worker ``slot`` once ``after_done`` cells have completed."""

    after_done: int
    slot: int

    def to_dict(self) -> dict:
        return {"after_done": self.after_done, "slot": self.slot}


def _check_count(value, what: str, minimum: int = 0) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise FaultError(
            f"churn {what} must be an integer >= {minimum}, got {value!r}"
        )


@dataclass(frozen=True)
class ChurnSpec:
    """A frozen, seeded worker-churn schedule (dict/JSON round-trip)."""

    kills_per_worker: int = 2
    min_gap_cells: int = 1
    max_gap_cells: int = 6
    warmup_cells: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        _check_count(self.kills_per_worker, "kills_per_worker")
        _check_count(self.min_gap_cells, "min_gap_cells")
        _check_count(self.max_gap_cells, "max_gap_cells")
        _check_count(self.warmup_cells, "warmup_cells")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultError(f"churn seed must be an integer, got {self.seed!r}")
        if self.max_gap_cells < self.min_gap_cells:
            raise FaultError(
                f"churn max_gap_cells ({self.max_gap_cells}) must be >= "
                f"min_gap_cells ({self.min_gap_cells})"
            )

    def schedule(self, n_workers: int, n_cells: int) -> tuple:
        """The episode's kill triggers, sorted by done-count threshold.

        Every slot is killed exactly ``kills_per_worker`` times, in a
        seeded-shuffled order, at thresholds that advance by seeded gaps
        from ``warmup_cells`` — and clamp to ``n_cells - 1`` so each
        kill fires before the final cell completes (a kill scheduled
        after the episode ends would test nothing).
        """
        if n_workers < 1:
            raise FaultError(f"a fleet needs >= 1 worker, got {n_workers}")
        victims = [
            slot
            for slot in range(n_workers)
            for _ in range(self.kills_per_worker)
        ]
        rng = random.Random(self.seed)
        rng.shuffle(victims)
        ceiling = max(n_cells - 1, 0)
        triggers = []
        threshold = self.warmup_cells
        for slot in victims:
            triggers.append(
                KillTrigger(after_done=min(threshold, ceiling), slot=slot)
            )
            threshold += rng.randint(self.min_gap_cells, self.max_gap_cells)
        return tuple(triggers)

    def to_dict(self) -> dict:
        return {
            "kills_per_worker": self.kills_per_worker,
            "min_gap_cells": self.min_gap_cells,
            "max_gap_cells": self.max_gap_cells,
            "warmup_cells": self.warmup_cells,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChurnSpec":
        if not isinstance(data, dict):
            raise FaultError(
                f"a churn spec must be a mapping, got {type(data).__name__}"
            )
        known = {spec.name for spec in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultError(
                f"churn spec does not understand field(s) "
                f"{', '.join(map(repr, unknown))} (valid: "
                f"{', '.join(sorted(known))})"
            )
        return cls(**data)


@dataclass(frozen=True)
class RestartPolicy:
    """Deterministic capped backoff for respawning killed workers."""

    max_restarts: int = 16
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 1.0

    def __post_init__(self) -> None:
        _check_count(self.max_restarts, "max_restarts")
        if self.backoff_base_seconds <= 0 or self.backoff_cap_seconds <= 0:
            raise FaultError("restart backoff seconds must be positive")

    def delay(self, prior_restarts: int) -> float:
        """Backoff before restart number ``prior_restarts + 1`` (no
        jitter: the soak report must replay bit-for-bit)."""
        return min(
            self.backoff_base_seconds * (2 ** prior_restarts),
            self.backoff_cap_seconds,
        )


@dataclass
class SoakReport:
    """Everything one soak episode observed, plus its verdict."""

    n_cells: int
    workers: int
    churn: ChurnSpec
    schedule: tuple = ()
    kills: tuple = ()
    restarts: dict = field(default_factory=dict)
    unplanned_respawns: int = 0
    statuses: dict = field(default_factory=dict)
    invariant_failures: list = field(default_factory=list)
    #: ``None`` when no sequential reference was run.
    stream_failures: "list | None" = None
    shm_leaked: list = field(default_factory=list)
    swept_leases: int = 0
    wall_seconds: float = 0.0
    record_path: str = ""
    reference_path: "str | None" = None
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and not self.invariant_failures
            and not self.stream_failures
            and not self.shm_leaked
            and len(self.kills) == len(self.schedule)
            and all(status == "ok" for status in self.statuses.values())
        )

    def deterministic_view(self) -> dict:
        """The replayable subset: identical across same-seed episodes.

        Excludes wall-clock, restart timing, swept-lease counts and
        paths — everything the host's scheduler can perturb.
        """
        return {
            "n_cells": self.n_cells,
            "workers": self.workers,
            "churn": self.churn.to_dict(),
            "schedule": [trigger.to_dict() for trigger in self.schedule],
            "kills": [trigger.to_dict() for trigger in self.kills],
            "statuses": dict(sorted(self.statuses.items())),
            "invariant_failures": list(self.invariant_failures),
            "stream_failures": self.stream_failures,
            "shm_leaked": list(self.shm_leaked),
            "error": self.error,
            "ok": self.ok,
        }

    def to_dict(self) -> dict:
        data = self.deterministic_view()
        data.update({
            "restarts": {str(slot): n for slot, n in sorted(self.restarts.items())},
            "unplanned_respawns": self.unplanned_respawns,
            "swept_leases": self.swept_leases,
            "wall_seconds": self.wall_seconds,
            "record_path": self.record_path,
            "reference_path": self.reference_path,
        })
        return data


class FleetSupervisor:
    """Run one plan through an N-worker fleet under seeded churn."""

    def __init__(
        self,
        plan,
        *,
        workers: int = 4,
        churn: "ChurnSpec | None" = None,
        restart: "RestartPolicy | None" = None,
        ttl_seconds: float = 2.0,
        poll_seconds: float = 0.05,
        stall_seconds: "float | None" = None,
        spool_dir: "str | Path | None" = None,
        fsync: bool = True,
        fault_plan: "str | Path | None" = None,
    ) -> None:
        if workers < 1:
            raise FaultError(f"a soak fleet needs >= 1 worker, got {workers}")
        self.plan = plan
        self.workers = workers
        self.churn = churn if churn is not None else ChurnSpec()
        self.restart = restart if restart is not None else RestartPolicy()
        self.ttl_seconds = ttl_seconds
        self.poll_seconds = poll_seconds
        self.stall_seconds = stall_seconds
        self.spool_dir = spool_dir
        self.fsync = fsync
        self.fault_plan = fault_plan

    # -- the episode ----------------------------------------------------

    def run(
        self,
        *,
        record: "str | Path | None" = None,
        reference: bool = True,
        progress=None,
    ) -> SoakReport:
        """One full soak episode; never raises for in-episode failures —
        the report carries the verdict (raising would lose it)."""
        from repro.api.events import EventBus, JsonlRecorder
        from repro.distributed.coordinator import DistributedSession, plan_cells
        from repro.distributed.spool import Spool

        say = progress if progress is not None else (lambda message: None)
        started = time.perf_counter()
        cells = plan_cells(self.plan)
        root = Path(self.spool_dir or tempfile.mkdtemp(prefix="repro-soak-"))
        ephemeral = self.spool_dir is None
        spool = Spool(root, ttl_seconds=self.ttl_seconds).ensure()
        report = SoakReport(
            n_cells=len(cells),
            workers=self.workers,
            churn=self.churn,
            schedule=self.churn.schedule(self.workers, len(cells)),
            restarts={slot: 0 for slot in range(self.workers)},
        )
        shm_before = set(shm_segments())

        record_path = Path(record) if record else root / "soak-distributed.jsonl"
        record_path.parent.mkdir(parents=True, exist_ok=True)
        report.record_path = str(record_path)
        recorder = JsonlRecorder(record_path, fsync=False)
        session = DistributedSession(
            spool_dir=root,
            local_workers=0,
            ttl_seconds=self.ttl_seconds,
            poll_seconds=self.poll_seconds,
            stall_seconds=self.stall_seconds,
            fsync=self.fsync,
        )
        outcome: dict = {}

        def drive() -> None:
            try:
                outcome["result"] = session.run(self.plan, bus=EventBus(recorder))
            except BaseException as error:  # noqa: BLE001 — the report
                outcome["error"] = error    # carries it; never swallow
            finally:
                recorder.close()

        coordinator = threading.Thread(
            target=drive, name="soak-coordinator", daemon=True
        )
        coordinator.start()
        fleet = [self._spawn(root, slot, respawn=False) for slot in range(self.workers)]
        say(f"soak: {self.workers} workers on {len(cells)} cells at {root}")

        kills: list = []
        pending = list(report.schedule)
        try:
            while coordinator.is_alive():
                done = len(spool.done_ids())
                while pending and done >= pending[0].after_done:
                    trigger = pending.pop(0)
                    self._kill(fleet, trigger.slot)
                    kills.append(trigger)
                    say(
                        f"soak: killed worker slot {trigger.slot} after "
                        f"{trigger.after_done} done cell(s)"
                    )
                    self._respawn(root, fleet, trigger.slot, report)
                if not spool.all_done():
                    self._respawn_dead(root, fleet, spool, report)
                coordinator.join(timeout=self.poll_seconds)
            # The tail of the schedule may not have been observed before
            # the last cells completed; flush it so ``kills == schedule``
            # holds in every episode (the report must be replayable).
            for trigger in pending:
                self._kill(fleet, trigger.slot)
                kills.append(trigger)
        finally:
            self._drain(fleet)
        report.kills = tuple(kills)

        error = outcome.get("error")
        if error is not None:
            report.error = f"{type(error).__name__}: {error}"
        report.swept_leases = len(spool.sweep_done_leases())
        report.statuses = {
            cell_id: (spool.done_payload(cell_id) or {}).get("status", "missing")
            for cell_id in spool.cell_ids()
            if cell_id in spool.done_ids()
        }
        report.invariant_failures = check_spool(spool, len(cells))
        stale = spool.stale_leases()
        if stale:
            report.invariant_failures.append(f"stale lease(s): {stale}")
        report.shm_leaked = sorted(set(shm_segments()) - shm_before)

        if reference and report.error is None:
            report.stream_failures = self._compare_to_reference(
                record_path, report, say
            )

        report.wall_seconds = time.perf_counter() - started
        if ephemeral and report.ok:
            import shutil

            shutil.rmtree(root, ignore_errors=True)
        return report

    # -- the sequential reference ---------------------------------------

    def _compare_to_reference(self, record_path, report, say) -> list:
        """Re-run the plan in-process on ``sequential``; diff the streams."""
        from repro.api.events import EventBus, JsonlRecorder
        from repro.api.session import TuningSession

        say("soak: running the in-process sequential reference")
        reference_path = record_path.parent / (
            record_path.stem + "-reference.jsonl"
        )
        report.reference_path = str(reference_path)
        ref_plan = dataclasses.replace(
            self.plan, backend="sequential", spool_dir=None
        )
        recorder = JsonlRecorder(reference_path, fsync=False)
        try:
            TuningSession().run(ref_plan, bus=EventBus(recorder))
        except Exception as error:  # noqa: BLE001 — verdict, not crash
            return [f"sequential reference failed: {type(error).__name__}: {error}"]
        finally:
            recorder.close()
        return compare_event_streams(
            load_event_log(reference_path), load_event_log(record_path)
        )

    # -- the fleet ------------------------------------------------------

    def _spawn(self, root: Path, slot: int, *, respawn: bool):
        import repro

        env = os.environ.copy()
        src = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
        log = open(
            root / f"soak-worker-{slot}.log",
            "a" if respawn else "w",
            encoding="utf-8",
        )
        command = [
            sys.executable, "-m", "repro.cli", "worker", str(root),
            "--exit-when-done",
            "--ttl", str(self.ttl_seconds),
        ]
        if not self.fsync:
            command.append("--no-fsync")
        if self.fault_plan is not None:
            command += ["--fault-plan", str(self.fault_plan)]
        return (
            subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=env
            ),
            log,
        )

    @staticmethod
    def _kill(fleet, slot: int) -> None:
        proc, _ = fleet[slot % len(fleet)]
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    def _respawn(self, root: Path, fleet, slot: int, report: SoakReport) -> None:
        index = slot % len(fleet)
        prior = report.restarts.get(index, 0)
        if prior >= self.restart.max_restarts:
            return
        time.sleep(self.restart.delay(prior))
        _, log = fleet[index]
        log.close()
        fleet[index] = self._spawn(root, index, respawn=True)
        report.restarts[index] = prior + 1

    def _respawn_dead(self, root: Path, fleet, spool, report: SoakReport) -> None:
        """Respawn workers that died *unplanned* (an injected crash)."""
        for index, (proc, _) in enumerate(fleet):
            if proc.poll() is None:
                continue
            prior = report.restarts.get(index, 0)
            if prior >= self.restart.max_restarts:
                continue
            self._respawn(root, fleet, index, report)
            report.unplanned_respawns += 1

    def _drain(self, fleet) -> None:
        for proc, _ in fleet:
            if proc.poll() is None:
                proc.terminate()
        for proc, _ in fleet:
            try:
                proc.wait(timeout=2 * self.ttl_seconds)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        for _, log in fleet:
            log.close()
