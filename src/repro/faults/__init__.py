"""Failpoint plane: deterministic fault injection across the stack.

Named injection sites (:data:`~repro.faults.plan.FAULT_SITES`) are
compiled into the distributed spool, the worker agent, the ledger
writer, the coordinator and the daemon client/server; a frozen, seeded
:class:`FaultPlan` decides which visits of which site misbehave and how
— so every fault schedule is a small replayable file, exactly like a
:class:`~repro.scenarios.TraceSpec` workload or a
:class:`~repro.scenarios.ChaosSpec` engine-chaos schedule.

This package root stays dependency-free (plan + plane only, stdlib
imports) so :mod:`repro.api.events` and the spool can mark their sites
without import cycles.  The heavier pieces live one level down:
:mod:`repro.faults.supervisor` (the ``repro soak`` fleet supervisor and
churn schedules) and :mod:`repro.faults.invariants` (the standing
post-episode assertions).
"""

from repro.faults.plan import (
    FAULT_SITES,
    FaultError,
    FaultPlan,
    FaultRule,
    load_fault_plan,
)
from repro.faults.plane import (
    ENV_FAULT_PLAN,
    FaultPlane,
    activate,
    active_plane,
    deactivate,
    fire,
    trip,
)

__all__ = [
    "ENV_FAULT_PLAN",
    "FAULT_SITES",
    "FaultError",
    "FaultPlan",
    "FaultPlane",
    "FaultRule",
    "activate",
    "active_plane",
    "deactivate",
    "fire",
    "load_fault_plan",
    "trip",
]
