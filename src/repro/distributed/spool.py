"""The shared-directory work spool: claimable cells with leases.

A spool is a directory (local, NFS, or any shared filesystem) that turns
a campaign fleet into claimable work units.  Every campaign cell of a
:class:`~repro.api.plans.CampaignPlan`/:class:`~repro.api.plans.SweepPlan`
becomes one JSON file keyed by its deterministic ``cell_key``
(:func:`~repro.api.events.campaign_cell_key`), and any worker on any
host can claim, execute and complete it — idempotently, because the
cell key pins the exact computation and the per-cell JSONL ledger is
bit-identical however many times the cell runs.

Layout (all paths under one root)::

    cells/<cell_id>.json            the work unit (derived plan + key)
    leases/<cell_id>.lease          claim: owner id inside, heartbeat mtime
    ledgers/<cell_id>.<owner>.jsonl fsynced event ledger per attempt
    done/<cell_id>.json             completion marker (exactly one winner)
    workers/<worker_id>.json        worker liveness, heartbeat mtime

Correctness rests on three POSIX atomicities (all of which NFSv3+
honours):

* **claim** — ``os.link`` of a private temp file onto the lease path;
  creating a hard link is atomic and fails with ``EEXIST`` when the
  lease exists, so exactly one claimant wins;
* **reclaim** — an expired lease (heartbeat mtime older than
  ``ttl_seconds``) is ``os.rename``\\ d aside to a unique stale name;
  rename succeeds for exactly one stealer, and a crashed host is from
  then on just unclaimed cells;
* **completion** — the done marker is also ``os.link``\\ ed into place,
  so when a presumed-dead worker and its reclaimer both finish, exactly
  one attempt becomes the authoritative result (the marker names the
  winning attempt's ledger file).

Heartbeats are ``os.utime`` on the lease — a metadata write, no content
race with readers.  Leases carry their owner id, so a worker whose lease
was stolen (it was presumed dead but was merely slow) detects the loss
on its next heartbeat and abandons the attempt instead of double
completing.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.plane import fire as _fire

__all__ = [
    "DEFAULT_TTL_SECONDS",
    "LeaseLost",
    "Spool",
    "SpoolCell",
    "SpoolError",
    "cell_id_for",
]

#: Default lease/worker heartbeat time-to-live.  A worker heartbeats at
#: a quarter of this, so a lease survives several missed beats before a
#: reclaim — slow NFS metadata writes must not look like death.
DEFAULT_TTL_SECONDS = 15.0


class SpoolError(RuntimeError):
    """A spool file is unreadable or corrupt; the message names the file.

    Raised instead of a bare ``json.JSONDecodeError`` so an operator
    staring at a wedged fleet sees *which* cell or done marker carries a
    torn final write, not an anonymous parse error.
    """


class LeaseLost(RuntimeError):
    """This worker's lease was reclaimed — it was presumed dead.

    The only correct reaction is to abandon the in-flight attempt: a
    reclaimer owns the cell now, and the done-marker link guarantees at
    most one attempt publishes a result anyway.
    """


def cell_id_for(index: int, cell_key: str) -> str:
    """A filesystem-safe, deterministic id for one cell.

    Cell keys contain ``:`` and ``/`` (they are readable grep targets,
    not filenames), so filenames use the plan position plus a digest.
    The index prefix keeps directory listings in plan order.
    """
    digest = hashlib.sha1(cell_key.encode()).hexdigest()[:12]
    return f"{index:04d}-{digest}"


@dataclass(frozen=True)
class SpoolCell:
    """One claimable work unit: a single-campaign plan plus identity."""

    index: int                      # position in the dispatched plan
    cell_key: str                   # deterministic campaign identity
    campaign: str                   # resolved query name (event labels)
    plan: dict = field(hash=False)  # derived single-campaign CampaignPlan
    scenario: str | None = None     # sweep grid label, when any
    n_steps: int = 0                # rate changes (progress/failure events)
    #: Position within the cell's own fleet/scenario — what campaign
    #: events stamp as ``index`` (sweeps restart it per scenario, while
    #: :attr:`index` keeps growing across the whole grid).
    fleet_index: int = 0

    @property
    def id(self) -> str:
        return cell_id_for(self.index, self.cell_key)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "cell_key": self.cell_key,
            "campaign": self.campaign,
            "plan": self.plan,
            "scenario": self.scenario,
            "n_steps": self.n_steps,
            "fleet_index": self.fleet_index,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpoolCell":
        return cls(
            index=data["index"],
            cell_key=data["cell_key"],
            campaign=data["campaign"],
            plan=data["plan"],
            scenario=data.get("scenario"),
            n_steps=data.get("n_steps", 0),
            fleet_index=data.get("fleet_index", data["index"]),
        )


def _read_json(path: Path, what: str) -> dict:
    """Parse one spool JSON file, naming it on corruption.

    ``FileNotFoundError`` propagates (absence has per-caller meaning —
    a missing done marker is "not done", a missing cell is a caller
    bug); a *present but unparseable* file is always a
    :class:`SpoolError` — the signature of a torn write.
    """
    text = path.read_text(encoding="utf-8")
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise SpoolError(
            f"{what} {path} is corrupt or truncated (torn write?): {error}"
        ) from None


def _write_durable(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` and fsync it (content must not be lost
    to a crash once another host can observe the file)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())


class Spool:
    """One work spool rooted at a (possibly shared) directory."""

    def __init__(
        self, root: "str | Path", *, ttl_seconds: float = DEFAULT_TTL_SECONDS
    ) -> None:
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.root = Path(root)
        self.ttl_seconds = ttl_seconds
        self.cells_dir = self.root / "cells"
        self.leases_dir = self.root / "leases"
        self.ledgers_dir = self.root / "ledgers"
        self.done_dir = self.root / "done"
        self.workers_dir = self.root / "workers"
        self._cell_cache: dict[str, SpoolCell] = {}

    def ensure(self) -> "Spool":
        for directory in (
            self.cells_dir, self.leases_dir, self.ledgers_dir,
            self.done_dir, self.workers_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    # -- cells ----------------------------------------------------------

    def seed(self, cells) -> int:
        """Record every cell not already spooled; idempotent.

        Returns how many cells were newly written.  Existing cell files
        are left untouched — cell ids are deterministic, so re-seeding
        the same plan (a coordinator restart, a second dispatcher) finds
        its cells already in place.
        """
        self.ensure()
        seeded = 0
        for cell in cells:
            target = self.cells_dir / f"{cell.id}.json"
            if target.exists():
                continue
            tmp = self.cells_dir / f".seed-{uuid.uuid4().hex}"
            _write_durable(tmp, json.dumps(cell.to_dict(), sort_keys=True) + "\n")
            try:
                os.link(tmp, target)
                seeded += 1
            except FileExistsError:
                pass        # a concurrent seeder won; same deterministic cell
            finally:
                tmp.unlink(missing_ok=True)
        return seeded

    def cell(self, cell_id: str) -> SpoolCell:
        cached = self._cell_cache.get(cell_id)
        if cached is not None:
            return cached
        path = self.cells_dir / f"{cell_id}.json"
        cell = SpoolCell.from_dict(_read_json(path, "spool cell"))
        self._cell_cache[cell_id] = cell
        return cell

    def cell_ids(self) -> list[str]:
        """Every spooled cell id, in plan (index-prefix) order."""
        if not self.cells_dir.is_dir():
            return []
        return sorted(path.stem for path in self.cells_dir.glob("*.json"))

    def pending_ids(self) -> list[str]:
        """Cells without a completion marker, in plan order."""
        done = self.done_ids()
        return [cell_id for cell_id in self.cell_ids() if cell_id not in done]

    # -- leases ---------------------------------------------------------

    def _lease_path(self, cell_id: str) -> Path:
        return self.leases_dir / f"{cell_id}.lease"

    def claim(self, cell_id: str, owner: str) -> bool:
        """Try to claim ``cell_id`` for ``owner``; True on success.

        An unexpired lease held by anyone (including a previous
        incarnation of ``owner``) refuses the claim; an expired one is
        stolen first — exactly one concurrent stealer wins the rename.
        """
        lease = self._lease_path(cell_id)
        tmp = self.leases_dir / f".claim-{uuid.uuid4().hex}"
        _write_durable(
            tmp,
            json.dumps({"owner": owner, "cell": cell_id}, sort_keys=True) + "\n",
        )
        _fire("spool.claim.race-delay")
        try:
            while True:
                try:
                    os.link(tmp, lease)
                    return True
                except FileExistsError:
                    if not self._expire(lease):
                        return False
        finally:
            tmp.unlink(missing_ok=True)

    def _heartbeat_age(self, mtime: float, now: float) -> float:
        """Age of a heartbeat mtime, robust to clock skew.

        A mtime *ahead* of our clock (NFS server skew, a backward clock
        step on this host) would make ``now - mtime`` negative and the
        heartbeat look fresh forever.  Skew within one TTL is plausible
        for a live heartbeater and clamps to a fresh age of ``0``; a
        mtime further in the future than any live writer plus skew could
        produce is implausible and treated as already stale (``inf``) —
        a lease that can never be refreshed must be reclaimable.
        """
        age = now - mtime
        if age >= 0:
            return age
        if -age <= self.ttl_seconds:
            return 0.0
        return float("inf")

    def _expire(self, lease: Path) -> bool:
        """Remove ``lease`` if its heartbeat went stale; True if the
        caller may retry its claim."""
        try:
            age = self._heartbeat_age(lease.stat().st_mtime, time.time())
        except FileNotFoundError:
            return True                 # released/stolen concurrently
        if age <= self.ttl_seconds:
            return False
        stale = self.leases_dir / f".stale-{uuid.uuid4().hex}"
        try:
            os.rename(lease, stale)     # one stealer wins
        except FileNotFoundError:
            return True                 # another stealer beat us; retry
        stale.unlink(missing_ok=True)
        return True

    def lease_owner(self, cell_id: str) -> str | None:
        try:
            data = json.loads(self._lease_path(cell_id).read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return data.get("owner")

    def heartbeat(self, cell_id: str, owner: str) -> None:
        """Refresh the lease's liveness; raises :class:`LeaseLost` when
        the lease vanished or belongs to someone else."""
        _fire("spool.heartbeat.stall")
        lease = self._lease_path(cell_id)
        if self.lease_owner(cell_id) != owner:
            raise LeaseLost(
                f"lease on {cell_id} is no longer held by {owner!r} "
                "(reclaimed after missed heartbeats?)"
            )
        try:
            os.utime(lease)
        except FileNotFoundError:
            raise LeaseLost(f"lease on {cell_id} vanished under {owner!r}") from None

    def release(self, cell_id: str, owner: str) -> None:
        """Drop ``owner``'s lease (no-op when it is not theirs anymore)."""
        if self.lease_owner(cell_id) == owner:
            self._lease_path(cell_id).unlink(missing_ok=True)

    def stale_leases(self) -> list[str]:
        """Cell ids whose lease outlived its TTL (hygiene checks)."""
        if not self.leases_dir.is_dir():
            return []
        now = time.time()
        stale = []
        for path in self.leases_dir.glob("*.lease"):
            try:
                age = self._heartbeat_age(path.stat().st_mtime, now)
            except FileNotFoundError:
                continue
            if age > self.ttl_seconds:
                stale.append(path.stem)
        return sorted(stale)

    def leases(self) -> list[str]:
        """Cell ids currently under any lease (stale or fresh)."""
        if not self.leases_dir.is_dir():
            return []
        return sorted(path.stem for path in self.leases_dir.glob("*.lease"))

    # -- ledgers + completion -------------------------------------------

    def ledger_path(self, cell_id: str, owner: str) -> Path:
        """Where ``owner``'s attempt at ``cell_id`` records its events.

        Per-attempt files (not one file per cell): a presumed-dead
        worker may still be writing while its reclaimer re-runs the
        cell, and two writers on one file would interleave garbage.  The
        done marker names the attempt that counts.
        """
        safe_owner = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in owner
        )
        return self.ledgers_dir / f"{cell_id}.{safe_owner}.jsonl"

    def mark_done(self, cell_id: str, payload: dict) -> bool:
        """Publish the completion marker; False when another attempt won."""
        done = self.done_dir / f"{cell_id}.json"
        tmp = self.done_dir / f".done-{uuid.uuid4().hex}"
        _write_durable(tmp, json.dumps(payload, sort_keys=True) + "\n")
        try:
            os.link(tmp, done)
            return True
        except FileExistsError:
            return False
        finally:
            tmp.unlink(missing_ok=True)

    def done_ids(self) -> set[str]:
        if not self.done_dir.is_dir():
            return set()
        return {path.stem for path in self.done_dir.glob("*.json")}

    def done_payload(self, cell_id: str) -> dict | None:
        """The completion marker's payload; ``None`` when not done yet.

        A *present but corrupt* marker raises :class:`SpoolError` naming
        the file: the marker is written via fsynced-temp-then-link, so a
        torn one means real filesystem trouble — silently treating it as
        "not done" would make the coordinator wait forever on a cell the
        spool believes is finished.
        """
        path = self.done_dir / f"{cell_id}.json"
        try:
            return _read_json(path, "spool done marker")
        except FileNotFoundError:
            return None

    def all_done(self) -> bool:
        return not self.pending_ids()

    # -- worker liveness ------------------------------------------------

    def worker_heartbeat(self, worker_id: str) -> None:
        """Record (or refresh) a worker's liveness file."""
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        path = self.workers_dir / f"{worker_id}.json"
        if path.exists():
            os.utime(path)
        else:
            _write_durable(
                path, json.dumps({"worker": worker_id}, sort_keys=True) + "\n"
            )

    def live_workers(self) -> list[str]:
        """Workers whose heartbeat is within the TTL."""
        if not self.workers_dir.is_dir():
            return []
        now = time.time()
        live = []
        for path in self.workers_dir.glob("*.json"):
            try:
                age = self._heartbeat_age(path.stat().st_mtime, now)
            except FileNotFoundError:
                continue
            if age <= self.ttl_seconds:
                live.append(path.stem)
        return sorted(live)

    def has_live_activity(self) -> bool:
        """Any fresh worker heartbeat *or* fresh lease?

        The coordinator's stall detector: a worker deep inside a long
        campaign refreshes its lease and worker file from the heartbeat
        thread, so "no fresh anything for a TTL" means the fleet is gone.
        """
        if self.live_workers():
            return True
        now = time.time()
        for path in self.leases_dir.glob("*.lease"):
            try:
                age = self._heartbeat_age(path.stat().st_mtime, now)
            except FileNotFoundError:
                continue
            if age <= self.ttl_seconds:
                return True
        return False

    # -- hygiene --------------------------------------------------------

    def sweep_done_leases(self) -> list[str]:
        """Remove leases left behind on already-completed cells.

        A worker SIGKILLed in the window between publishing a cell's
        done marker and releasing its lease leaves a lease nobody ever
        reclaims: the cell is no longer pending, so no claimant will
        rename it aside.  The exclusive done marker makes the debris
        harmless, but hygiene checks would count it as a stale lease
        forever.  Sweeping uses the same rename-aside mechanic claims
        use, so racing sweepers (or a sweeper racing a claim) stay
        safe; returns the swept cell ids.
        """
        removed = []
        done = self.done_ids()
        for cell_id in self.leases():
            if cell_id not in done:
                continue
            aside = self.leases_dir / f".swept-{uuid.uuid4().hex}"
            try:
                os.rename(self._lease_path(cell_id), aside)
            except FileNotFoundError:
                continue                # released/swept concurrently
            aside.unlink(missing_ok=True)
            removed.append(cell_id)
        return sorted(removed)
