"""The worker agent: a long-lived loop claiming and executing cells.

One :class:`WorkerAgent` runs per host (or several per big host).  It
polls the spool for unclaimed cells in plan order, claims one, executes
it through the ordinary :class:`~repro.api.session.TuningSession` — so
a worker reuses the whole single-host stack: shared pure caches warm
across the cells it runs, the pretrained artifact resolves once per
process, and results are bit-identical to any other backend — and
streams the cell's typed events into a per-attempt fsynced JSONL ledger
inside the spool.

While a cell executes, a heartbeat thread refreshes the lease (and the
worker's own liveness file) every quarter TTL, retrying transient
filesystem errors with jittered exponential backoff
(:func:`repro.utils.retry.with_retries`).  If the lease turns out to be
*lost* — this worker was presumed dead and the cell reclaimed — the
attempt is abandoned: the reclaimer owns the cell, and the spool's
exclusive done marker guarantees one published result either way.

A campaign that fails *deterministically* (the plan itself raises) is
not retried forever: its ledger ends in the typed
:class:`~repro.api.events.CampaignFailed` and the cell is marked done
with ``status="failed"`` — the coordinator surfaces it exactly like a
single-host worker death.  Only *worker* death (SIGKILL, OOM, power)
leaves a cell unfinished, and that is what lease reclaim re-runs.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import traceback
from pathlib import Path

from repro.api.events import CampaignFailed, EventBus, JsonlRecorder
from repro.api.plans import plan_from_dict
from repro.distributed.spool import LeaseLost, Spool, SpoolCell
from repro.faults.plane import fire as _fire
from repro.utils.retry import with_retries

__all__ = ["WorkerAgent"]


def default_worker_id() -> str:
    """``host-pid`` — unique per agent process across a shared spool."""
    return f"{socket.gethostname()}-{os.getpid()}"


class WorkerAgent:
    """Claim cells from ``spool`` and execute them until told to stop.

    ``exit_when_done=True`` ends :meth:`run` once every spooled cell has
    a completion marker (the coordinator's ephemeral local fleets);
    standing fleets omit it and keep polling for newly seeded cells.
    ``max_cells`` bounds how many cells this agent executes (tests).
    """

    def __init__(
        self,
        spool: "Spool | str | Path",
        *,
        worker_id: str | None = None,
        session=None,
        poll_seconds: float = 0.2,
        exit_when_done: bool = False,
        max_cells: int | None = None,
        fsync: bool = True,
        heartbeat_seconds: float | None = None,
        retry_rng: random.Random | None = None,
    ) -> None:
        self.spool = spool if isinstance(spool, Spool) else Spool(spool)
        self.worker_id = worker_id or default_worker_id()
        self.poll_seconds = poll_seconds
        self.exit_when_done = exit_when_done
        self.max_cells = max_cells
        self.fsync = fsync
        self.heartbeat_seconds = (
            heartbeat_seconds
            if heartbeat_seconds is not None
            else self.spool.ttl_seconds / 4.0
        )
        self._retry_rng = retry_rng
        self._session = session
        self._stop = threading.Event()
        #: Cells this agent completed (published the done marker for).
        self.n_completed = 0
        #: Attempts abandoned because the lease was reclaimed mid-run.
        self.n_abandoned = 0

    @property
    def session(self):
        if self._session is None:
            from repro.api.session import TuningSession
            from repro.service.cache import TuningCacheSet

            # One cache set for the agent's lifetime: every cell this
            # worker runs warms the next, same as a single-host fleet.
            self._session = TuningSession(caches=TuningCacheSet())
        return self._session

    def request_stop(self) -> None:
        """Finish the in-flight cell, then return from :meth:`run`.

        Safe from signal handlers — it only sets a flag.  The current
        cell completes normally (its lease keeps beating), so a drained
        worker never strands half-executed work.
        """
        self._stop.set()

    # -- the loop -------------------------------------------------------

    def run(self) -> int:
        """Claim/execute until stopped; returns cells completed."""
        self.spool.ensure()
        while not self._stop.is_set():
            self.spool.worker_heartbeat(self.worker_id)
            progressed = False
            for cell_id in self.spool.pending_ids():
                if self._stop.is_set():
                    break
                if not self.spool.claim(cell_id, self.worker_id):
                    continue
                if self.execute(self.spool.cell(cell_id)):
                    self.n_completed += 1
                progressed = True
                if (
                    self.max_cells is not None
                    and self.n_completed >= self.max_cells
                ):
                    return self.n_completed
            # An empty spool is *unseeded*, not done: a worker may attach
            # before its coordinator finishes seeding, and exiting then
            # would strand the fleet.  Keep polling until cells exist.
            if (
                self.exit_when_done
                and self.spool.cell_ids()
                and self.spool.all_done()
            ):
                return self.n_completed
            if not progressed:
                self._stop.wait(timeout=self.poll_seconds)
        return self.n_completed

    # -- one cell -------------------------------------------------------

    def execute(self, cell: SpoolCell) -> bool:
        """Run one claimed cell to a published result or an abandon.

        Returns True when *this* attempt published the done marker.
        """
        from repro.service import CampaignExecutionError

        _fire("worker.execute.crash")
        ledger = self.spool.ledger_path(cell.id, self.worker_id)
        recorder = JsonlRecorder(ledger, fsync=self.fsync)
        stop_beat = threading.Event()
        lost = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(cell.id, stop_beat, lost),
            name=f"lease-heartbeat-{cell.id}",
            daemon=True,
        )
        beat.start()
        status = "ok"
        try:
            try:
                plan = plan_from_dict(cell.plan)
                self.session.run(plan, bus=EventBus(recorder))
            except CampaignExecutionError:
                # The ledger already ends in the typed CampaignFailed —
                # a deterministic plan failure, published as such.
                status = "failed"
            except Exception as error:  # noqa: BLE001 — agent isolation:
                # a cell must never kill the agent; anything the session
                # could not even turn into events becomes one here.
                status = "failed"
                recorder(CampaignFailed(
                    campaign=cell.campaign,
                    index=0,
                    backend="worker",
                    error_type=type(error).__name__,
                    error_message=str(error),
                    traceback=traceback.format_exc(),
                    cell_key=cell.cell_key,
                ))
        finally:
            stop_beat.set()
            beat.join()
            recorder.close()
        if lost.is_set():
            # Presumed dead: a reclaimer owns this cell now.  Publishing
            # would race its attempt; abandon ours (the ledger file
            # stays, unreferenced — the done marker names the winner's).
            self.n_abandoned += 1
            return False
        published = self.spool.mark_done(cell.id, {
            "cell": cell.id,
            "cell_key": cell.cell_key,
            "status": status,
            "owner": self.worker_id,
            "ledger": ledger.name,
            "n_events": recorder.n_events,
        })
        self.spool.release(cell.id, self.worker_id)
        return published

    def _heartbeat_loop(
        self, cell_id: str, stop: threading.Event, lost: threading.Event
    ) -> None:
        while not stop.wait(timeout=self.heartbeat_seconds):
            try:
                # Attempts bound the retry *count*; the deadline bounds
                # its *wall-clock* — a slow-failing filesystem (every
                # utime hanging for seconds) must make this attempt give
                # up before the lease TTL elapses and a peer reclaims,
                # not discover the loss afterwards.
                with_retries(
                    lambda: self._beat(cell_id),
                    retryable=(OSError,),
                    attempts=4,
                    base=min(0.05, self.heartbeat_seconds / 4),
                    rng=self._retry_rng,
                    deadline_seconds=self.spool.ttl_seconds / 2,
                )
            except LeaseLost:
                lost.set()
                return
            except OSError:
                # The filesystem stayed broken through the backoff
                # schedule; the lease will expire and a peer reclaims —
                # treat it as a loss so this attempt abandons cleanly.
                lost.set()
                return

    def _beat(self, cell_id: str) -> None:
        self.spool.heartbeat(cell_id, self.worker_id)
        self.spool.worker_heartbeat(self.worker_id)
