"""The coordinator: seed a spool from a plan, merge worker ledgers.

:func:`plan_cells` flattens a :class:`~repro.api.plans.CampaignPlan` or
:class:`~repro.api.plans.SweepPlan` into independent
:class:`~repro.distributed.spool.SpoolCell` work units — one per
campaign, each carrying a derived single-campaign plan whose
deterministic ``cell_key`` equals the parent plan's.  Because the cell
key pins the computation (query, engine + seed, tuner + layer, rate
trace, tuner seed), *where* a cell runs cannot change *what* it
computes: a fleet spread over N hosts produces results bit-identical to
``backend="sequential"`` on one.

:class:`DistributedSession` mirrors
:meth:`~repro.api.session.TuningSession.stream`: it seeds the spool,
optionally spawns local worker agents (``repro worker`` subprocesses),
then re-emits every cell's ledger **in plan order** as one seq-restamped
event stream — the same typed events, the same ordering guarantees, the
same ``StopIteration.value`` result — so recorders, progress printers,
the daemon and ``--resume`` all work unchanged on top of a fleet.

Failure model: a worker that dies mid-cell simply stops heartbeating;
its lease expires and any surviving worker reclaims and re-runs the cell
(bit-identical, so the retry is invisible in the results).  Only when
the *whole* fleet goes silent — no fresh worker heartbeat, no fresh
lease, no new completion for ``stall_seconds`` — does the coordinator
synthesise a :class:`~repro.api.events.CampaignFailed` per remaining
cell and finish the stream: a dead fleet is a failed campaign, never a
hang.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api.components import resolve_query
from repro.api.events import (
    CacheStats,
    CampaignFailed,
    CampaignFinished,
    CampaignSkipped,
    SweepFinished,
    event_from_dict,
)
from repro.api.plans import CampaignPlan, PlanError, SweepPlan
from repro.distributed.spool import DEFAULT_TTL_SECONDS, Spool, SpoolCell
from repro.faults.plane import fire as _fire

__all__ = ["DistributedSession", "plan_cells"]


def _derived_plan(plan: CampaignPlan, token: str, rates) -> dict:
    """The single-campaign plan one cell executes, as a plain dict.

    The derived plan runs on the ``sequential`` backend (one campaign
    needs no pool) and drops fleet-only machinery: ``cache_path`` stays
    with the coordinator's host, the spool must not recurse, and trace
    sharding is pointless inside a single sequential campaign.  Its
    ``cell_keys()[0]`` equals the parent's key for this campaign — seed
    and engine-seed conventions are the plan's own.
    """
    return CampaignPlan(
        queries=(token,),
        rates=tuple(rates),
        engine=plan.engine,
        tuner=plan.tuner,
        backend="sequential",
        layer=plan.layer,
        prioritize_backpressure=plan.prioritize_backpressure,
        model=plan.model,
        scale=plan.scale,
        seed=plan.seed,
        # Chaos travels with the cell (it shapes results and the cell
        # key); the trace spec does not — rates are already materialized
        # per campaign here, possibly to a per-query chunk of the trace.
        chaos=plan.chaos,
    ).to_dict()


def plan_cells(plan: "CampaignPlan | SweepPlan") -> list[SpoolCell]:
    """Flatten ``plan`` into spool cells, in plan (emission) order."""
    if isinstance(plan, CampaignPlan):
        fleets = [(None, plan)]
    elif isinstance(plan, SweepPlan):
        fleets = [(plan.scenario_label(cell), cell) for cell in plan.expand()]
    else:
        raise PlanError(
            f"the distributed backend executes campaign and sweep plans, "
            f"not a {type(plan).__name__}"
        )
    cells: list[SpoolCell] = []
    for scenario, fleet in fleets:
        keys = fleet.cell_keys()
        for fleet_index, (token, rates) in enumerate(fleet.rates_for()):
            cells.append(SpoolCell(
                index=len(cells),
                cell_key=keys[fleet_index],
                campaign=resolve_query(token, fleet.engine).name,
                plan=_derived_plan(fleet, token, rates),
                scenario=scenario,
                n_steps=len(rates),
                fleet_index=fleet_index,
            ))
    return cells


def _merge_stats(total: dict, stats: dict) -> dict:
    """Accumulate one cell's cache counters into ``total`` (recursive)."""
    for key, value in stats.items():
        if isinstance(value, dict):
            total[key] = _merge_stats(total.get(key) or {}, value)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            total[key] = total.get(key, 0) + value
        else:
            total[key] = value
    return total


class DistributedSession:
    """Run campaign/sweep plans across a fleet of worker agents.

    ``spool_dir`` (or the plan's own ``spool_dir``) names the shared
    directory a standing fleet watches; when neither is set the session
    creates an ephemeral spool under the system temp directory, staffs
    it with ``local_workers`` (default: the plan's ``workers``, else 2)
    ``repro worker`` subprocesses, and removes it afterwards.
    ``local_workers=0`` dispatches without spawning anything — some
    other host's agents must drain the spool.
    """

    def __init__(
        self,
        *,
        spool_dir: "str | Path | None" = None,
        local_workers: int | None = None,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        poll_seconds: float = 0.05,
        stall_seconds: float | None = None,
        fsync: bool = True,
    ) -> None:
        self.spool_dir = spool_dir
        self.local_workers = local_workers
        self.ttl_seconds = ttl_seconds
        self.poll_seconds = poll_seconds
        # Generous by default: a stall is declared only after several
        # missed lease TTLs, so slow worker start-up (interpreter +
        # numpy import is >1s) can never masquerade as fleet death.
        self.stall_seconds = (
            stall_seconds if stall_seconds is not None else 4 * ttl_seconds
        )
        self.fsync = fsync

    # -- the TuningSession-shaped surface -------------------------------

    def run(self, plan, *, bus=None, resume=None):
        stream = self.stream(plan, bus=bus, resume=resume)
        while True:
            try:
                next(stream)
            except StopIteration as stop:
                return stop.value

    def stream(self, plan, *, bus=None, resume=None):
        from repro.api.session import TuningSession

        inner = self._stream(plan, TuningSession._coerce_resume(resume))
        if bus is None:
            return inner
        return TuningSession._published(inner, bus)

    # -- execution ------------------------------------------------------

    def _stream(self, plan, resume):
        from repro.service import CampaignExecutionError

        started = time.perf_counter()
        cells = plan_cells(plan)
        root = Path(
            plan.spool_dir or self.spool_dir or tempfile.mkdtemp(prefix="repro-spool-")
        )
        ephemeral = plan.spool_dir is None and self.spool_dir is None
        spool = Spool(root, ttl_seconds=self.ttl_seconds).ensure()

        seq = 0
        def stamped(event, cell):
            nonlocal seq
            changes: dict = {"seq": seq}
            if cell.scenario is not None:
                changes["scenario"] = cell.scenario
            if hasattr(event, "index"):
                changes["index"] = cell.fleet_index
            if hasattr(event, "backend"):
                changes["backend"] = "distributed"
            seq += 1
            return dataclasses.replace(event, **changes)

        replayed = {
            cell.id: outcome
            for cell in cells
            if (outcome := self._resume_outcome(resume, cell.cell_key)) is not None
        }
        pending = [cell for cell in cells if cell.id not in replayed]
        spool.seed(pending)

        outcomes: dict[int, object] = {}      # cell.index -> CampaignOutcome
        failures: list = []
        scenario_stats: dict = {}             # per-scenario cache counters
        workers: list = []
        fleet_dead = False
        churn_stop = threading.Event()
        churn_thread = None
        try:
            if pending:
                workers = self._spawn_local_workers(root, plan)
                entries = self._churn_entries(plan)
                if entries and workers:
                    # Infrastructure chaos: kill/respawn local agents at
                    # done-count thresholds.  Results stay bit-identical
                    # (lease reclaim re-runs interrupted cells), so the
                    # in-process backends rightly ignore these entries.
                    churn_thread = threading.Thread(
                        target=self._churn_loop,
                        args=(spool, root, workers, entries, churn_stop),
                        name="worker-churn",
                        daemon=True,
                    )
                    churn_thread.start()
            last_sign_of_life = time.time()
            for position, cell in enumerate(cells):
                if cell.id in replayed:
                    yield from self._replay(
                        stamped, cell, replayed[cell.id], resume, outcomes
                    )
                else:
                    if not fleet_dead:
                        payload, last_sign_of_life = self._await_done(
                            spool, cell, workers, last_sign_of_life
                        )
                        fleet_dead = payload is None
                    if fleet_dead:
                        failure = stamped(CampaignFailed(
                            campaign=cell.campaign,
                            index=cell.fleet_index,
                            backend="distributed",
                            error_type="WorkerLost",
                            error_message=(
                                f"no live worker on spool {root} for "
                                f"{self.stall_seconds:g}s; cell never completed"
                            ),
                            cell_key=cell.cell_key,
                        ), cell)
                        failures.append(failure)
                        yield failure
                    else:
                        yield from self._emit_cell(
                            stamped, spool, cell, payload, outcomes, failures,
                            scenario_stats,
                        )
                # Flush this scenario's merged cache stats once its last
                # cell has streamed (cells arrive in plan order, so the
                # scenario changes exactly at fleet boundaries).
                next_cell = cells[position + 1] if position + 1 < len(cells) else None
                if next_cell is None or next_cell.scenario != cell.scenario:
                    stats = scenario_stats.pop(cell.scenario, None)
                    if stats is not None:
                        yield stamped(CacheStats(stats=stats), cell)
        finally:
            churn_stop.set()
            if churn_thread is not None:
                churn_thread.join()
            self._drain_local_workers(workers, healthy=not fleet_dead)
            if not fleet_dead:
                # A worker killed between mark_done and release leaves a
                # lease on a *done* cell — debris no claimant ever
                # reclaims (the cell is not pending).  Sweep it so a
                # standing spool never accumulates phantom stale leases.
                spool.sweep_done_leases()
            if ephemeral and not fleet_dead:
                shutil.rmtree(root, ignore_errors=True)

        wall = time.perf_counter() - started
        if isinstance(plan, SweepPlan):
            yield SweepFinished(
                n_scenarios=plan.n_scenarios,
                n_campaigns=len(outcomes),
                wall_seconds=wall,
                seq=seq,
            )
            if failures:
                raise CampaignExecutionError(failures)
            return self._sweep_result(plan, cells, outcomes, wall)
        if failures:
            raise CampaignExecutionError(failures, outcomes)
        return self._campaign_result(plan, cells, outcomes, wall)

    # -- per-cell emission ----------------------------------------------

    @staticmethod
    def _resume_outcome(resume, cell_key):
        if resume is None:
            return None
        if isinstance(resume, dict):
            return resume.get(cell_key)
        return resume.outcome_for(cell_key)

    def _replay(self, stamped, cell, recorded, resume, outcomes):
        """Re-emit a resume-log campaign without spooling anything."""
        recorded.backend = "distributed"
        outcomes[cell.index] = recorded
        yield stamped(CampaignSkipped(
            campaign=cell.campaign,
            index=cell.fleet_index,
            backend="distributed",
            n_steps=len(recorded.result.processes),
            resumed_from=str(getattr(resume, "path", "") or ""),
            cell_key=cell.cell_key,
        ), cell)
        yield stamped(CampaignFinished(
            campaign=cell.campaign,
            index=cell.fleet_index,
            backend="distributed",
            n_steps=len(recorded.result.processes),
            converged_steps=sum(
                1 for p in recorded.result.processes if p.converged
            ),
            wall_seconds=recorded.wall_seconds,
            outcome=recorded,
            cell_key=cell.cell_key,
        ), cell)

    def _emit_cell(
        self, stamped, spool, cell, payload, outcomes, failures, scenario_stats
    ):
        """Stream the authoritative attempt's ledger, restamped."""
        ledger = spool.ledgers_dir / payload["ledger"]
        for event in self._ledger_events(ledger):
            if isinstance(event, CacheStats):
                # Per-cell stats merge into one per-scenario report —
                # a fleet shares caches per worker, not per campaign.
                scenario_stats[cell.scenario] = _merge_stats(
                    scenario_stats.get(cell.scenario) or {}, event.stats
                )
                continue
            if isinstance(event, CampaignFinished) and event.outcome is not None:
                event.outcome.backend = "distributed"
                outcomes[cell.index] = event.outcome
            event = stamped(event, cell)
            if isinstance(event, CampaignFailed):
                failures.append(event)
            yield event

    @staticmethod
    def _ledger_events(ledger: Path):
        """Parse one attempt ledger, tolerating a crash-truncated tail."""
        try:
            lines = ledger.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return []
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(event_from_dict(json.loads(line)))
            except ValueError:
                continue
        return events

    # -- waiting on the fleet -------------------------------------------

    def _await_done(self, spool, cell, workers, last_sign_of_life):
        """Block until ``cell`` completes; (payload, liveness) or (None, _).

        A ``None`` payload means the fleet went silent: no fresh worker
        heartbeat or lease, no running local worker and no new
        completion for ``stall_seconds``.
        """
        while True:
            _fire("coordinator.poll.delay")
            payload = spool.done_payload(cell.id)
            now = time.time()
            if payload is not None:
                return payload, now
            if (
                spool.has_live_activity()
                or any(proc.poll() is None for proc, _ in workers)
            ):
                last_sign_of_life = now
            elif now - last_sign_of_life > self.stall_seconds:
                return None, last_sign_of_life
            time.sleep(self.poll_seconds)

    # -- local worker fleet ---------------------------------------------

    def _local_worker_count(self, plan) -> int:
        if self.local_workers is not None:
            return self.local_workers
        if plan.workers is not None:
            return plan.workers
        # A named spool implies a standing fleet elsewhere; an ephemeral
        # spool must staff itself.
        has_named_spool = plan.spool_dir is not None or self.spool_dir is not None
        return 0 if has_named_spool else 2

    def _spawn_one(self, root: Path, index: int, *, respawn: bool = False):
        """Start one ``repro worker`` subprocess draining ``root``.

        A respawned worker appends to the slot's log so the kill/restart
        history of a churned slot reads as one continuous transcript.
        """
        import repro

        env = os.environ.copy()
        src = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
        log = open(
            root / f"worker-{index}.log",
            "a" if respawn else "w",
            encoding="utf-8",
        )
        command = [
            sys.executable, "-m", "repro.cli", "worker", str(root),
            "--exit-when-done",
            "--ttl", str(self.ttl_seconds),
        ]
        if not self.fsync:
            command.append("--no-fsync")
        return (
            subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=env
            ),
            log,
        )

    def _spawn_local_workers(self, root: Path, plan) -> list:
        """Start ``repro worker`` subprocesses draining ``root``."""
        count = self._local_worker_count(plan)
        return [self._spawn_one(root, index) for index in range(count)]

    # -- worker churn ----------------------------------------------------

    @staticmethod
    def _churn_entries(plan) -> list:
        """``(after_cells, slot)`` kill thresholds from the plan's chaos.

        Sweep fleets share one local worker pool, so their churn entries
        union (deduped) over one schedule keyed to the *total* done-cell
        count across the spool.
        """
        fleets = plan.expand() if isinstance(plan, SweepPlan) else [plan]
        entries = {
            (churn.after_cells, churn.slot)
            for fleet in fleets
            if fleet.chaos is not None
            for churn in fleet.chaos.worker_churn
        }
        return sorted(entries)

    def _churn_loop(self, spool, root, workers, entries, stop) -> None:
        remaining = list(entries)
        while remaining and not stop.is_set():
            done = len(spool.done_ids())
            while remaining and done >= remaining[0][0]:
                _, slot = remaining.pop(0)
                self._kill_and_respawn(root, workers, slot)
            stop.wait(timeout=self.poll_seconds)

    def _kill_and_respawn(self, root, workers, slot: int) -> None:
        index = slot % len(workers)
        proc, log = workers[index]
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        log.close()
        workers[index] = self._spawn_one(root, index, respawn=True)

    def _drain_local_workers(self, workers, *, healthy: bool) -> None:
        """Let ``--exit-when-done`` agents finish, then insist."""
        for proc, _ in workers:
            if not healthy:
                proc.terminate()
        for proc, _ in workers:
            try:
                proc.wait(timeout=2 * self.ttl_seconds if healthy else 5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        for _, log in workers:
            log.close()

    # -- results --------------------------------------------------------

    @staticmethod
    def _campaign_result(plan, cells, outcomes, wall):
        from repro.api.session import SessionResult

        return SessionResult(
            plan=plan,
            outcomes=[outcomes[cell.index] for cell in cells],
            wall_seconds=wall,
            backend="distributed",
        )

    @staticmethod
    def _sweep_result(plan, cells, outcomes, wall):
        from repro.api.session import SessionResult, SweepResult

        results = []
        for fleet in plan.expand():
            label = plan.scenario_label(fleet)
            fleet_cells = [cell for cell in cells if cell.scenario == label]
            fleet_outcomes = [outcomes[cell.index] for cell in fleet_cells]
            results.append(SessionResult(
                plan=fleet,
                outcomes=fleet_outcomes,
                wall_seconds=sum(o.wall_seconds for o in fleet_outcomes),
                backend="distributed",
            ))
        return SweepResult(plan=plan, results=results, wall_seconds=wall)
