"""Multi-host campaign fleets: a spool of claimable cells plus agents.

The distributed executor scales campaign fleets past one host with
three small parts sharing nothing but a directory:

* :class:`~repro.distributed.spool.Spool` — the work spool: every
  campaign cell of a plan as a claimable JSON unit, with atomic
  hard-link claims, heartbeat leases and exclusive completion markers;
* :class:`~repro.distributed.worker.WorkerAgent` (``repro worker``) —
  a long-lived loop claiming cells and executing them through the
  ordinary :class:`~repro.api.session.TuningSession`, streaming typed
  events to per-attempt fsynced JSONL ledgers;
* :class:`~repro.distributed.coordinator.DistributedSession`
  (``repro dispatch``, or any plan with ``backend = "distributed"``) —
  seeds the spool from a plan and merges the workers' ledgers back into
  one in-order event stream, bit-identical to a single-host run.
"""

from repro.distributed.coordinator import DistributedSession, plan_cells
from repro.distributed.spool import (
    DEFAULT_TTL_SECONDS,
    LeaseLost,
    Spool,
    SpoolCell,
    SpoolError,
    cell_id_for,
)
from repro.distributed.worker import WorkerAgent, default_worker_id

__all__ = [
    "DEFAULT_TTL_SECONDS",
    "DistributedSession",
    "LeaseLost",
    "Spool",
    "SpoolCell",
    "SpoolError",
    "WorkerAgent",
    "cell_id_for",
    "default_worker_id",
    "plan_cells",
]
