"""Steady-state dataflow flow solver (ground truth).

Given a logical dataflow, per-operator parallelism, and source rates, the
solver computes the stationary behaviour of the deployment:

1. **Demand pass** — the rate every operator *would* receive if all
   operators kept up; sources emit their configured rate and each operator
   multiplies by its ground-truth selectivity (joins sum their inputs).
2. **Saturation** — an operator whose input demand exceeds its processing
   ability is *saturated*: it is the root cause of backpressure.
3. **Backpressure propagation** — in a credit-based engine, a saturated
   operator stops pulling, its upstream buffers fill, and the stall cascades
   to every strict ancestor (the paper's "cascading effect", §II-A).
4. **Throttle** — the sustainable fraction of the offered load is
   ``theta = min(1, min_o PA_o / demand_o)``; served rates are demand
   scaled by theta.  (A single global throttle is a simplification of
   per-branch credit flow; the paper's DAGs are small and join-connected,
   so branches share fate through their common sinks, and the tuning
   signals — who saturates, who stalls — are unaffected.)

The resulting :class:`FlowResult` is the hidden truth from which the engine
adapters derive *observed* metrics (with noise) in
:mod:`repro.engines.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataflow.graph import LogicalDataflow
from repro.engines.perf import PerformanceModel

#: Relative tolerance when comparing demand against capacity: a demand
#: within 0.1% of capacity is not considered saturating.
_SATURATION_RTOL = 1e-3


@dataclass(frozen=True)
class OperatorFlow:
    """Ground-truth steady-state numbers for one operator."""

    name: str
    parallelism: int
    capacity: float           # PA(op, p): sustainable input records/s
    demand_in: float          # offered input rate (no capacity limits)
    demand_out: float         # offered output rate
    served_in: float          # actual input rate under backpressure throttle
    served_out: float         # actual output rate
    utilization: float        # served_in / capacity, in [0, 1]
    saturated: bool           # *binding* bottleneck: sets the throttle theta
    backpressured: bool       # stalled by a saturated descendant
    busy_fraction: float      # time share doing useful work
    idle_fraction: float      # time share waiting for input
    backpressure_fraction: float  # time share blocked on downstream


@dataclass(frozen=True)
class FlowResult:
    """Ground-truth steady state of a whole deployment."""

    operators: dict[str, OperatorFlow]
    theta: float                      # global throttle in (0, 1]
    has_backpressure: bool            # any operator lacks capacity (bound or shadowed)
    saturated: tuple[str, ...] = field(default=())
    backpressured: tuple[str, ...] = field(default=())

    def __getitem__(self, name: str) -> OperatorFlow:
        return self.operators[name]

    def total_parallelism(self) -> int:
        return sum(op.parallelism for op in self.operators.values())

    def sink_throughput(self, flow: LogicalDataflow) -> float:
        """Total records/s arriving at sinks under the current throttle."""
        return sum(self.operators[name].served_in for name in flow.sinks())


def solve_flow(
    flow: LogicalDataflow,
    parallelisms: dict[str, int],
    source_rates: dict[str, float],
    perf: PerformanceModel,
) -> FlowResult:
    """Compute the steady state of deploying ``flow`` at ``parallelisms``.

    ``source_rates`` maps source operator names to offered records/s; any
    missing source defaults to rate 0.  Every operator must have an entry in
    ``parallelisms``.
    """
    order = flow.topological_order()
    missing = [name for name in order if name not in parallelisms]
    if missing:
        raise ValueError(f"missing parallelism for operators: {missing}")

    capacity: dict[str, float] = {}
    demand_in: dict[str, float] = {}
    demand_out: dict[str, float] = {}
    for name in order:
        spec = flow.operator(name)
        capacity[name] = perf.processing_ability(spec, parallelisms[name])
        if spec.is_source:
            demand_in[name] = max(0.0, source_rates.get(name, 0.0))
        else:
            demand_in[name] = sum(demand_out[u] for u in flow.upstream(name))
        demand_out[name] = spec.selectivity * demand_in[name]

    deficient = [
        name
        for name in order
        if demand_in[name] > capacity[name] * (1.0 + _SATURATION_RTOL)
    ]

    theta = 1.0
    for name in order:
        if demand_in[name] > 0:
            theta = min(theta, capacity[name] / demand_in[name])
    theta = min(theta, 1.0)

    # Only the *binding* bottlenecks — the operators that set the throttle —
    # actually run at capacity.  A deficient operator shadowed by a worse
    # bottleneck receives a throttled stream and looks merely busy; it only
    # surfaces as the next bottleneck once the binding one is fixed (the
    # paper's cascading effect, and why Algorithm 2 iterates).
    saturated = [
        name
        for name in deficient
        if capacity[name] / demand_in[name] <= theta * (1.0 + _SATURATION_RTOL)
    ]

    backpressured: set[str] = set()
    for name in saturated:
        backpressured |= flow.ancestors(name)

    operators: dict[str, OperatorFlow] = {}
    for name in order:
        spec = flow.operator(name)
        served_in = demand_in[name] * theta
        served_out = spec.selectivity * served_in
        cap = capacity[name]
        utilization = min(1.0, served_in / cap) if cap > 0 else 0.0
        is_saturated = name in saturated
        is_backpressured = name in backpressured
        if is_saturated:
            busy = 1.0
            bp_frac = 0.0
        else:
            busy = utilization
            bp_frac = min(1.0 - busy, 1.0 - theta) if is_backpressured else 0.0
        idle = max(0.0, 1.0 - busy - bp_frac)
        operators[name] = OperatorFlow(
            name=name,
            parallelism=parallelisms[name],
            capacity=cap,
            demand_in=demand_in[name],
            demand_out=demand_out[name],
            served_in=served_in,
            served_out=served_out,
            utilization=1.0 if is_saturated else utilization,
            saturated=is_saturated,
            backpressured=is_backpressured,
            busy_fraction=busy,
            idle_fraction=idle,
            backpressure_fraction=bp_frac,
        )

    return FlowResult(
        operators=operators,
        theta=theta,
        has_backpressure=bool(deficient),
        saturated=tuple(saturated),
        backpressured=tuple(sorted(backpressured)),
    )
