"""Timely Dataflow cluster adapter (paper §V-A/§V-B/§V-F, Timely v0.10).

Timely differences the paper leans on:

* **No built-in backpressure.**  §V-B: "we define a Timely operator as a
  bottleneck if its input data rate falls below 85% of the combined output
  rates of all its upstream operators."  We implement exactly that rule,
  comparing the operator's observed consumption against what its upstreams
  *offer* (buffered production keeps the offered rate at the pre-throttle
  demand while the slow consumer drains at capacity).
* **Spinning workers.**  Timely operators are "non-blocking and continuously
  spinning", so busy-time-derived "useful time" is systematically inflated —
  more for stateful operators that poll state caches.  This is the mechanism
  behind Fig. 8a: rate-based tuners (DS2, ContTune) divide observed rates by
  inflated busy time, under-estimate processing ability, and over-provision,
  while StreamTune's bottleneck labels are rate-based and immune.
* **Log-driven metrics.**  §V-B: rates are collected from ``MessagesEvent``
  records of the (modified) Timely log recorder, aggregated per logical
  operator.  :meth:`TimelyCluster.collect_message_events` produces those
  records, and :func:`aggregate_message_rates` performs the aggregation the
  paper describes; ``measure`` uses it under the hood.
* **Per-epoch latency** (Fig. 8b-d): the time to drain one epoch of data
  through the pipeline, dominated by the most-utilised operator with an
  M/M/1-style ``rho / (1 - rho)`` amplification.

The paper's testbed runs Timely on a single 128-core machine with ten
workers; we default ``max_parallelism`` to 16 so over-provisioning tuners
can exceed the ten-worker sweet spot, exactly as Fig. 8a shows DS2 doing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import OperatorSpec, OperatorType
from repro.engines.base import Deployment, EngineCluster
from repro.engines.flow import FlowResult
from repro.engines.metrics import DEFAULT_NOISE_STD, JobTelemetry, ObservedOperatorMetrics
from repro.utils.rng import seeded_rng

#: §V-B detection threshold: consuming below 85% of the offered rate.
INPUT_OUTPUT_RATE_THRESHOLD = 0.85

#: Busy-time inflation of spinning workers (stateless / stateful operators).
STATELESS_SPIN_INFLATION = 1.8
STATEFUL_SPIN_INFLATION = 3.5

#: Timely is a native Rust engine running hand-written operators over plain
#: structs — one to two orders of magnitude faster per instance than the
#: JVM dataflow (which is why Table II's Timely rate units are ~10x
#: Flink's while the paper still tunes single-digit worker counts).
TIMELY_SPEED_FACTOR = 110.0

#: Per-type extra multipliers: Timely's windowed operators are batched
#: array scans over plain structs (huge wins vs JVM state backends), its
#: record-at-a-time incremental join gains far less.  Calibrated so the
#: Nexmark Q3/Q5/Q8 optima at 10 x Wu land in Fig. 8a's single-digit band.
TIMELY_TYPE_SPEED_FACTORS = {
    OperatorType.JOIN: 0.35,
    OperatorType.WINDOW_JOIN: 4.0,
    OperatorType.WINDOW_AGGREGATE: 8.0,
    OperatorType.AGGREGATE: 2.0,
}


@dataclass(frozen=True)
class MessagesEvent:
    """One entry of Timely's (modified) log recorder (paper §V-B).

    The paper filters raw Timely logs down to ``MessagesEvent`` records that
    carry runtime data-rate information for physical operators; these are
    periodically aggregated into logical-operator rates.
    """

    worker: int
    operator: str
    records_received: int
    records_sent: int
    interval_seconds: float


def aggregate_message_rates(
    events: list[MessagesEvent],
) -> dict[str, tuple[float, float]]:
    """Aggregate physical ``MessagesEvent`` records into logical rates.

    Returns ``{operator: (input_rate, output_rate)}`` in records/s, summing
    the per-worker counts of each logical operator — the "periodically
    aggregated to compute cumulative data rates" step of §V-B.
    """
    received: dict[str, float] = {}
    sent: dict[str, float] = {}
    seconds: dict[str, float] = {}
    for event in events:
        received[event.operator] = received.get(event.operator, 0.0) + event.records_received
        sent[event.operator] = sent.get(event.operator, 0.0) + event.records_sent
        seconds[event.operator] = max(seconds.get(event.operator, 0.0), event.interval_seconds)
    rates: dict[str, tuple[float, float]] = {}
    for operator, interval in seconds.items():
        if interval <= 0:
            rates[operator] = (0.0, 0.0)
        else:
            rates[operator] = (received[operator] / interval, sent[operator] / interval)
    return rates


class TimelyCluster(EngineCluster):
    """Simulated Timely Dataflow deployment (ten workers by default)."""

    name = "timely"

    def __init__(
        self,
        workers: int = 10,
        max_parallelism: int = 16,
        noise_std: float = DEFAULT_NOISE_STD,
        seed: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        super().__init__(
            max_parallelism=max_parallelism,
            speed_factor=TIMELY_SPEED_FACTOR,
            type_speed_factors=TIMELY_TYPE_SPEED_FACTORS,
            noise_std=noise_std,
            seed=seed,
        )
        self._latency_rng = seeded_rng(seed if seed is None else seed + 7)

    # ------------------------------------------------------------------
    # engine-specific observation behaviour
    # ------------------------------------------------------------------

    def busy_inflation(self, spec: OperatorSpec) -> float:
        """Spinning workers over-report busy time, stateful ones more."""
        if spec.is_stateful:
            return STATEFUL_SPIN_INFLATION
        return STATELESS_SPIN_INFLATION

    def busy_cap(self, spec: OperatorSpec, parallelism: int) -> float:
        """Per-logical-operator useful time sums across worker threads.

        Timely multiplexes *every* logical operator across the whole worker
        pool (operator shards are cooperatively scheduled, §V-A: "worker
        threads were evenly distributed across CPU cores"), so the
        aggregated useful time of one logical operator can reach the worker
        count — not just its assigned parallelism.  Spin inflation therefore
        keeps deflating DS2/ContTune's rate estimates even for degree-1
        operators, which is the §V-F over-provisioning mechanism.
        """
        del spec, parallelism
        return float(self.workers)

    def operator_backpressure_rule(
        self,
        flow: LogicalDataflow,
        name: str,
        draft: dict[str, ObservedOperatorMetrics],
        truth: FlowResult,
    ) -> bool:
        """§V-B rule: input rate below 85% of combined upstream offer.

        The *offered* rate is the upstream demand (what upstreams produce
        into buffers before the slow consumer throttles them), while the
        operator's own consumption is its observed input rate.
        """
        upstream = flow.upstream(name)
        if not upstream:
            return False
        offered = sum(truth[u].demand_out for u in upstream)
        if offered <= 0:
            return False
        return draft[name].input_rate < INPUT_OUTPUT_RATE_THRESHOLD * offered

    def job_backpressure_rule(self, flow, truth, observed) -> bool:
        """Timely has no global backpressure flag (§V-B).

        Job-level detection is the disjunction of the per-operator 85% rule
        — exactly what the paper's modified log recorder can see.  A mild
        overload inside the rule's dead band therefore goes unnoticed, which
        is why tuners on Timely settle closer to the edge than on Flink.
        """
        del flow, truth
        return any(m.is_backpressured for m in observed.values())

    # ------------------------------------------------------------------
    # log records (paper §V-B)
    # ------------------------------------------------------------------

    def collect_message_events(
        self,
        deployment: Deployment,
        interval_seconds: float = 1.0,
    ) -> list[MessagesEvent]:
        """Produce ``MessagesEvent`` log records for one interval.

        Record counts are the ground-truth served rates split across worker
        threads (work-stealing makes the split near-uniform with small
        multinomial jitter).
        """
        truth = self.ground_truth(deployment)
        events: list[MessagesEvent] = []
        for name, op_flow in truth.operators.items():
            total_in = op_flow.served_in * interval_seconds
            total_out = op_flow.served_out * interval_seconds
            share = self._worker_shares()
            for worker, fraction in enumerate(share):
                events.append(
                    MessagesEvent(
                        worker=worker,
                        operator=name,
                        records_received=int(round(total_in * fraction)),
                        records_sent=int(round(total_out * fraction)),
                        interval_seconds=interval_seconds,
                    )
                )
        return events

    def _worker_shares(self) -> np.ndarray:
        raw = self._latency_rng.dirichlet(np.full(self.workers, 50.0))
        return raw

    # ------------------------------------------------------------------
    # per-epoch latency (Fig. 8b-d)
    # ------------------------------------------------------------------

    def sample_epoch_latencies(
        self,
        deployment: Deployment,
        n_epochs: int = 200,
        epoch_seconds: float = 1.0,
        rate_jitter_std: float = 0.15,
        latency_cap_seconds: float = 200.0,
    ) -> np.ndarray:
        """Sample per-epoch processing latencies under the current config.

        Each epoch ingests ``epoch_seconds`` of data whose instantaneous
        rate jitters log-normally around the configured source rates.  The
        epoch drains at the pace of the most-utilised operator; near
        saturation, queueing amplifies latency as ``rho / (1 - rho)``.
        Saturated epochs are capped at ``latency_cap_seconds`` (the paper's
        CDF plots also truncate at ~100 s).
        """
        truth = self.ground_truth(deployment)
        rho_base = max(
            (op.demand_in / op.capacity if op.capacity > 0 else np.inf)
            for op in truth.operators.values()
        )
        latencies = np.empty(n_epochs)
        for i in range(n_epochs):
            jitter = float(np.exp(self._latency_rng.normal(0.0, rate_jitter_std)))
            rho = rho_base * jitter
            if rho < 0.95:
                latency = epoch_seconds * max(0.05, rho / (1.0 - rho))
            else:
                # Mild overload (including the 85%-rule dead band, where
                # rho can sit up to ~1.17 undetected) degrades gradually:
                # the epoch finishes late by the backlog it accumulated,
                # only deep overloads pin at the cap.
                base = epoch_seconds * 0.95 / 0.05
                overload = max(0.0, rho - 1.0)
                latency = min(
                    latency_cap_seconds,
                    base + latency_cap_seconds * min(1.0, overload / 0.3),
                )
            overhead = float(np.exp(self._latency_rng.normal(-3.0, 0.3)))
            latencies[i] = min(latency + overhead, latency_cap_seconds)
        return latencies

    # ------------------------------------------------------------------
    # measurement override: rates come from the log recorder
    # ------------------------------------------------------------------

    def measure(self, deployment: Deployment) -> JobTelemetry:
        """Measure via the log recorder: §V-B's rate pipeline end-to-end."""
        telemetry = super().measure(deployment)
        events = self.collect_message_events(deployment)
        rates = aggregate_message_rates(events)
        operators: dict[str, ObservedOperatorMetrics] = {}
        for name, metrics in telemetry.operators.items():
            input_rate, output_rate = rates.get(name, (metrics.input_rate, metrics.output_rate))
            operators[name] = ObservedOperatorMetrics(
                name=metrics.name,
                parallelism=metrics.parallelism,
                input_rate=input_rate,
                output_rate=output_rate,
                busy_ms_per_second=metrics.busy_ms_per_second,
                idle_ms_per_second=metrics.idle_ms_per_second,
                backpressured_ms_per_second=metrics.backpressured_ms_per_second,
                is_backpressured=metrics.is_backpressured,
            )
        telemetry.operators = operators
        return telemetry
