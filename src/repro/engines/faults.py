"""Fault injection: losing operator instances at runtime (chaos tooling).

Real clusters lose TaskManagers and workers; a parallelism map of ``p``
instances can silently be serving with fewer.  This module models exactly
that: a :class:`FaultInjectingFlink` cluster where instances of chosen
operators can be *failed* (and later *healed*) without touching the
deployment's configured parallelism.  Measurements then reflect the
degraded capacity — an operator configured at 8 with 3 failed instances
performs like one at 5 — so the paper's tuners observe the fault the only
way real ones can: through backpressure and utilisation.

Used by the failure-injection tests to show the closed loop recovering:
inject a fault, watch backpressure appear, let StreamTune re-tune, and
confirm the job is clear again.
"""

from __future__ import annotations

from repro.dataflow.operators import OperatorSpec
from repro.engines.base import Deployment, EngineError
from repro.engines.flink import FlinkCluster
from repro.engines.perf import PerformanceModel


class DegradedPerformanceModel:
    """Performance model evaluating operators at reduced instance counts.

    Duck-types :class:`~repro.engines.perf.PerformanceModel`.  For an
    operator with ``lost`` failed instances, the aggregate ability at a
    configured parallelism ``p`` is the base model's ability at
    ``max(1, p - lost)`` — the surviving instances keep their individual
    speed, the capacity just shrinks.
    """

    def __init__(self, base: PerformanceModel, lost_instances: dict[str, int]) -> None:
        for operator_name, lost in lost_instances.items():
            if lost < 0:
                raise ValueError(f"{operator_name}: lost instances must be >= 0")
        self.base = base
        self.lost_instances = dict(lost_instances)

    def _effective(self, spec: OperatorSpec, parallelism: int) -> int:
        return max(1, parallelism - self.lost_instances.get(spec.name, 0))

    def per_instance_rate(self, spec: OperatorSpec) -> float:
        return self.base.per_instance_rate(spec)

    def scaling_alpha(self, spec: OperatorSpec) -> float:
        return self.base.scaling_alpha(spec)

    def processing_ability(self, spec: OperatorSpec, parallelism: int) -> float:
        return self.base.processing_ability(spec, self._effective(spec, parallelism))

    def min_parallelism_for(self, spec: OperatorSpec, demand: float, p_max: int) -> int:
        healthy = self.base.min_parallelism_for(spec, demand, p_max)
        return min(p_max, healthy + self.lost_instances.get(spec.name, 0))


class FaultInjectingFlink(FlinkCluster):
    """A Flink cluster whose operator instances can be failed and healed.

    Faults are tracked per (deployment, operator).  Reconfiguration is a
    stop-and-restart, which reschedules every task — so it clears all
    faults for that deployment, matching how real restarts recover from
    lost TaskManagers.
    """

    name = "flink-faulty"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._lost: dict[int, dict[str, int]] = {}

    def fail_instances(
        self, deployment: Deployment, operator_name: str, count: int = 1
    ) -> None:
        """Fail ``count`` instances of one operator (capacity shrinks)."""
        self._require_running(deployment)
        if operator_name not in deployment.flow:
            raise EngineError(f"unknown operator {operator_name!r}")
        if count < 1:
            raise EngineError("count must be >= 1")
        lost = self._lost.setdefault(deployment.job_id, {})
        configured = deployment.parallelisms[operator_name]
        already = lost.get(operator_name, 0)
        if already + count >= configured:
            raise EngineError(
                f"{operator_name}: cannot fail {count} of "
                f"{configured - already} surviving instances "
                "(at least one must survive)"
            )
        lost[operator_name] = already + count

    def heal_instances(
        self, deployment: Deployment, operator_name: str | None = None
    ) -> None:
        """Restore failed instances (one operator, or all when ``None``)."""
        self._require_running(deployment)
        lost = self._lost.get(deployment.job_id)
        if not lost:
            return
        if operator_name is None:
            lost.clear()
        else:
            lost.pop(operator_name, None)

    def lost_instances(self, deployment: Deployment) -> dict[str, int]:
        """Currently failed instance counts per operator (copy)."""
        return dict(self._lost.get(deployment.job_id, {}))

    def reconfigure(self, deployment: Deployment, parallelisms: dict[str, int]) -> None:
        super().reconfigure(deployment, parallelisms)
        # Stop-and-restart reschedules all tasks onto healthy slots.
        self._lost.pop(deployment.job_id, None)

    def stop(self, deployment: Deployment) -> None:
        self._lost.pop(deployment.job_id, None)
        super().stop(deployment)

    def perf_for(self, deployment: Deployment) -> PerformanceModel | DegradedPerformanceModel:
        lost = self._lost.get(deployment.job_id)
        if not lost:
            return self.perf
        return DegradedPerformanceModel(self.perf, lost)
