"""Apache Flink cluster adapter (paper §V-A/§V-B, Flink 1.16).

The paper's Flink setup: 50 TaskManagers with 2 slots each, so the maximum
parallelism per operator is 100.  Flink's metric system reports three time
metrics per operator — ``backPressuredTimeMsPerSecond``,
``idleTimeMsPerSecond``, ``busyTimeMsPerSecond`` — and "a Flink operator is
considered a bottleneck if its backPressuredTimeMsPerSecond exceeds 10% of
the cumulative sum of these metrics over a sustained interval" (§V-B).

Flink measures busy time honestly (no spinning workers), so the only
observation error is the channel's multiplicative noise.
"""

from __future__ import annotations

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import OperatorSpec
from repro.engines.base import EngineCluster
from repro.engines.flow import FlowResult
from repro.engines.metrics import DEFAULT_NOISE_STD, ObservedOperatorMetrics

#: §V-B: backpressured time above 10% of the metric sum flags the operator.
BACKPRESSURE_TIME_SHARE = 0.10


class FlinkCluster(EngineCluster):
    """Simulated Flink deployment (50 TaskManagers x 2 slots by default)."""

    name = "flink"

    def __init__(
        self,
        task_managers: int = 50,
        slots_per_task_manager: int = 2,
        noise_std: float = DEFAULT_NOISE_STD,
        seed: int | None = None,
    ) -> None:
        if task_managers < 1 or slots_per_task_manager < 1:
            raise ValueError("task_managers and slots_per_task_manager must be >= 1")
        self.task_managers = task_managers
        self.slots_per_task_manager = slots_per_task_manager
        super().__init__(
            max_parallelism=task_managers * slots_per_task_manager,
            speed_factor=1.0,
            noise_std=noise_std,
            seed=seed,
        )

    def busy_inflation(self, spec: OperatorSpec) -> float:
        """Flink's busy-time metric is honest (blocking mailbox model)."""
        del spec
        return 1.0

    def operator_backpressure_rule(
        self,
        flow: LogicalDataflow,
        name: str,
        draft: dict[str, ObservedOperatorMetrics],
        truth: FlowResult,
    ) -> bool:
        """The 10%-of-time-metrics rule from §V-B."""
        del flow, truth
        metrics = draft[name]
        total = (
            metrics.busy_ms_per_second
            + metrics.idle_ms_per_second
            + metrics.backpressured_ms_per_second
        )
        if total <= 0:
            return False
        return metrics.backpressured_ms_per_second > BACKPRESSURE_TIME_SHARE * total
