"""Stream-processing engine substrate (simulated Flink and Timely).

The paper evaluates StreamTune on Apache Flink 1.16 and Timely Dataflow
v0.10.  Neither engine is available in this offline environment, so this
subpackage provides a faithful *steady-state flow simulator* exposing the
exact observable surface the tuners consume:

* per-operator rates and busy/idle/backPressured time metrics (Flink),
* ``MessagesEvent``-style log records and per-epoch latencies (Timely),
* job-level backpressure flags,
* stop-and-restart reconfiguration with stabilisation accounting.

Ground truth (processing abilities, selectivities) lives in
:mod:`repro.engines.perf` and :mod:`repro.engines.flow`; tuners only ever
see the noisy observation channel in :mod:`repro.engines.metrics`.
"""

from repro.engines.perf import PerformanceModel
from repro.engines.flow import FlowResult, OperatorFlow, solve_flow
from repro.engines.metrics import JobTelemetry, ObservedOperatorMetrics
from repro.engines.base import Deployment, EngineCluster
from repro.engines.flink import FlinkCluster
from repro.engines.timely import MessagesEvent, TimelyCluster
from repro.engines.scheduler import (
    ClusterTopology,
    Machine,
    PlacementPlan,
    SchedulingAwareTimely,
    choose_strategy,
    place_instances,
)
from repro.engines.faults import FaultInjectingFlink

__all__ = [
    "ClusterTopology",
    "Deployment",
    "EngineCluster",
    "FaultInjectingFlink",
    "FlinkCluster",
    "FlowResult",
    "JobTelemetry",
    "Machine",
    "MessagesEvent",
    "ObservedOperatorMetrics",
    "OperatorFlow",
    "PerformanceModel",
    "PlacementPlan",
    "SchedulingAwareTimely",
    "TimelyCluster",
    "choose_strategy",
    "place_instances",
    "solve_flow",
]
