"""The observation channel: what tuners actually get to see.

Real engines expose *measured* metrics, not ground truth.  The paper leans
on this gap twice:

* §V-C / §V-E — DS2 and ContTune estimate processing ability from "useful
  time", which "is intricate to measure in real-world dataflow executions";
  overestimates lead to under-provisioning and backpressure (Table III).
* §V-B / §V-F — Timely operators are "non-blocking and continuously
  spinning", so busy-time is systematically over-reported there, which is
  why rate-based tuners over-provision on Timely (Fig. 8a).

This module converts a ground-truth :class:`~repro.engines.flow.FlowResult`
into :class:`ObservedOperatorMetrics` by applying

* multiplicative log-normal measurement noise (seeded, ~6% std), and
* an engine-specific *busy-time inflation* factor (1.0 on Flink; >1 on
  Timely, larger for stateful operators that poll their state caches).

Both Flink's three time metrics (``busyTimeMsPerSecond`` etc.) and the
derived "useful time" view DS2 consumes are exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataflow.graph import LogicalDataflow
from repro.engines.flow import FlowResult

#: Default relative std-dev of multiplicative measurement noise.
DEFAULT_NOISE_STD = 0.06


@dataclass(frozen=True)
class ObservedOperatorMetrics:
    """Per-operator metrics as reported by the engine's metric system."""

    name: str
    parallelism: int
    input_rate: float             # observed records/s consumed
    output_rate: float            # observed records/s emitted
    busy_ms_per_second: float     # Flink busyTimeMsPerSecond (possibly inflated)
    idle_ms_per_second: float     # Flink idleTimeMsPerSecond
    backpressured_ms_per_second: float  # Flink backPressuredTimeMsPerSecond
    is_backpressured: bool        # engine's backpressure rule for this operator

    @property
    def cpu_load(self) -> float:
        """Observed CPU load in [0, 1] (Algorithm 1's resource metric R)."""
        return min(1.0, self.busy_ms_per_second / 1000.0)

    @property
    def useful_time_fraction(self) -> float:
        """DS2's 'useful time' per wall-clock second.

        Deliberately *unclipped*: engines whose useful time aggregates
        across worker threads (Timely) report more than one busy second per
        wall second, and DS2's rate estimator divides by exactly this
        number — that division is where spin inflation turns into
        over-provisioning (Fig. 8a).
        """
        return self.busy_ms_per_second / 1000.0

    @property
    def true_processing_rate(self) -> float:
        """DS2's estimator: records/s the operator *would* sustain at 100%.

        observed rate / useful-time share; aggregate over all instances.
        When the operator processed nothing the estimate is undefined and
        we return 0 — callers must handle cold operators.
        """
        if self.useful_time_fraction <= 1e-9:
            return 0.0
        return self.input_rate / self.useful_time_fraction


@dataclass
class JobTelemetry:
    """One measurement of a deployed job.

    ``has_backpressure`` is the job-level flag (some operator reported
    backpressure or saturation by the engine's rule).  The ``truth`` field
    holds the generating :class:`FlowResult` for tests and debugging only;
    tuners must never read it (enforced by convention and review, like any
    hidden variable in a simulation study).
    """

    job_name: str
    operators: dict[str, ObservedOperatorMetrics]
    has_backpressure: bool
    source_rates: dict[str, float] = field(default_factory=dict)
    job_latency_seconds: float = 0.0
    truth: FlowResult | None = None

    def __getitem__(self, name: str) -> ObservedOperatorMetrics:
        return self.operators[name]

    def backpressured_operators(self) -> list[str]:
        return [m.name for m in self.operators.values() if m.is_backpressured]


class MetricsChannel:
    """Stateful noisy observer shared by the engine adapters."""

    def __init__(
        self,
        rng: np.random.Generator,
        noise_std: float = DEFAULT_NOISE_STD,
    ) -> None:
        if noise_std < 0:
            raise ValueError("noise_std must be >= 0")
        self._rng = rng
        self._noise_std = noise_std

    def noisy(self, value: float) -> float:
        """Apply one multiplicative log-normal noise draw."""
        if self._noise_std == 0 or value == 0:
            return value
        factor = float(np.exp(self._rng.normal(0.0, self._noise_std)))
        return value * factor

    def observe(
        self,
        flow: LogicalDataflow,
        result: FlowResult,
        busy_inflation: dict[str, float],
        backpressure_rule,
        busy_cap: dict[str, float] | None = None,
    ) -> dict[str, ObservedOperatorMetrics]:
        """Produce per-operator observations from ground truth.

        ``busy_inflation`` maps operator name to the busy-time inflation
        factor (1.0 = honest measurement).  ``busy_cap`` bounds the reported
        busy share: Flink's per-subtask ``busyTimeMsPerSecond`` clips at one
        wall-clock second (cap 1.0), while Timely's per-*logical*-operator
        useful time aggregates across worker threads and can exceed
        wall-clock (cap = parallelism) — which is precisely why spin
        inflation keeps deflating rate estimates there even near
        saturation.  ``backpressure_rule`` is a callable
        ``(flow, name, metrics_draft, truth) -> bool`` implementing the
        engine's operator-level backpressure detection; it receives the
        draft metrics for *all* operators so rules may compare neighbours
        (Timely's 85% input/output-rate rule compares an operator's observed
        consumption against what its upstreams offer).
        """
        draft: dict[str, ObservedOperatorMetrics] = {}
        for name, op in result.operators.items():
            inflation = busy_inflation.get(name, 1.0)
            cap = busy_cap.get(name, 1.0) if busy_cap is not None else 1.0
            busy = min(cap, op.busy_fraction * inflation * self._lognormal())
            bp = min(max(0.0, 1.0 - busy), op.backpressure_fraction * self._lognormal())
            idle = max(0.0, 1.0 - busy - bp)
            draft[name] = ObservedOperatorMetrics(
                name=name,
                parallelism=op.parallelism,
                input_rate=self.noisy(op.served_in),
                output_rate=self.noisy(op.served_out),
                busy_ms_per_second=1000.0 * busy,
                idle_ms_per_second=1000.0 * idle,
                backpressured_ms_per_second=1000.0 * bp,
                is_backpressured=False,  # filled by the rule below
            )
        observed: dict[str, ObservedOperatorMetrics] = {}
        for name, metrics in draft.items():
            flagged = bool(backpressure_rule(flow, name, draft, result))
            observed[name] = ObservedOperatorMetrics(
                name=metrics.name,
                parallelism=metrics.parallelism,
                input_rate=metrics.input_rate,
                output_rate=metrics.output_rate,
                busy_ms_per_second=metrics.busy_ms_per_second,
                idle_ms_per_second=metrics.idle_ms_per_second,
                backpressured_ms_per_second=metrics.backpressured_ms_per_second,
                is_backpressured=flagged,
            )
        return observed

    def _lognormal(self) -> float:
        if self._noise_std == 0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self._noise_std)))
