"""A Flink variant whose telemetry takes wall-clock time.

Real clusters do not answer a metrics query instantly: Flink aggregates
``busyTimeMsPerSecond`` and friends over a sustained observation window
(§V-B measures over minutes), so every measurement round a tuner makes
costs latency during which the tuning host is *idle*, not busy.  The
simulated engines collapse that window to zero, which makes campaign
fleets purely CPU-bound — fine for single-host benchmarks, but it hides
exactly the overlap a distributed fleet exploits: while one worker
waits on a cluster's metrics, another worker's campaign can run.

:class:`PacedFlink` restores that cost: :meth:`measure` sleeps
``telemetry_seconds`` before observing.  The sleep never touches the
engine's RNG, so results are **bit-identical** to the plain ``flink``
engine under the same seed — only the wall-clock changes.  The
``distributed_fleet_*`` perf benchmarks run on this engine so 1→N
worker scaling measures genuine latency overlap instead of contending
for one host's cores.
"""

from __future__ import annotations

import time

from repro.engines.base import Deployment, JobTelemetry
from repro.engines.flink import FlinkCluster
from repro.engines.metrics import DEFAULT_NOISE_STD

__all__ = ["PacedFlink", "DEFAULT_TELEMETRY_SECONDS"]

#: Default simulated metric-window latency per measurement round.  Small
#: enough that smoke fleets stay fast, large enough to dominate a warm
#: campaign's ~1ms of compute (so waits, not cores, bound throughput).
DEFAULT_TELEMETRY_SECONDS = 0.02


class PacedFlink(FlinkCluster):
    """Flink with a wall-clock pause per telemetry observation."""

    name = "flink-paced"

    def __init__(
        self,
        telemetry_seconds: float = DEFAULT_TELEMETRY_SECONDS,
        task_managers: int = 50,
        slots_per_task_manager: int = 2,
        noise_std: float = DEFAULT_NOISE_STD,
        seed: int | None = None,
    ) -> None:
        if telemetry_seconds < 0:
            raise ValueError(
                f"telemetry_seconds must be >= 0, got {telemetry_seconds}"
            )
        self.telemetry_seconds = telemetry_seconds
        super().__init__(
            task_managers=task_managers,
            slots_per_task_manager=slots_per_task_manager,
            noise_std=noise_std,
            seed=seed,
        )

    def measure(self, deployment: Deployment) -> JobTelemetry:
        """Wait out the metric window, then observe exactly like Flink."""
        if self.telemetry_seconds > 0:
            time.sleep(self.telemetry_seconds)
        return super().measure(deployment)
