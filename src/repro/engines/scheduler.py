"""Scheduling-aware tuning substrate (paper §VII, future work).

The paper's §VII notes that StreamTune "can be extended to incorporate
scheduling-aware tuning, particularly for those DSPSs lacking built-in
load balancing and robust resource management like Timely Dataflow".
This module supplies the missing substrate:

* a :class:`ClusterTopology` of machines with finite core counts,
* deterministic :func:`place_instances` placement under two strategies —
  ``spread`` (round-robin across machines, Flink-slot-like) and
  ``compact`` (fill one machine before the next, bin-packing-like),
* a CPU *contention* model: a machine running more operator instances
  than cores time-slices them, slowing every hosted instance down, and
* :class:`SchedulingAwareTimely`, a Timely cluster whose effective
  processing ability degrades with placement contention via the
  :meth:`~repro.engines.base.EngineCluster.perf_for` hook.

Tuners need no modification: contention simply shows up as reduced
processing ability in the feedback loop, and a scheduling-aware operator
of the cluster can compare strategies with :func:`choose_strategy` before
committing — the quantitative story told by
``examples/scheduling_aware.py`` (spread placements need visibly less
parallelism to clear the same backpressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import OperatorSpec
from repro.engines.base import Deployment, EngineError
from repro.engines.perf import PerformanceModel
from repro.engines.timely import TimelyCluster

#: Supported placement strategies.
STRATEGIES = ("spread", "compact")


@dataclass(frozen=True)
class Machine:
    """A physical worker machine with a fixed core count."""

    name: str
    cores: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("machine name must be non-empty")
        if self.cores < 1:
            raise ValueError(f"{self.name}: cores must be >= 1")


@dataclass(frozen=True)
class ClusterTopology:
    """The machines available for task placement."""

    machines: tuple[Machine, ...]

    def __post_init__(self) -> None:
        if not self.machines:
            raise ValueError("topology needs at least one machine")
        names = [machine.name for machine in self.machines]
        if len(set(names)) != len(names):
            raise ValueError("machine names must be unique")

    @classmethod
    def uniform(cls, n_machines: int, cores_each: int) -> "ClusterTopology":
        """A homogeneous topology — the common evaluation setup."""
        return cls(
            machines=tuple(
                Machine(name=f"machine-{i}", cores=cores_each)
                for i in range(n_machines)
            )
        )

    @property
    def total_cores(self) -> int:
        return sum(machine.cores for machine in self.machines)

    def machine(self, name: str) -> Machine:
        for candidate in self.machines:
            if candidate.name == name:
                return candidate
        raise KeyError(f"unknown machine {name!r}")


@dataclass
class PlacementPlan:
    """Assignment of operator instances to machines.

    ``instances[machine_name][operator_name]`` counts how many instances
    of the operator the machine hosts.
    """

    topology: ClusterTopology
    strategy: str
    instances: dict[str, dict[str, int]] = field(default_factory=dict)

    def threads_on(self, machine_name: str) -> int:
        return sum(self.instances.get(machine_name, {}).values())

    def machines_hosting(self, operator_name: str) -> list[str]:
        return [
            machine_name
            for machine_name, hosted in self.instances.items()
            if hosted.get(operator_name, 0) > 0
        ]

    def instance_count(self, operator_name: str) -> int:
        return sum(
            hosted.get(operator_name, 0) for hosted in self.instances.values()
        )

    def machine_slowdowns(self) -> dict[str, float]:
        """Per-machine time-slicing factor: max(1, threads / cores).

        A machine never speeds tasks up below one thread per core; above
        it, the OS scheduler shares cores fairly, so every hosted thread
        runs at ``cores / threads`` of its solo speed.
        """
        factors: dict[str, float] = {}
        for machine in self.topology.machines:
            threads = self.threads_on(machine.name)
            factors[machine.name] = max(1.0, threads / machine.cores)
        return factors

    def operator_slowdowns(self) -> dict[str, float]:
        """Effective per-operator slowdown under this placement.

        Each instance runs at ``1 / slowdown(machine)`` of solo speed; the
        operator's aggregate ability scales with the mean instance speed,
        so its effective slowdown is the harmonic-style mean below.  An
        operator entirely on idle machines reports exactly 1.0.
        """
        machine_factors = self.machine_slowdowns()
        result: dict[str, float] = {}
        for operator_name in self._operator_names():
            speeds: list[float] = []
            for machine_name, hosted in self.instances.items():
                count = hosted.get(operator_name, 0)
                if count:
                    speeds.extend([1.0 / machine_factors[machine_name]] * count)
            if not speeds:
                result[operator_name] = 1.0
            else:
                mean_speed = sum(speeds) / len(speeds)
                result[operator_name] = 1.0 / mean_speed
        return result

    def imbalance(self) -> float:
        """Max-over-mean per-core load: 1.0 is perfectly balanced."""
        loads = [
            self.threads_on(machine.name) / machine.cores
            for machine in self.topology.machines
        ]
        mean_load = sum(loads) / len(loads)
        if mean_load == 0:
            return 1.0
        return max(loads) / mean_load

    def _operator_names(self) -> list[str]:
        names: set[str] = set()
        for hosted in self.instances.values():
            names.update(hosted)
        return sorted(names)


def place_instances(
    flow: LogicalDataflow,
    parallelisms: dict[str, int],
    topology: ClusterTopology,
    strategy: str = "spread",
) -> PlacementPlan:
    """Deterministically place every operator instance on a machine.

    ``spread`` walks machines round-robin (weighted by core count via
    repetition), the behaviour of slot-based schedulers; ``compact``
    fills each machine to its core count before opening the next, the
    behaviour of bin-packing schedulers that minimise machine count.
    Instance order follows the topological operator order, so placement
    is reproducible for identical inputs.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    plan = PlacementPlan(topology=topology, strategy=strategy)
    plan.instances = {machine.name: {} for machine in topology.machines}

    tasks: list[str] = []
    for operator_name in flow.topological_order():
        count = parallelisms.get(operator_name)
        if count is None:
            raise EngineError(f"no parallelism given for operator {operator_name!r}")
        if count < 1:
            raise EngineError(f"{operator_name}: parallelism must be >= 1")
        tasks.extend([operator_name] * count)

    if strategy == "spread":
        # Core-weighted interleaving: one slot per machine per lap, with
        # larger machines appearing in more laps, so consecutive tasks land
        # on different machines (slot-scheduler behaviour).
        slots: list[str] = []
        max_cores = max(machine.cores for machine in topology.machines)
        while len(slots) < len(tasks):
            for core_index in range(max_cores):
                for machine in topology.machines:
                    if core_index < machine.cores:
                        slots.append(machine.name)
        for task, machine_name in zip(tasks, slots):
            hosted = plan.instances[machine_name]
            hosted[task] = hosted.get(task, 0) + 1
    else:
        machine_index = 0
        used = 0
        for task in tasks:
            machine = topology.machines[machine_index]
            if used >= machine.cores and machine_index + 1 < len(topology.machines):
                machine_index += 1
                used = 0
                machine = topology.machines[machine_index]
            hosted = plan.instances[machine.name]
            hosted[task] = hosted.get(task, 0) + 1
            used += 1
    return plan


class ContendedPerformanceModel:
    """A performance model degraded by placement contention.

    Duck-types :class:`~repro.engines.perf.PerformanceModel`: every rate
    is divided by the hosting operator's placement slowdown.  Monotonicity
    in parallelism is preserved as long as slowdowns are fixed for the
    evaluation, which they are (one placement per deployment state).
    """

    def __init__(
        self, base: PerformanceModel, operator_slowdowns: dict[str, float]
    ) -> None:
        for operator_name, factor in operator_slowdowns.items():
            if factor < 1.0:
                raise ValueError(
                    f"{operator_name}: contention slowdown must be >= 1, got {factor}"
                )
        self.base = base
        self.operator_slowdowns = dict(operator_slowdowns)

    def _slowdown(self, spec: OperatorSpec) -> float:
        return self.operator_slowdowns.get(spec.name, 1.0)

    def per_instance_rate(self, spec: OperatorSpec) -> float:
        return self.base.per_instance_rate(spec) / self._slowdown(spec)

    def scaling_alpha(self, spec: OperatorSpec) -> float:
        return self.base.scaling_alpha(spec)

    def processing_ability(self, spec: OperatorSpec, parallelism: int) -> float:
        return self.base.processing_ability(spec, parallelism) / self._slowdown(spec)

    def min_parallelism_for(self, spec: OperatorSpec, demand: float, p_max: int) -> int:
        return self.base.min_parallelism_for(
            spec, demand * self._slowdown(spec), p_max
        )


class SchedulingAwareTimely(TimelyCluster):
    """Timely cluster whose processing ability reflects task placement.

    The paper singles out Timely as the engine "lacking built-in load
    balancing and robust resource management"; this adapter adds the
    missing placement dimension.  Each measurement recomputes the
    placement of the deployment's current parallelism map and solves the
    flow under the contended performance model, so over-parallelising on
    a small topology *hurts* — the behaviour scheduling-aware tuning must
    navigate.
    """

    name = "timely-scheduled"

    def __init__(
        self,
        topology: ClusterTopology | None = None,
        strategy: str = "spread",
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.topology = topology or ClusterTopology.uniform(n_machines=2, cores_each=64)
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        self.strategy = strategy

    def placement_for(self, deployment: Deployment) -> PlacementPlan:
        return place_instances(
            deployment.flow, deployment.parallelisms, self.topology, self.strategy
        )

    def perf_for(self, deployment: Deployment) -> ContendedPerformanceModel:
        plan = self.placement_for(deployment)
        return ContendedPerformanceModel(self.perf, plan.operator_slowdowns())


def choose_strategy(
    flow: LogicalDataflow,
    parallelisms: dict[str, int],
    topology: ClusterTopology,
) -> str:
    """Pick the placement strategy with the least worst-case contention.

    Compares the maximum operator slowdown across strategies, breaking
    ties towards ``spread`` (better balanced, per :meth:`imbalance`).
    This is the "scheduling-aware" decision an extended tuner makes before
    deploying a recommendation.
    """
    scored: list[tuple[float, float, int, str]] = []
    for rank, strategy in enumerate(STRATEGIES):   # "spread" first: preferred on ties
        plan = place_instances(flow, parallelisms, topology, strategy)
        slowdowns = plan.operator_slowdowns()
        worst = max(slowdowns.values(), default=1.0)
        scored.append((worst, plan.imbalance(), rank, strategy))
    scored.sort()
    return scored[0][3]
