"""Engine cluster abstraction shared by the Flink and Timely adapters.

A cluster deploys a logical dataflow with per-operator parallelism, serves
measurements through the noisy observation channel, and reconfigures by
stop-and-restart (the paper's §V-A "Reconfiguration Mechanism", following
DS2).  Reconfiguration accounting — counts and simulated stabilisation
minutes — feeds the Fig. 7 experiments directly.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.dataflow.graph import LogicalDataflow
from repro.engines.flow import FlowResult, solve_flow
from repro.engines.metrics import (
    DEFAULT_NOISE_STD,
    JobTelemetry,
    MetricsChannel,
)
from repro.engines.perf import PerformanceModel
from repro.utils.rng import seeded_rng

#: Paper §V-A: "a 10-minute wait is enforced between reconfigurations".
STABILIZATION_MINUTES = 10.0

#: Settling time of a live (restart-free) reconfiguration, §VII.
LIVE_SETTLING_MINUTES = 1.0


class EngineError(RuntimeError):
    """Raised on invalid engine operations (capacity, unknown jobs, ...)."""


@dataclass
class Deployment:
    """A running streaming job on a cluster."""

    job_id: int
    flow: LogicalDataflow
    parallelisms: dict[str, int]
    source_rates: dict[str, float]
    n_reconfigurations: int = 0
    sim_minutes: float = 0.0
    running: bool = True
    history: list[dict[str, int]] = field(default_factory=list)

    def total_parallelism(self) -> int:
        return sum(self.parallelisms.values())


class EngineCluster(abc.ABC):
    """Base class for simulated stream-processing clusters.

    Subclasses define the engine's speed, its busy-time measurement
    behaviour, and its operator-level backpressure rule.
    """

    #: §VII "Live Reconfiguration": engines supporting runtime parallelism
    #: changes (operator-level RESTful APIs, as deployed at ByteDance) skip
    #: the stop-and-restart stabilisation wait.  Disabled by default — the
    #: paper's evaluation uses stop-and-restart throughout.
    supports_live_reconfigure: bool = False

    #: Human-readable engine name.
    name: str = "abstract"

    def __init__(
        self,
        max_parallelism: int,
        speed_factor: float = 1.0,
        type_speed_factors: dict | None = None,
        noise_std: float = DEFAULT_NOISE_STD,
        seed: int | None = None,
    ) -> None:
        if max_parallelism < 1:
            raise EngineError("max_parallelism must be >= 1")
        self.max_parallelism = max_parallelism
        self.perf = PerformanceModel(
            speed_factor=speed_factor, type_speed_factors=type_speed_factors
        )
        self._channel = MetricsChannel(seeded_rng(seed), noise_std=noise_std)
        self._job_ids = itertools.count(1)
        self._deployments: dict[int, Deployment] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def deploy(
        self,
        flow: LogicalDataflow,
        parallelisms: dict[str, int],
        source_rates: dict[str, float],
    ) -> Deployment:
        """Start a job; validates the DAG and the parallelism map."""
        flow.validate()
        self._check_parallelisms(flow, parallelisms)
        deployment = Deployment(
            job_id=next(self._job_ids),
            flow=flow,
            parallelisms=dict(parallelisms),
            source_rates=dict(source_rates),
        )
        deployment.history.append(dict(parallelisms))
        self._deployments[deployment.job_id] = deployment
        return deployment

    def reconfigure(self, deployment: Deployment, parallelisms: dict[str, int]) -> None:
        """Stop-and-restart the job with new parallelism degrees.

        Counts one reconfiguration and advances simulated time by the
        stabilisation wait, even when the map is unchanged (the engine
        cannot know a restart was a no-op in advance).
        """
        self._require_running(deployment)
        self._check_parallelisms(deployment.flow, parallelisms)
        deployment.parallelisms = dict(parallelisms)
        deployment.history.append(dict(parallelisms))
        deployment.n_reconfigurations += 1
        deployment.sim_minutes += STABILIZATION_MINUTES

    def live_reconfigure(self, deployment: Deployment, parallelisms: dict[str, int]) -> None:
        """Adjust parallelism at runtime without a restart (§VII).

        Only counts a short settling period (the JobManager applies the
        change to a running topology).  Raises on engines that do not
        support live reconfiguration.
        """
        if not self.supports_live_reconfigure:
            raise EngineError(
                f"{self.name} does not support live reconfiguration; "
                "use reconfigure() (stop-and-restart)"
            )
        self._require_running(deployment)
        self._check_parallelisms(deployment.flow, parallelisms)
        deployment.parallelisms = dict(parallelisms)
        deployment.history.append(dict(parallelisms))
        deployment.n_reconfigurations += 1
        deployment.sim_minutes += LIVE_SETTLING_MINUTES

    def set_source_rates(self, deployment: Deployment, source_rates: dict[str, float]) -> None:
        """Apply an external source-rate change (does not count as reconfig)."""
        self._require_running(deployment)
        unknown = set(source_rates) - set(deployment.flow.sources())
        if unknown:
            raise EngineError(f"rates for non-source operators: {sorted(unknown)}")
        deployment.source_rates = dict(source_rates)

    def stop(self, deployment: Deployment) -> None:
        self._require_running(deployment)
        deployment.running = False
        del self._deployments[deployment.job_id]

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def perf_for(self, deployment: Deployment) -> PerformanceModel:
        """Performance model in effect for ``deployment``.

        The default is the cluster-wide model; scheduling-aware engines
        override this to layer placement-induced contention on top
        (see :mod:`repro.engines.scheduler`).
        """
        del deployment
        return self.perf

    def measure(self, deployment: Deployment) -> JobTelemetry:
        """Observe the job: ground-truth solve + noisy metric channel."""
        self._require_running(deployment)
        truth = solve_flow(
            deployment.flow,
            deployment.parallelisms,
            deployment.source_rates,
            self.perf_for(deployment),
        )
        inflation = {
            spec.name: self.busy_inflation(spec)
            for spec in deployment.flow
        }
        caps = {
            spec.name: self.busy_cap(spec, deployment.parallelisms[spec.name])
            for spec in deployment.flow
        }
        observed = self._channel.observe(
            deployment.flow,
            truth,
            inflation,
            self.operator_backpressure_rule,
            busy_cap=caps,
        )
        has_bp = self.job_backpressure_rule(deployment.flow, truth, observed)
        return JobTelemetry(
            job_name=deployment.flow.name,
            operators=observed,
            has_backpressure=has_bp,
            source_rates=dict(deployment.source_rates),
            job_latency_seconds=self._job_latency(truth, observed),
            truth=truth,
        )

    def _job_latency(self, truth: FlowResult, observed: dict) -> float:
        """End-to-end record latency estimate (ZeroTune's training target).

        Queueing-dominated: latency explodes as the hottest operator
        approaches saturation and is pinned at a large cap under true
        backpressure.  A mild coordination term grows with total task count
        (more shuffles and channel fan-out), so the latency-vs-parallelism
        curve has a genuine knee rather than a flat tail — over-provisioned
        deployments are slightly *slower*, as measured on real engines.
        Observed through the noise channel like every metric.
        """
        if truth.has_backpressure:
            return self._channel.noisy(60.0)
        max_busy = max(
            (m.busy_ms_per_second / 1000.0 for m in observed.values()), default=0.0
        )
        max_busy = min(max_busy, 0.99)
        total_tasks = sum(m.parallelism for m in observed.values())
        base = 0.05 + 0.1 * max_busy / (1.02 - max_busy) + 0.002 * total_tasks
        return self._channel.noisy(base)

    def ground_truth(self, deployment: Deployment) -> FlowResult:
        """Noise-free steady state — for tests and oracle baselines only."""
        return solve_flow(
            deployment.flow,
            deployment.parallelisms,
            deployment.source_rates,
            self.perf_for(deployment),
        )

    # ------------------------------------------------------------------
    # engine-specific behaviour
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def busy_inflation(self, spec) -> float:
        """Busy-time inflation factor for an operator (1.0 = honest)."""

    def busy_cap(self, spec, parallelism: int) -> float:
        """Upper bound on the reported busy share (wall-clock seconds/s).

        Default: per-instance metrics clip at one wall-clock second.
        Engines whose useful-time aggregates across threads override this.
        """
        del spec, parallelism
        return 1.0

    @abc.abstractmethod
    def operator_backpressure_rule(self, flow, name, draft, truth) -> bool:
        """Engine's operator-level backpressure flag (paper §V-B)."""

    def job_backpressure_rule(self, flow, truth, observed) -> bool:
        """Job-level backpressure: any operator flagged, or truth saturated.

        Both engines surface dataflow-level backpressure reliably (Flink via
        its web UI aggregation, Timely via stalled epoch frontiers), so the
        job-level flag follows ground truth saturation.
        """
        del flow, observed
        return truth.has_backpressure

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_parallelisms(self, flow: LogicalDataflow, parallelisms: dict[str, int]) -> None:
        for name in flow.operator_names:
            if name not in parallelisms:
                raise EngineError(f"no parallelism given for operator {name!r}")
            p = parallelisms[name]
            if not isinstance(p, (int, np.integer)) or isinstance(p, bool):
                raise EngineError(f"{name}: parallelism must be an int, got {p!r}")
            if not 1 <= p <= self.max_parallelism:
                raise EngineError(
                    f"{name}: parallelism {p} outside [1, {self.max_parallelism}]"
                )

    @staticmethod
    def _require_running(deployment: Deployment) -> None:
        if not deployment.running:
            raise EngineError(f"job {deployment.job_id} is not running")
