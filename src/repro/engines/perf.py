"""Ground-truth processing-ability model (paper §II-A, Fig. 4).

The processing ability PA of an operator is the input rate (records/s) it
can sustain over a unit of useful time.  The paper observes (Fig. 4) that PA
grows monotonically with parallelism and crosses a *bottleneck threshold*
where the operator stops causing backpressure.  We model

    PA(op, p) = r1(op) * p^alpha(op)

where ``r1`` is the single-instance rate derived from the operator type,
tuple width, window configuration, and a per-operator ``cost_factor``, and
``alpha < 1`` encodes coordination overhead (stateful operators scale worse
than stateless ones).  The mild sub-linearity matters: it is what makes
DS2's linearity assumption iterate (paper §V-C/V-D), while remaining close
enough to linear to match the near-straight curves of Fig. 4.

All values here are *truth* — the observation channel in
:mod:`repro.engines.metrics` adds measurement noise before any tuner sees
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dataflow.operators import OperatorSpec, OperatorType, WindowType

#: Single-instance base processing rates (records/s at parallelism 1,
#: cost_factor 1, 64-byte tuples) calibrated so that the Flink experiments
#: land in the parallelism bands of Fig. 6 under the Table II rate units.
#:
#: Sources are deliberately very fast: they are thin record generators
#: ("the current source logic is part of the dataflow construction", §V-A)
#: and, crucially, Algorithm 1 *cannot* label a source as a bottleneck —
#: a starving source produces consumer lag, not backpressure, and has no
#: upstream operator to observe stalling.  Keeping sources comfortably
#: below saturation (scaled by ``cost_factor`` where a workload wants an
#: expensive source) keeps every tuner's problem observable.
BASE_RATE: dict[OperatorType, float] = {
    OperatorType.SOURCE: 4.0e7,
    OperatorType.MAP: 1.1e6,
    OperatorType.FLAT_MAP: 0.9e6,
    OperatorType.FILTER: 1.4e6,
    OperatorType.JOIN: 0.50e6,
    OperatorType.WINDOW_JOIN: 0.25e6,
    OperatorType.AGGREGATE: 0.70e6,
    OperatorType.WINDOW_AGGREGATE: 0.30e6,
    OperatorType.SINK: 2.2e6,
}

#: Scaling exponents: PA(p) = r1 * p^alpha.  Stateless operators scale
#: near-linearly (DS2's assumption holds for them, which is why the paper
#: sees no DS2 backpressure on Q1/Q2); stateful operators pay
#: key-partitioning/state overhead, and that sub-linearity is what makes
#: DS2 fall short on joins and windows (Table III's complexity gradient).
SCALING_ALPHA: dict[OperatorType, float] = {
    OperatorType.SOURCE: 0.995,
    OperatorType.MAP: 0.99,
    OperatorType.FLAT_MAP: 0.99,
    OperatorType.FILTER: 0.99,
    OperatorType.JOIN: 0.90,
    OperatorType.WINDOW_JOIN: 0.88,
    OperatorType.AGGREGATE: 0.93,
    OperatorType.WINDOW_AGGREGATE: 0.90,
    OperatorType.SINK: 0.995,
}

#: Reference tuple width for the width penalty (bytes).
_REFERENCE_WIDTH = 64.0


@dataclass(frozen=True)
class PerformanceModel:
    """Deterministic PA model shared by both engine adapters.

    Parameters
    ----------
    speed_factor:
        Engine-wide multiplier on all base rates.  Flink uses 1.0; Timely —
        a native Rust engine — is substantially faster per instance, which
        is why the paper's Table II Timely rate units are ~10x Flink's.
    type_speed_factors:
        Optional per-operator-type multipliers layered on top.  Engine
        runtimes differ *non-uniformly*: Timely's hand-written windowed
        operators over plain structs are disproportionately faster than
        their JVM counterparts, while its record-at-a-time joins gain less.
    """

    speed_factor: float = 1.0
    type_speed_factors: dict | None = None

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.type_speed_factors is not None:
            for factor in self.type_speed_factors.values():
                if factor <= 0:
                    raise ValueError("type speed factors must be positive")

    def per_instance_rate(self, spec: OperatorSpec) -> float:
        """True records/s a single instance of ``spec`` sustains (r1)."""
        rate = BASE_RATE[spec.op_type] * self.speed_factor
        if self.type_speed_factors is not None:
            rate *= self.type_speed_factors.get(spec.op_type, 1.0)
        rate /= spec.cost_factor
        rate /= self._width_penalty(spec.tuple_width_in)
        rate /= self._window_penalty(spec)
        return rate

    def scaling_alpha(self, spec: OperatorSpec) -> float:
        """Scaling exponent alpha for ``spec``."""
        return SCALING_ALPHA[spec.op_type]

    def processing_ability(self, spec: OperatorSpec, parallelism: int) -> float:
        """True aggregate PA (records/s of input) at ``parallelism`` instances."""
        if parallelism < 1:
            raise ValueError(f"{spec.name}: parallelism must be >= 1")
        return self.per_instance_rate(spec) * parallelism ** self.scaling_alpha(spec)

    def min_parallelism_for(self, spec: OperatorSpec, demand: float, p_max: int) -> int:
        """Oracle: smallest p <= p_max with PA(p) >= demand (p_max if none).

        Only tests and the oracle tuner may call this — real tuners must
        discover it from observations.
        """
        if demand <= 0:
            return 1
        r1 = self.per_instance_rate(spec)
        alpha = self.scaling_alpha(spec)
        exact = (demand / r1) ** (1.0 / alpha)
        candidate = max(1, math.ceil(exact - 1e-9))
        return min(candidate, p_max)

    @staticmethod
    def _width_penalty(width_in: float) -> float:
        """Wider tuples cost more to (de)serialise; linear-ish penalty."""
        width = max(width_in, 1.0)
        return 0.75 + 0.25 * (width / _REFERENCE_WIDTH)

    @staticmethod
    def _window_penalty(spec: OperatorSpec) -> float:
        """Sliding windows re-touch records overlap-many times."""
        if spec.window_type is not WindowType.SLIDING:
            return 1.0
        if spec.sliding_length <= 0:
            return 1.0
        overlap = spec.window_length / spec.sliding_length
        return 1.0 + 0.08 * min(overlap, 12.0)
