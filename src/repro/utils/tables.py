"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows/series the paper reports; this
module provides a dependency-free aligned-column renderer used everywhere.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
