"""Deterministic random-number helpers.

Every stochastic component in the library (history generation, measurement
noise, model initialisation, clustering restarts) draws from an explicitly
seeded :class:`numpy.random.Generator`.  Experiments are therefore exactly
reproducible from their seed, which EXPERIMENTS.md records.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 20250711


def stable_hash(text: str, modulus: int = 2**31 - 1) -> int:
    """Deterministic string hash (``hash()`` is salted per process)."""
    import zlib

    return zlib.crc32(text.encode("utf-8")) % modulus


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh generator seeded with ``seed`` (library default if None)."""
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, key: str) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a string key.

    The key is folded into the child seed so that two subsystems spawned from
    the same parent do not share a stream, and re-ordering unrelated draws in
    one subsystem cannot perturb another.
    """
    key_digest = np.frombuffer(key.encode("utf-8"), dtype=np.uint8).sum()
    child_seed = int(rng.integers(0, 2**31 - 1)) ^ (int(key_digest) * 2654435761 % 2**31)
    return np.random.default_rng(child_seed)
