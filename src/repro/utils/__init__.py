"""Shared utilities: seeded randomness, timing, and table formatting."""

from repro.utils.rng import seeded_rng, spawn_rng
from repro.utils.timer import Timer
from repro.utils.tables import format_table

__all__ = ["seeded_rng", "spawn_rng", "Timer", "format_table"]
