"""Shared utilities: randomness, timing, tables, and retry/backoff."""

from repro.utils.rng import seeded_rng, spawn_rng
from repro.utils.timer import Timer
from repro.utils.tables import format_table
from repro.utils.retry import backoff_delays, with_retries

__all__ = [
    "seeded_rng",
    "spawn_rng",
    "Timer",
    "format_table",
    "backoff_delays",
    "with_retries",
]
