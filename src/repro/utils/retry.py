"""Jittered exponential backoff, deterministic under a seeded RNG.

The distributed spool's lease heartbeats and the daemon client's HTTP
calls both face the same problem: a transient failure (NFS hiccup,
daemon restarting, socket refused) that resolves itself within a few
hundred milliseconds, where failing on the first error turns a blip
into a dead worker.  Both now share this helper.

Determinism matters because the retry schedule participates in tests:
``backoff_delays(..., rng=random.Random(seed))`` yields the exact same
jittered schedule every run, so a test can assert the schedule (or the
total sleep budget) without mocking time.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator, TypeVar

__all__ = ["backoff_delays", "with_retries"]

T = TypeVar("T")


def backoff_delays(
    *,
    base: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 2.0,
    jitter: float = 0.25,
    rng: random.Random | None = None,
) -> Iterator[float]:
    """Yield an endless jittered exponential backoff schedule.

    Delay ``i`` is ``min(base * factor**i, max_delay)`` scaled by a
    uniform jitter in ``[1 - jitter, 1 + jitter]``.  Pass a seeded
    ``random.Random`` for a reproducible schedule; the default draws
    from a fresh unseeded generator (fine for production, not tests).
    """
    if base <= 0:
        raise ValueError(f"base must be positive, got {base}")
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    generator = rng if rng is not None else random.Random()
    delay = base
    while True:
        yield delay * generator.uniform(1.0 - jitter, 1.0 + jitter)
        delay = min(delay * factor, max_delay)


def with_retries(
    call: Callable[[], T],
    *,
    retryable: tuple[type[BaseException], ...],
    attempts: int = 3,
    base: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 2.0,
    jitter: float = 0.25,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[BaseException, int, float], None] | None = None,
    deadline_seconds: float | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> T:
    """Run ``call``, retrying ``retryable`` exceptions with backoff.

    Only exceptions in ``retryable`` are retried — anything else
    propagates immediately (a daemon's *refusal* is an answer; only
    *unreachability* is transient).  After ``attempts`` total tries the
    last exception propagates unchanged.  ``on_retry(error, attempt,
    delay)`` fires before each sleep, for logging.

    ``deadline_seconds`` additionally caps *total* time: when the next
    backoff sleep would end past ``clock() + deadline_seconds`` (measured
    from entry), the current exception propagates instead of sleeping.
    Attempt counts alone cannot bound wall-clock — a call that itself
    takes seconds to fail (a hung NFS mount) would outlive any budget the
    attempt arithmetic promised — and callers like the lease-heartbeat
    loop must give up *before* their lease TTL elapses, not after.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if deadline_seconds is not None and deadline_seconds <= 0:
        raise ValueError(
            f"deadline_seconds must be positive, got {deadline_seconds}"
        )
    deadline = None if deadline_seconds is None else clock() + deadline_seconds
    delays = backoff_delays(
        base=base, factor=factor, max_delay=max_delay, jitter=jitter, rng=rng
    )
    for attempt in range(1, attempts + 1):
        try:
            return call()
        except retryable as error:
            if attempt == attempts:
                raise
            delay = next(delays)
            if deadline is not None and clock() + delay > deadline:
                raise
            if on_retry is not None:
                on_retry(error, attempt, delay)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
