"""Declarative plans: what to tune, described as data.

A plan is a frozen dataclass that round-trips losslessly through plain
dicts, JSON and TOML, so a tuning scenario is a config entry rather than
a code fork:

* :class:`TuningPlan` — one query driven through a rate trace by one
  tuning method (the ``repro tune`` lifecycle).
* :class:`CampaignPlan` — a fleet of queries executed concurrently
  through the :class:`~repro.service.TuningService` (the
  ``repro serve-campaigns`` lifecycle).
* :class:`SweepPlan` — a parameter grid (engines x tuners x rate traces
  x chaos schedules, each over the same query fleet) that expands into
  one :class:`CampaignPlan` per cell (the ``repro sweep`` and
  ``repro matrix`` lifecycles).

Rate traces come in two spellings everywhere a plan accepts them: a raw
multiplier list (back-compat — cell keys stay byte-identical), or a named
``{family, params, seed}`` spec resolved against the
:data:`repro.scenarios.TRACES` registry and materialized at validation
time.  Plans may also carry a ``chaos`` schedule
(:class:`repro.scenarios.ChaosSpec`) of operator losses and latency
spikes keyed to trace steps.

Validation is *eager*: constructing a plan checks every name against its
registry (engine, tuner, prediction model, query tokens), every numeric
field against its domain, and the ``rates``/``queries`` shape — so a bad
config file fails at load time with an error that says what to fix, not
deep inside a worker pool.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, fields
from pathlib import Path

from repro.api.components import resolve_query  # noqa: F401  (re-exported)
from repro.api.components import streamtune_variant
from repro.api.registry import ENGINES, MODELS, TUNERS, UnknownComponentError
from repro.workloads.nexmark import NEXMARK_QUERY_NAMES
from repro.workloads.pqp import PQP_TEMPLATES, pqp_template_size

#: Worker-pool backends a campaign may request: the in-process pools of
#: :data:`repro.service.tuning.BACKENDS` plus the multi-host
#: ``distributed`` executor (:mod:`repro.distributed`).  Kept literal
#: here so plan validation never has to import the execution layers.
PLAN_BACKENDS = ("sequential", "thread", "process", "distributed")


class PlanError(ValueError):
    """A plan failed validation; the message says which field and why."""


def _check_query_token(token: str) -> None:
    """Validate a query token without building the (expensive) query."""
    if not isinstance(token, str) or not token.strip():
        raise PlanError(f"query tokens must be non-empty strings, got {token!r}")
    token = token.strip()
    if "/" in token:
        template, _, index = token.rpartition("/")
        if template not in PQP_TEMPLATES:
            raise PlanError(
                f"unknown PQP template {template!r} in query token {token!r} "
                f"(templates: {', '.join(PQP_TEMPLATES)})"
            )
        if not index.lstrip("-").isdigit():
            raise PlanError(
                f"malformed query token {token!r}: the part after '/' must be "
                "an integer index"
            )
        size = pqp_template_size(template)
        if not 0 <= int(index) < size:
            raise PlanError(
                f"query token {token!r}: template {template!r} has {size} "
                f"queries, so the index must be in 0..{size - 1}"
            )
        return
    if token.lower() not in NEXMARK_QUERY_NAMES:
        raise PlanError(
            f"unknown query token {token!r}: expected a Nexmark name "
            f"({', '.join(NEXMARK_QUERY_NAMES)}) or '<template>/<index>' with "
            f"a PQP template ({', '.join(PQP_TEMPLATES)})"
        )


def _check_registry(kind_label: str, registry, name: str) -> None:
    try:
        registry.entry(name)
    except UnknownComponentError as error:
        raise PlanError(f"{kind_label}: {error}") from None


def _check_tuner(name: str) -> None:
    """Validate a tuner name, accepting the ``streamtune-<model>`` spelling."""
    if name in TUNERS:
        return
    # The only dashed spelling is the legacy 'streamtune-<model>' ablation
    # form; its model suffix must itself resolve, so a bad config fails
    # here, not deep inside a session run.
    is_streamtune, model_suffix = streamtune_variant(name)
    if not is_streamtune or model_suffix is None:
        _check_registry("tuner", TUNERS, name)
    _check_registry(f"tuner {name!r} model suffix", MODELS, model_suffix)


def _check_campaign_tuner(name: str) -> None:
    """Campaign/sweep tuners: any registered method the service can host.

    The service builds every campaign's tuner from its spec alone, so
    methods registered with ``needs_history=True`` (their factory pulls
    an execution history from its resources, e.g. zerotune) cannot run
    as campaigns — a :class:`TuningPlan` per query can.
    """
    _check_tuner(name)
    if name in TUNERS and TUNERS.entry(name).needs_history:
        raise PlanError(
            f"tuner {TUNERS.entry(name).name!r} needs an execution history "
            "at construction time, which the tuning service does not carry; "
            "run it through a TuningPlan (kind = \"tuning\") instead"
        )


def _check_scale(name: str | None) -> None:
    if name is None:
        return
    from repro.experiments.scale import resolve_scale

    try:
        resolve_scale(name)
    except KeyError as error:
        raise PlanError(f"scale: {error.args[0]}") from None


def _as_rates(value, field_name: str = "rates") -> tuple[float, ...]:
    if isinstance(value, (str, bytes)):
        raise PlanError(
            f"{field_name} must be a sequence of numbers, got the string "
            f"{value!r} (did you forget to split it?)"
        )
    try:
        rates = tuple(float(rate) for rate in value)
    except (TypeError, ValueError):
        raise PlanError(
            f"{field_name} must be a sequence of numbers, got {value!r}"
        ) from None
    if not rates:
        raise PlanError(f"{field_name} must contain at least one multiplier")
    for rate in rates:
        # isfinite also rejects NaN (which would sneak past `> 0` as
        # False and past `<= 0` as False — be explicit).
        if not (math.isfinite(rate) and rate > 0):
            raise PlanError(
                f"{field_name} multipliers must be finite and > 0, "
                f"got {rate:g}"
            )
    return rates


def _is_trace_spec(value) -> bool:
    from repro.scenarios.library import TraceSpec

    return isinstance(value, TraceSpec)


def _as_trace(value, field_name: str = "trace"):
    """Normalize a trace field value to a :class:`TraceSpec` (or ``None``)."""
    if value is None:
        return None
    from repro.scenarios.library import ScenarioError, TraceSpec

    if isinstance(value, TraceSpec):
        return value
    if isinstance(value, dict):
        try:
            return TraceSpec.from_dict(value)
        except ScenarioError as error:
            raise PlanError(f"{field_name}: {error}") from None
    raise PlanError(
        f"{field_name} must be a trace spec table ({{family, params, seed}}), "
        f"got {value!r}"
    )


def _split_rates(rates, trace, field_name: str = "rates"):
    """Let the ``rates`` field itself carry a ``{family, ...}`` spec.

    Returns ``(raw_rates_or_None, trace_spec_or_None)`` — ``None`` raw
    rates mean "materialize the spec".
    """
    if isinstance(rates, dict) or _is_trace_spec(rates):
        if trace is not None:
            raise PlanError(
                f"pass the trace spec through either {field_name!r} or "
                "'trace', not both"
            )
        return None, _as_trace(rates, field_name)
    return rates, _as_trace(trace)


def _resolve_trace(raw, trace, default_rates, field_name: str = "rates"):
    """The concrete rate tuple of a plan whose ``trace`` spec is set."""
    from repro.scenarios.library import ScenarioError

    try:
        materialized = trace.materialize()
    except ScenarioError as error:
        raise PlanError(f"trace: {error}") from None
    if raw is None:
        return materialized
    rates = _as_rates(raw, field_name)
    # An explicitly-spelled rate list must agree with the spec (the
    # field default is treated as "omitted" — dataclasses cannot tell).
    if rates != materialized and rates != default_rates:
        raise PlanError(
            f"{field_name} disagrees with the trace spec: the spec "
            f"materializes to {list(materialized)} but {field_name} says "
            f"{list(rates)}; drop {field_name} and let the spec drive"
        )
    return materialized


def _as_chaos(value, field_name: str = "chaos"):
    """Normalize a chaos field to a :class:`ChaosSpec`; no-ops to ``None``."""
    if value is None:
        return None
    from repro.scenarios.chaos import ChaosSpec
    from repro.scenarios.library import ScenarioError

    if not isinstance(value, ChaosSpec):
        if not isinstance(value, dict):
            raise PlanError(
                f"{field_name} must be a chaos spec table "
                f"({{operator_loss, latency_spikes}}), got {value!r}"
            )
        try:
            value = ChaosSpec.from_dict(value)
        except ScenarioError as error:
            raise PlanError(f"{field_name}: {error}") from None
    return None if value.is_noop else value


def _check_chaos_executes(chaos, engine: str, n_steps: int, field_name: str = "chaos") -> None:
    """Eagerly reject a chaos schedule this plan could never execute."""
    if chaos is None:
        return
    if chaos.max_step >= n_steps:
        raise PlanError(
            f"{field_name} schedules an effect at trace step "
            f"{chaos.max_step}, but each campaign here runs only {n_steps} "
            f"step(s) (indices 0..{n_steps - 1}); shorten the schedule or "
            "lengthen the trace"
        )
    required = chaos.required_traits()
    have = set(ENGINES.entry(engine).traits)
    missing = sorted(required - have)
    if missing:
        capable = sorted(
            name for name in ENGINES.names()
            if required <= set(ENGINES.entry(name).traits)
        )
        raise PlanError(
            f"{field_name} needs engine capability "
            f"{', '.join(map(repr, missing))}, which engine {engine!r} does "
            f"not declare (capable: {', '.join(capable) or 'no registered engine'})"
        )


# ----------------------------------------------------------------------
# the plans
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TuningPlan:
    """One query, one tuning method, one source-rate trace."""

    query: str
    rates: tuple[float, ...] = (3.0, 10.0, 5.0)
    engine: str = "flink"
    tuner: str = "streamtune"
    layer: str = "svm"                 # prediction model (streamtune only)
    model: str | None = None           # pretrained directory; None = build at `scale`
    scale: str | None = None           # None = $REPRO_SCALE / 'default'
    seed: int = 17
    cache_path: str | None = None      # persisted TuningCacheSet snapshot
    #: Named rate-trace spec ({family, params, seed}); materializes into
    #: ``rates``.  Raw ``rates`` lists stay first-class (trace = None).
    trace: object = None
    #: Deterministic fault / latency-spike schedule (ChaosSpec table);
    #: a no-op schedule normalizes to None.
    chaos: object = None

    kind = "tuning"

    def __post_init__(self) -> None:
        _check_query_token(self.query)
        raw, trace = _split_rates(self.rates, self.trace)
        object.__setattr__(self, "trace", trace)
        if trace is not None:
            rates = _resolve_trace(raw, trace, type(self).rates)
        else:
            rates = _as_rates(raw)
        object.__setattr__(self, "rates", rates)
        _check_registry("engine", ENGINES, self.engine)
        _check_tuner(self.tuner)
        _check_registry("layer", MODELS, self.layer)
        _check_scale(self.scale)
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise PlanError(f"seed must be an integer, got {self.seed!r}")
        if (
            self.cache_path is not None
            and not streamtune_variant(self.tuner)[0]
        ):
            raise PlanError(
                f"cache_path only applies to the streamtune tuner (the "
                f"baselines consult no tuning cache); remove it or drop "
                f"tuner={self.tuner!r}"
            )
        object.__setattr__(self, "chaos", _as_chaos(self.chaos))
        _check_chaos_executes(self.chaos, self.engine, len(self.rates))

    def cell_keys(self) -> list[str]:
        """The deterministic campaign identity this plan will stamp on its
        events (one entry — a tuning plan is a single campaign); a
        recorded log whose keys match can stand in for re-execution."""
        from repro.api.events import campaign_cell_key
        from repro.experiments.scale import resolve_scale

        is_streamtune, model_suffix = streamtune_variant(self.tuner)
        query = resolve_query(self.query, self.engine)
        return [
            campaign_cell_key(
                query.name,
                self.engine,
                self.tuner,
                self.rates,
                self.seed,
                layer=(model_suffix or self.layer) if is_streamtune else None,
                # The inline tuning lifecycle seeds its engine from the
                # scale, not the plan seed (unlike campaign fleets).
                engine_seed=resolve_scale(self.scale).seed,
                chaos=self.chaos.label() if self.chaos is not None else None,
            )
        ]

    def to_dict(self) -> dict:
        return {"kind": self.kind, **_plan_fields_dict(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "TuningPlan":
        return _plan_from_dict(cls, data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TuningPlan":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class CampaignPlan:
    """A fleet of queries tuned concurrently through the service."""

    queries: tuple[str, ...]
    rates: tuple[float, ...] = (3.0, 7.0, 4.0, 2.0)
    #: When True, ``rates`` is a flattened per-query list: its length must
    #: be a multiple of ``len(queries)`` and each query receives its own
    #: contiguous chunk.  When False every query shares the full trace.
    rates_per_query: bool = False
    engine: str = "flink"
    tuner: str = "streamtune"
    backend: str = "thread"
    workers: int | None = None
    layer: str = "svm"
    prioritize_backpressure: bool = True
    model: str | None = None
    scale: str | None = None
    seed: int = 17
    cache_path: str | None = None
    #: Split every campaign's rate trace into this many contiguous shards,
    #: each dispatched as its own worker unit; merged results stay
    #: bit-identical to the unsharded run (shards replay their prefix).
    trace_shards: int = 1
    #: Shared work-spool directory for the ``distributed`` backend: the
    #: coordinator seeds cells there and worker agents on any host claim
    #: them.  ``None`` with backend="distributed" means an ephemeral
    #: local spool (the coordinator creates, populates with local
    #: workers, and removes it).  Ignored by the in-process backends.
    spool_dir: str | None = None
    #: Named rate-trace spec ({family, params, seed}); materializes into
    #: ``rates``.  Raw ``rates`` lists stay first-class (trace = None).
    trace: object = None
    #: Deterministic fault / latency-spike schedule (ChaosSpec table),
    #: applied to every campaign of the fleet; no-op normalizes to None.
    chaos: object = None

    kind = "campaign"

    def __post_init__(self) -> None:
        if isinstance(self.queries, (str, bytes)):
            raise PlanError(
                "queries must be a sequence of query tokens, got the string "
                f"{self.queries!r} (did you forget to split it?)"
            )
        object.__setattr__(self, "queries", tuple(self.queries))
        if not self.queries:
            raise PlanError("queries must contain at least one query token")
        for token in self.queries:
            _check_query_token(token)
        raw, trace = _split_rates(self.rates, self.trace)
        object.__setattr__(self, "trace", trace)
        if trace is not None:
            rates = _resolve_trace(raw, trace, type(self).rates)
        else:
            rates = _as_rates(raw)
        object.__setattr__(self, "rates", rates)
        if self.rates_per_query and len(self.rates) % len(self.queries) != 0:
            raise PlanError(
                f"rates has {len(self.rates)} multipliers for "
                f"{len(self.queries)} queries; with rates_per_query the count "
                f"must be a multiple of the query count (e.g. "
                f"{len(self.queries)} or {2 * len(self.queries)}), so each "
                "query gets an equal chunk"
            )
        _check_registry("engine", ENGINES, self.engine)
        _check_campaign_tuner(self.tuner)
        _check_registry("layer", MODELS, self.layer)
        if self.backend not in PLAN_BACKENDS:
            raise PlanError(
                f"backend must be one of {', '.join(PLAN_BACKENDS)}, got "
                f"{self.backend!r}"
            )
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise PlanError(f"workers must be a positive integer, got {self.workers!r}")
        if (
            self.cache_path is not None
            and not streamtune_variant(self.tuner)[0]
        ):
            raise PlanError(
                f"cache_path only applies to the streamtune tuner (the "
                f"baselines consult no tuning cache); remove it or drop "
                f"tuner={self.tuner!r}"
            )
        if not isinstance(self.trace_shards, int) or isinstance(
            self.trace_shards, bool
        ) or self.trace_shards < 1:
            raise PlanError(
                f"trace_shards must be a positive integer, got "
                f"{self.trace_shards!r}"
            )
        _check_scale(self.scale)
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise PlanError(f"seed must be an integer, got {self.seed!r}")
        if self.spool_dir is not None and not isinstance(self.spool_dir, str):
            raise PlanError(
                f"spool_dir must be a directory path string, got "
                f"{self.spool_dir!r}"
            )
        object.__setattr__(self, "chaos", _as_chaos(self.chaos))
        _check_chaos_executes(
            self.chaos,
            self.engine,
            min(len(rates) for _, rates in self.rates_for()),
        )

    def rates_for(self) -> list[tuple[str, tuple[float, ...]]]:
        """The rate trace each query token runs, as (token, multipliers).

        A list of pairs rather than a dict so an accidentally duplicated
        query token still yields one spec per entry — the service then
        rejects the duplicate with its own clear error instead of one
        campaign silently vanishing.
        """
        if not self.rates_per_query:
            return [(token, self.rates) for token in self.queries]
        chunk = len(self.rates) // len(self.queries)
        return [
            (token, self.rates[i * chunk : (i + 1) * chunk])
            for i, token in enumerate(self.queries)
        ]

    def cell_keys(self) -> list[str]:
        """Deterministic campaign identities, one per fleet campaign, in
        plan order — what ``--resume`` matches recorded logs against."""
        from repro.api.events import campaign_cell_key

        is_streamtune, model_suffix = streamtune_variant(self.tuner)
        return [
            campaign_cell_key(
                resolve_query(token, self.engine).name,
                self.engine,
                self.tuner,
                rates,
                self.seed,
                layer=(model_suffix or self.layer) if is_streamtune else None,
                engine_seed=self.seed,   # fleet campaigns seed engines per plan
                chaos=self.chaos.label() if self.chaos is not None else None,
            )
            for token, rates in self.rates_for()
        ]

    def to_dict(self) -> dict:
        return {"kind": self.kind, **_plan_fields_dict(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignPlan":
        return _plan_from_dict(cls, data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignPlan":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SweepPlan:
    """A scenario grid: engines x tuners x rate traces over one query fleet.

    Each grid cell expands into a :class:`CampaignPlan` running every
    query of ``queries`` under that cell's (engine, tuner, rate-trace)
    combination — the PDSP-Bench-style enumeration of parallelism studies
    as one config file.  Validation is eager per axis, so a bad entry
    fails naming the axis at load time, and :meth:`expand` is
    deterministic: engines vary slowest, rate traces fastest.
    """

    queries: tuple[str, ...]
    tuners: tuple[str, ...] = ("streamtune",)
    engines: tuple[str, ...] = ("flink",)
    #: One entry per rate trace: a raw multiplier list, or a named
    #: ``{family, params, seed}`` trace spec — mixed freely.
    rate_traces: tuple = ((3.0, 7.0, 4.0, 2.0),)
    rates_per_query: bool = False
    backend: str = "thread"
    workers: int | None = None
    layer: str = "svm"
    prioritize_backpressure: bool = True
    model: str | None = None
    scale: str | None = None
    seed: int = 17
    trace_shards: int = 1
    #: Shared work spool for the ``distributed`` backend (see
    #: :class:`CampaignPlan.spool_dir`); passed through to every cell.
    spool_dir: str | None = None
    #: The chaos grid axis: zero or more chaos spec tables, crossed with
    #: every (engine, tuner, trace) cell.  Include ``{}`` (the no-op
    #: schedule) to keep a clean baseline cell next to the chaotic ones.
    #: An empty axis means no chaos dimension at all.
    chaos: tuple = ()

    kind = "sweep"

    def __post_init__(self) -> None:
        for axis, values in (
            ("queries", self.queries),
            ("tuners", self.tuners),
            ("engines", self.engines),
        ):
            if isinstance(values, (str, bytes)):
                raise PlanError(
                    f"{axis} must be a sequence of names, got the string "
                    f"{values!r} (did you forget to split it?)"
                )
            object.__setattr__(self, axis, tuple(values))
            if not getattr(self, axis):
                raise PlanError(f"{axis} must contain at least one entry")
        # Duplicate grid-axis entries would expand into indistinguishable
        # cells (same scenario label, merged metrics) — reject them here.
        for axis in ("tuners", "engines"):
            values = getattr(self, axis)
            if len(set(values)) != len(values):
                raise PlanError(
                    f"{axis} contains duplicate entries ({', '.join(values)}); "
                    "each grid-axis entry must be unique"
                )
        for token in self.queries:
            _check_query_token(token)
        for tuner in self.tuners:
            _check_campaign_tuner(tuner)
        for engine in self.engines:
            _check_registry("engine", ENGINES, engine)
        if isinstance(self.rate_traces, (str, bytes)) or not isinstance(
            self.rate_traces, (list, tuple)
        ):
            raise PlanError(
                f"rate_traces must be a list of rate lists, got "
                f"{self.rate_traces!r}"
            )
        if not self.rate_traces:
            raise PlanError("rate_traces must contain at least one rate trace")
        entries = []
        for index, trace in enumerate(self.rate_traces):
            if isinstance(trace, dict) or _is_trace_spec(trace):
                entries.append(_as_trace(trace, field_name=f"rate_traces[{index}]"))
            else:
                entries.append(_as_rates(trace, field_name=f"rate_traces[{index}]"))
        object.__setattr__(self, "rate_traces", tuple(entries))
        if len(set(self.rate_traces)) != len(self.rate_traces):
            raise PlanError(
                "rate_traces contains duplicate traces; each grid-axis "
                "entry must be unique"
            )
        if isinstance(self.chaos, (str, bytes, dict)) or not isinstance(
            self.chaos, (list, tuple)
        ):
            raise PlanError(
                f"chaos must be a list of chaos spec tables (the grid axis; "
                f"include {{}} for a clean baseline cell), got {self.chaos!r}"
            )
        from repro.scenarios.chaos import ChaosSpec
        from repro.scenarios.library import ScenarioError

        axis = []
        for index, spec in enumerate(self.chaos):
            if isinstance(spec, ChaosSpec):
                axis.append(spec)
                continue
            if not isinstance(spec, dict):
                raise PlanError(
                    f"chaos[{index}] must be a chaos spec table "
                    f"({{operator_loss, latency_spikes}}), got {spec!r}"
                )
            try:
                axis.append(ChaosSpec.from_dict(spec))
            except ScenarioError as error:
                raise PlanError(f"chaos[{index}]: {error}") from None
        object.__setattr__(self, "chaos", tuple(axis))
        if len(set(self.chaos)) != len(self.chaos):
            raise PlanError(
                "chaos contains duplicate schedules; each grid-axis entry "
                "must be unique"
            )
        # Delegate the remaining field checks (and rates_per_query shape,
        # per trace) to the cells themselves: a SweepPlan is valid exactly
        # when every expanded CampaignPlan is.
        self.expand()

    @property
    def n_scenarios(self) -> int:
        return (
            len(self.engines) * len(self.tuners) * len(self.rate_traces)
            * max(1, len(self.chaos))
        )

    def scenario_label(self, plan: "CampaignPlan") -> str:
        """The human label of one expanded cell (stamped on its events)."""
        if plan.trace is not None:
            trace = plan.trace.label()
        else:
            trace = "x" + "-".join(f"{rate:g}" for rate in plan.rates)
        label = f"{plan.tuner}@{plan.engine}/{trace}"
        if self.chaos:
            chaos = plan.chaos.label() if plan.chaos is not None else "none"
            label += f"+{chaos}"
        return label

    def expand(self) -> "list[CampaignPlan]":
        """One validated :class:`CampaignPlan` per grid cell, grid order:
        engines vary slowest, then tuners, traces, chaos fastest."""
        cells = []
        chaos_axis = self.chaos if self.chaos else (None,)
        for engine in self.engines:
            for tuner in self.tuners:
                for trace in self.rate_traces:
                    for chaos in chaos_axis:
                        kwargs = {
                            "queries": self.queries,
                            "rates_per_query": self.rates_per_query,
                            "engine": engine,
                            "tuner": tuner,
                            "backend": self.backend,
                            "workers": self.workers,
                            "layer": self.layer,
                            "prioritize_backpressure": self.prioritize_backpressure,
                            "model": self.model,
                            "scale": self.scale,
                            "seed": self.seed,
                            "trace_shards": self.trace_shards,
                            "spool_dir": self.spool_dir,
                            "chaos": chaos,
                        }
                        if _is_trace_spec(trace):
                            kwargs["trace"] = trace
                        else:
                            kwargs["rates"] = trace
                        cells.append(CampaignPlan(**kwargs))
        return cells

    def cell_keys(self) -> list[str]:
        """Deterministic campaign identities across the whole grid, in
        grid order — every campaign a full sweep run would record."""
        return [key for cell in self.expand() for key in cell.cell_keys()]

    def to_dict(self) -> dict:
        return {"kind": self.kind, **_plan_fields_dict(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "SweepPlan":
        return _plan_from_dict(cls, data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepPlan":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# dict / file round-tripping
# ----------------------------------------------------------------------

def _listify(value):
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    if hasattr(value, "to_dict"):        # TraceSpec / ChaosSpec fields
        return value.to_dict()
    if isinstance(value, dict):
        return {key: _listify(item) for key, item in value.items()}
    return value


def _plan_fields_dict(plan) -> dict:
    return {spec.name: _listify(getattr(plan, spec.name)) for spec in fields(plan)}


def _plan_from_dict(cls, data: dict):
    if not isinstance(data, dict):
        raise PlanError(f"a {cls.__name__} must be a mapping, got {type(data).__name__}")
    data = dict(data)
    declared_kind = data.pop("kind", None)
    if declared_kind is not None and declared_kind != cls.kind:
        raise PlanError(
            f"this document declares kind {declared_kind!r} but was loaded as "
            f"a {cls.__name__} (kind {cls.kind!r})"
        )
    known = {spec.name for spec in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise PlanError(
            f"{cls.__name__} does not understand field(s) "
            f"{', '.join(map(repr, unknown))} (valid fields: "
            f"{', '.join(sorted(known))})"
        )
    return cls(**data)


def plan_from_dict(data: dict) -> "TuningPlan | CampaignPlan | SweepPlan":
    """Build any plan type from a dict, inferring the kind.

    An explicit ``kind`` key wins; otherwise a sweep-only axis
    (``tuners`` / ``engines`` / ``rate_traces``) selects a sweep,
    ``queries`` a campaign, and ``query`` a single tuning plan.
    """
    if not isinstance(data, dict):
        raise PlanError(f"a plan must be a mapping, got {type(data).__name__}")
    kind = data.get("kind")
    if kind == "tuning":
        return TuningPlan.from_dict(data)
    if kind == "campaign":
        return CampaignPlan.from_dict(data)
    if kind == "sweep":
        return SweepPlan.from_dict(data)
    if kind is not None:
        raise PlanError(
            f"unknown plan kind {kind!r} (expected 'tuning', 'campaign' or "
            "'sweep')"
        )
    if any(axis in data for axis in ("tuners", "engines", "rate_traces")):
        return SweepPlan.from_dict(data)
    if isinstance(data.get("chaos"), (list, tuple)):
        # A chaos *list* is the sweep grid axis (campaign/tuning plans
        # carry a single chaos table).
        return SweepPlan.from_dict(data)
    if "queries" in data:
        return CampaignPlan.from_dict(data)
    if "query" in data:
        return TuningPlan.from_dict(data)
    raise PlanError(
        "cannot infer the plan kind: provide 'kind', a 'query' (tuning plan), "
        "a 'queries' list (campaign plan) or a grid axis like 'tuners' "
        "(sweep plan)"
    )


def _toml_module():
    """The available TOML parser: stdlib ``tomllib`` (3.11+) or ``tomli``."""
    try:
        import tomllib

        return tomllib
    except ModuleNotFoundError:
        try:
            import tomli

            return tomli
        except ModuleNotFoundError:
            raise PlanError(
                "reading TOML plans needs Python 3.11+ (tomllib) or the "
                "'tomli' package; on this interpreter use a JSON plan instead"
            ) from None


def load_plan(path: str | Path) -> "TuningPlan | CampaignPlan | SweepPlan":
    """Load a plan from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    if not path.exists():
        raise PlanError(f"plan file {path} does not exist")
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise PlanError(f"{path} is not valid JSON: {error}") from None
    elif suffix == ".toml":
        toml = _toml_module()
        try:
            data = toml.loads(path.read_text())
        except toml.TOMLDecodeError as error:
            raise PlanError(f"{path} is not valid TOML: {error}") from None
    else:
        raise PlanError(
            f"unsupported plan file suffix {suffix!r} for {path} "
            "(expected .json or .toml)"
        )
    try:
        return plan_from_dict(data)
    except PlanError as error:
        raise PlanError(f"{path}: {error}") from None


def save_plan(plan: "TuningPlan | CampaignPlan | SweepPlan", path: str | Path) -> None:
    """Write a plan to ``.json`` or ``.toml`` (round-trips via :func:`load_plan`)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        path.write_text(plan.to_json() + "\n")
    elif suffix == ".toml":
        path.write_text(_to_toml(plan.to_dict()))
    else:
        raise PlanError(
            f"unsupported plan file suffix {suffix!r} for {path} "
            "(expected .json or .toml)"
        )


def _to_toml(data: dict) -> str:
    """Serialise a flat plan dict as TOML (``None`` fields are omitted)."""
    lines = []
    for key, value in data.items():
        if value is None:
            continue
        lines.append(f"{key} = {_toml_value(value)}")
    return "\n".join(lines) + "\n"


def _toml_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)   # JSON string escaping is valid TOML
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    if isinstance(value, dict):
        items = ", ".join(
            f"{key} = {_toml_value(item)}"
            for key, item in value.items()
            if item is not None
        )
        return "{" + items + "}"   # inline table (trace / chaos specs)
    raise PlanError(f"cannot serialise {value!r} to TOML")


def replace(plan, **changes):
    """`dataclasses.replace` re-exported: overrides re-validate eagerly."""
    return dataclasses.replace(plan, **changes)
