"""Checkpoint/resume: replay recorded campaigns instead of re-running them.

The paper's core idea is never paying twice for work the system has
already done; this module extends that guarantee across *interrupted
runs*.  A :class:`~repro.api.events.JsonlRecorder` log written by
``--record`` is a checkpoint: every completed campaign's
:class:`~repro.api.events.CampaignFinished` line carries the full result
payload and a deterministic ``cell_key``
(:func:`~repro.api.events.campaign_cell_key`).  :class:`ResumeLog` parses
such a log — tolerating the truncated final line a crash leaves behind —
and hands the recorded outcomes to the execution layer, which skips every
matching campaign, emits a :class:`~repro.api.events.CampaignSkipped`
marker plus the replayed finished event, and executes only what is
missing.  A resumed sweep therefore computes results bit-identical to an
uninterrupted one, at the cost of only the campaigns the interruption
lost.

Failed campaigns (:class:`~repro.api.events.CampaignFailed` lines) are
*not* treated as completed: resuming retries them.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api.events import CampaignFinished, event_from_dict

__all__ = ["ResumeError", "ResumeLog", "discover_latest_log", "load_events"]


class ResumeError(ValueError):
    """A resume log could not be used; the message says why."""


def discover_latest_log(
    directory: str | Path, exclude: "set[Path] | frozenset" = frozenset()
) -> Path:
    """The most recently modified ``*.jsonl`` log under ``directory``.

    Powers ``--resume auto``: instead of naming the interrupted run's
    record file, the operator points at (or implies, via ``--record``) the
    record directory and the newest log wins.  ``exclude`` removes paths
    that must not be considered — typically the *current* run's ``--record``
    target, which would otherwise shadow the log being resumed.
    Modification times compare at nanosecond resolution and ties break on
    the full lexicographic path, so discovery picks the same log on every
    run — filesystems with coarse timestamps (1s/2s granularity) routinely
    stamp two logs identically, and directory iteration order is not
    stable across filesystems.
    Zero-byte files are skipped: a recorder (or distributed worker) that
    died between ``open`` and its first write leaves an empty ledger,
    which is the *newest* file precisely when it matters — picking it
    would resume from nothing while a usable log sits right beside it.
    Raises :class:`ResumeError` when the directory holds no candidate.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ResumeError(
            f"cannot auto-discover a resume log: {directory} is not a directory"
        )
    excluded = {Path(path).resolve() for path in exclude}
    candidates = sorted(
        (
            path
            for path in directory.glob("*.jsonl")
            if path.is_file()
            and path.stat().st_size > 0
            and path.resolve() not in excluded
        ),
        key=lambda path: (path.stat().st_mtime_ns, str(path)),
    )
    if not candidates:
        raise ResumeError(
            f"cannot auto-discover a resume log: no *.jsonl record found in "
            f"{directory} (run with --record first, or name the log explicitly)"
        )
    return candidates[-1]


def load_events(path: str | Path) -> list:
    """Parse every well-formed event line of a JSONL log, in order.

    Lines that do not decode or do not describe a known event are
    skipped — a crash can truncate the final line mid-write, and a
    readable prefix is exactly what resuming is for.
    """
    return ResumeLog.load(path).events


class ResumeLog:
    """A parsed JSONL event log, indexed for resuming by ``cell_key``.

    ``completed`` maps each campaign's deterministic ``cell_key`` to its
    recorded :class:`~repro.api.events.CampaignFinished` (result payload
    rebuilt into a live ``CampaignOutcome``).  Pass the log as
    ``resume=`` to :meth:`TuningSession.run`/``stream`` or
    :meth:`TuningService.stream` — or use :meth:`outcome_for` directly.
    """

    def __init__(
        self,
        path: str | Path,
        events: list,
        n_malformed_lines: int = 0,
    ) -> None:
        self.path = Path(path)
        self.events = list(events)
        #: Lines that did not parse (crash-truncated tail, foreign data).
        self.n_malformed_lines = n_malformed_lines
        self.completed: dict[str, CampaignFinished] = {}
        #: Cell keys whose latest record is a failure (retried on resume).
        self.failed_cell_keys: set[str] = set()
        for event in self.events:
            key = getattr(event, "cell_key", None)
            if not key:
                continue
            if isinstance(event, CampaignFinished):
                # Only a finished event with a replayable result counts as
                # a checkpoint; an old log without payloads re-executes.
                if event.outcome is not None:
                    self.completed[key] = event
                    self.failed_cell_keys.discard(key)
            elif event.kind == "CampaignFailed":
                self.failed_cell_keys.add(key)

    @classmethod
    def load(cls, path: str | Path) -> "ResumeLog":
        path = Path(path)
        if not path.exists():
            raise ResumeError(f"resume log {path} does not exist")
        events = []
        n_malformed = 0
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(event_from_dict(json.loads(line)))
                except ValueError:
                    n_malformed += 1
        if not events and n_malformed:
            raise ResumeError(
                f"resume log {path} contains no parseable events "
                f"({n_malformed} malformed line(s)) — is it a "
                "--record JSONL log?"
            )
        return cls(path, events, n_malformed_lines=n_malformed)

    @property
    def n_completed(self) -> int:
        return len(self.completed)

    def outcome_for(self, cell_key: str):
        """The recorded ``CampaignOutcome`` for ``cell_key``, or ``None``."""
        event = self.completed.get(cell_key)
        return None if event is None else event.outcome

    def covers(self, cell_keys) -> "tuple[list[str], list[str]]":
        """Split ``cell_keys`` into (recorded, missing), preserving order."""
        recorded, missing = [], []
        for key in cell_keys:
            (recorded if key in self.completed else missing).append(key)
        return recorded, missing

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"ResumeLog({str(self.path)!r}, {len(self.events)} events, "
            f"{self.n_completed} completed campaign(s))"
        )
