"""Plan execution: the :class:`TuningSession` facade and its async twin.

A session turns a declarative plan into the exact computation the legacy
entry points performed:

* a :class:`~repro.api.plans.TuningPlan` reproduces the ``repro tune``
  lifecycle — one engine, one tuner, one rate trace — bit-identically;
* a :class:`~repro.api.plans.CampaignPlan` reproduces the
  ``repro serve-campaigns`` lifecycle over the concurrent
  :class:`~repro.service.TuningService`, with the same per-campaign
  seeding, so sequential/thread/process backends (and the async facade)
  all return bit-identical :class:`~repro.baselines.api.TuningResult`
  step sequences;
* a :class:`~repro.api.plans.SweepPlan` runs its grid cells in order,
  each as a campaign, and returns one :class:`SweepResult`.

Execution is **streaming**: :meth:`TuningSession.stream` yields the typed
:mod:`repro.api.events` of the run as they happen (optionally fanning
them out through an :class:`~repro.api.events.EventBus`), and the
blocking :meth:`TuningSession.run` is a thin wrapper that drains the
stream — so observing a run can never change its results.
:class:`AsyncTuningSession` exposes the same stream as an async iterator
(``async for event in session.stream(plan)``).

Execution is also **resumable** and **fault-tolerant**: ``run``/``stream``
accept ``resume=`` (a recorded JSONL log path or a parsed
:class:`~repro.api.resume.ResumeLog`) and replay every campaign whose
deterministic ``cell_key`` the log already records — bit-identical results
without re-execution, marked by
:class:`~repro.api.events.CampaignSkipped` events.  The completed cells'
pure cache entries are pre-warmed into the service's
:class:`~repro.service.cache.TuningCacheSet` before the missing cells
execute (see :mod:`repro.service.prewarm`), so a resumed run — and the
``cache_path`` snapshot it writes afterwards — recovers the crashed run's
paid-for computations, not just its recorded results.  A campaign whose
worker dies surfaces as a :class:`~repro.api.events.CampaignFailed` event;
the rest of the fleet (and, for sweeps, the remaining grid cells) still
runs, and a :class:`~repro.service.CampaignExecutionError` carrying every
failure is raised once the stream has drained — so a ``--record`` log is
left as complete as possible for the next ``--resume``.

Sessions are reusable: pre-trained artifacts resolve once per
``(engine, scale, model-path)`` and are shared across runs, and an
optional ``cache_path`` plan field round-trips the service's
:class:`~repro.service.cache.TuningCacheSet` through a versioned on-disk
snapshot so even separate *processes* never repeat a pure computation.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.components import (
    TunerResources,
    build_engine,
    build_tuner,
    resolve_query,
    streamtune_variant,
)
from repro.api.events import (
    CacheStats,
    CampaignFailed,
    CampaignFinished,
    CampaignSkipped,
    CampaignStarted,
    SweepFinished,
)
from repro.api.plans import CampaignPlan, PlanError, SweepPlan, TuningPlan
from repro.api.resume import ResumeLog


@dataclass
class SessionResult:
    """Everything one :meth:`TuningSession.run` produced."""

    plan: "TuningPlan | CampaignPlan"
    outcomes: list                      # list[CampaignOutcome], plan order
    wall_seconds: float
    backend: str
    cache_stats: dict = field(default_factory=dict)

    @property
    def results(self) -> list:
        """The :class:`CampaignResult` per query, in plan order."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def result(self):
        """The single campaign result (tuning plans / 1-query campaigns)."""
        if len(self.outcomes) != 1:
            raise ValueError(
                f"session ran {len(self.outcomes)} campaigns; use .results"
            )
        return self.outcomes[0].result

    def outcome(self, query_name: str):
        for outcome in self.outcomes:
            if outcome.spec_name == query_name:
                return outcome
        known = ", ".join(o.spec_name for o in self.outcomes)
        raise KeyError(f"no campaign named {query_name!r} (have: {known})")


@dataclass
class SweepResult:
    """Everything one sweep produced: a :class:`SessionResult` per cell."""

    plan: "SweepPlan"
    results: list                       # list[SessionResult], grid order
    wall_seconds: float

    @property
    def scenarios(self) -> list[tuple[str, "SessionResult"]]:
        """``(scenario label, cell result)`` pairs in grid order."""
        return [
            (self.plan.scenario_label(result.plan), result)
            for result in self.results
        ]

    @property
    def n_campaigns(self) -> int:
        return sum(len(result.outcomes) for result in self.results)

    def scenario(self, label: str) -> "SessionResult":
        for cell_label, result in self.scenarios:
            if cell_label == label:
                return result
        known = ", ".join(cell_label for cell_label, _ in self.scenarios)
        raise KeyError(f"no scenario labelled {label!r} (have: {known})")


class TuningSession:
    """Execute declarative plans; the single front door to the pipeline.

    Construction is cheap — expensive artifacts (pre-trained models,
    histories) are resolved lazily per plan and memoised process-wide via
    :mod:`repro.experiments.context`, so interleaved runs of many plans
    share everything pure.  Pass ``pretrained=`` to inject an existing
    artifact (tests and notebooks), and ``manager=`` to share caches
    across a ``process`` backend's workers.

    Long-lived hosts (the :mod:`repro.daemon` control plane) additionally
    pass ``caches=`` — one :class:`~repro.service.cache.TuningCacheSet`
    every plan this session runs shares, so the second job starts warm
    where the first left off (process-backend fleets fold worker-learned
    entries back in on drain) — and ``shm_store=`` — one caller-owned
    :class:`~repro.service.shm.SharedArrayStore` the process backend
    publishes warm payloads through, instead of creating and unlinking an
    arena per run.  A plan carrying its own ``cache_path`` keeps its
    legacy semantics: it loads and saves its private snapshot, leaving
    the session set untouched.
    """

    def __init__(
        self, *, pretrained=None, manager=None, caches=None, shm_store=None
    ) -> None:
        self._pretrained_override = pretrained
        self._manager = manager
        self._caches = caches
        self._shm_store = shm_store

    # -- artifact resolution -------------------------------------------

    def _scale_for(self, plan):
        from repro.experiments.scale import resolve_scale

        return resolve_scale(plan.scale)

    def _pretrained_for(self, plan, scale):
        if self._pretrained_override is not None:
            return self._pretrained_override
        if plan.model is not None:
            from repro.core.persistence import load_pretrained

            return load_pretrained(plan.model)
        from repro.experiments.context import pretrained_model

        return pretrained_model(plan.engine, scale)

    def _resources_for(self, plan, scale) -> TunerResources:
        from repro.experiments.context import history

        return TunerResources(
            scale=scale,
            pretrained=lambda: self._pretrained_for(plan, scale),
            history=lambda limit: history(plan.engine, scale)[:limit],
        )

    # -- execution ------------------------------------------------------

    def run(self, plan, *, bus=None, resume=None) -> "SessionResult | SweepResult":
        """Execute ``plan`` synchronously and return its results.

        A thin wrapper that drains :meth:`stream` — observing a run and
        running it blind compute exactly the same thing.  ``bus``
        publishes every event to an :class:`~repro.api.events.EventBus`
        on the way; ``resume`` replays campaigns a recorded JSONL log
        already covers (path or :class:`~repro.api.resume.ResumeLog`).
        """
        stream = self.stream(plan, bus=bus, resume=resume)
        while True:
            try:
                next(stream)
            except StopIteration as stop:
                return stop.value

    def stream(self, plan, *, bus=None, resume=None):
        """Execute ``plan``, yielding typed events as work completes.

        Returns a generator whose ``StopIteration.value`` (the ``return``
        of a ``yield from``) is the :class:`SessionResult` /
        :class:`SweepResult`, so callers that want both the stream and
        the result can ``result = yield from session.stream(plan)``.
        """
        resume = self._coerce_resume(resume)
        if (
            isinstance(plan, (CampaignPlan, SweepPlan))
            and plan.backend == "distributed"
        ):
            # The multi-host executor owns the whole fleet lifecycle
            # (spool seeding, worker agents, ledger merge); it emits the
            # same event stream, so the bus wrapper below still applies.
            from repro.distributed import DistributedSession

            inner = DistributedSession().stream(plan, resume=resume)
        elif isinstance(plan, TuningPlan):
            inner = self._stream_tuning(plan, resume)
        elif isinstance(plan, CampaignPlan):
            inner = self._stream_campaign(plan, resume)
        elif isinstance(plan, SweepPlan):
            inner = self._stream_sweep(plan, resume)
        else:
            raise PlanError(
                f"cannot run a {type(plan).__name__}; expected TuningPlan, "
                "CampaignPlan or SweepPlan (build one, or load a plan file "
                "via load_plan)"
            )
        if bus is None:
            return inner
        return self._published(inner, bus)

    @staticmethod
    def _published(inner, bus):
        """Re-yield ``inner`` publishing every event to ``bus``."""
        while True:
            try:
                event = next(inner)
            except StopIteration as stop:
                return stop.value
            bus.publish(event)
            yield event

    @staticmethod
    def _coerce_resume(resume) -> "ResumeLog | None":
        """Accept a recorded log path, a parsed log, or a raw mapping."""
        if resume is None or isinstance(resume, (ResumeLog, dict)):
            return resume
        return ResumeLog.load(resume)

    @staticmethod
    def _resume_outcome(resume, cell_key):
        if resume is None:
            return None
        if isinstance(resume, dict):
            return resume.get(cell_key)
        return resume.outcome_for(cell_key)

    def _stream_tuning(self, plan: TuningPlan, resume=None):
        """The single-query lifecycle (identical to the legacy ``tune``)."""
        from repro.experiments.campaigns import iter_campaign
        from repro.service.tuning import CampaignOutcome, _step_events

        started = time.perf_counter()
        seq = 0

        def stamped(event):
            nonlocal seq
            event = dataclasses.replace(event, seq=seq)
            seq += 1
            return event

        scale = self._scale_for(plan)
        query = resolve_query(plan.query, plan.engine)
        cell_key = plan.cell_keys()[0]
        recorded = self._resume_outcome(resume, cell_key)
        if recorded is not None:
            # The log already holds this campaign: replay it bit-identically
            # without touching engines, tuners or the pretrained artifact.
            recorded.backend = "inline"
            yield stamped(CampaignSkipped(
                campaign=query.name,
                index=0,
                backend="inline",
                n_steps=len(recorded.result.processes),
                resumed_from=str(getattr(resume, "path", "") or ""),
                cell_key=cell_key,
            ))
            yield stamped(CampaignFinished(
                campaign=query.name,
                index=0,
                backend="inline",
                n_steps=len(recorded.result.processes),
                converged_steps=sum(
                    1 for p in recorded.result.processes if p.converged
                ),
                wall_seconds=recorded.wall_seconds,
                outcome=recorded,
                cell_key=cell_key,
            ))
            yield stamped(CacheStats(stats={}))
            return SessionResult(
                plan=plan,
                outcomes=[recorded],
                wall_seconds=recorded.wall_seconds,
                backend="inline",
            )
        engine = build_engine(plan.engine, seed=scale.seed)
        params = {}
        caches = None
        is_streamtune, model_suffix = streamtune_variant(plan.tuner)
        if is_streamtune:
            params = {"seed": plan.seed}
            if model_suffix is None:
                # A 'streamtune-<model>' spelling carries its own layer;
                # build_tuner turns the suffix into model_kind.
                params["model_kind"] = plan.layer
            if plan.cache_path is not None:
                caches = self._load_caches(plan.cache_path)
                params["caches"] = caches
            elif self._caches is not None:
                params["caches"] = self._caches
        tuner = build_tuner(
            plan.tuner, engine, self._resources_for(plan, scale), **params
        )
        yield stamped(CampaignStarted(
            campaign=query.name,
            index=0,
            engine=plan.engine,
            tuner=plan.tuner,
            backend="inline",
            n_steps=len(plan.rates),
            cell_key=cell_key,
        ))
        # The canonical campaign loop, one event block per tuning process.
        injected: list = []   # ChaosInjected events buffered per step
        iterator = iter_campaign(
            engine, tuner, query, list(plan.rates),
            chaos=plan.chaos, chaos_sink=injected.append,
        )
        while True:
            try:
                index, multiplier, process = next(iterator)
            except StopIteration as stop:
                result = stop.value
                break
            for event in injected:
                yield stamped(dataclasses.replace(event, cell_key=cell_key))
            injected.clear()
            for event in _step_events(
                query.name, len(plan.rates), index, multiplier, process
            ):
                yield stamped(event)
        if caches is not None:
            caches.save(plan.cache_path)
        elif params.get("caches") is not None:
            caches = params["caches"]   # session-owned: report stats, no save
        wall = time.perf_counter() - started
        outcome = CampaignOutcome(
            spec_name=query.name, result=result, wall_seconds=wall, backend="inline"
        )
        yield stamped(CampaignFinished(
            campaign=query.name,
            index=0,
            backend="inline",
            n_steps=len(result.processes),
            converged_steps=sum(1 for p in result.processes if p.converged),
            wall_seconds=wall,
            outcome=outcome,
            cell_key=cell_key,
        ))
        stats = caches.stats() if caches is not None else {}
        yield stamped(CacheStats(stats=stats))
        return SessionResult(
            plan=plan, outcomes=[outcome], wall_seconds=wall, backend="inline",
            cache_stats=stats,
        )

    def _stream_campaign(self, plan: CampaignPlan, resume=None):
        """The fleet lifecycle (identical to legacy ``serve-campaigns``)."""
        from repro.service import CampaignExecutionError, CampaignSpec, TuningService

        started = time.perf_counter()
        scale = self._scale_for(plan)
        is_streamtune, model_suffix = streamtune_variant(plan.tuner)
        model_kind = model_suffix if model_suffix else plan.layer
        specs = [
            CampaignSpec(
                query=resolve_query(token, plan.engine),
                multipliers=rates,
                engine=plan.engine,
                engine_seed=plan.seed,
                seed=plan.seed,
                tuner=plan.tuner,
                model_kind=model_kind,
                chaos=plan.chaos,
            )
            for token, rates in plan.rates_for()
        ]
        # A fully resumed cell replays without executing anything, so it
        # needs neither the pre-trained artifact (baseline fleets never do)
        # nor a process-backend manager: skipping both keeps e.g. a
        # recorded 30-cell sweep from training a model or forking 30
        # manager servers just to replay its log.
        will_execute = any(
            self._resume_outcome(resume, spec.cell_key) is None for spec in specs
        )
        needs_model = is_streamtune and will_execute
        pretrained = self._pretrained_for(plan, scale) if needs_model else None
        manager = self._manager
        own_manager = False
        if plan.backend == "process" and manager is None and will_execute:
            import multiprocessing

            manager = multiprocessing.Manager()
            own_manager = True
        own_caches = (
            self._load_caches(plan.cache_path) if plan.cache_path is not None else None
        )
        caches = own_caches if own_caches is not None else self._caches
        outcomes: dict[int, object] = {}
        failures: list = []
        stats: dict = {}
        try:
            service = TuningService(
                pretrained,
                backend=plan.backend,
                max_workers=plan.workers,
                prioritize_backpressure=plan.prioritize_backpressure,
                manager=manager,
                caches=caches,
                shm_store=self._shm_store,
            )
            for event in service.stream(
                specs, trace_shards=plan.trace_shards, resume=resume
            ):
                if isinstance(event, CampaignFinished):
                    outcomes[event.index] = event.outcome
                elif isinstance(event, CampaignFailed):
                    failures.append(event)
                elif isinstance(event, CacheStats):
                    stats = event.stats
                yield event
            if own_caches is not None:
                own_caches.save(plan.cache_path)
        finally:
            if own_manager:
                manager.shutdown()
        if failures:
            # Raised only after the stream drained: surviving campaigns
            # completed (and were recorded), ready for a --resume retry.
            raise CampaignExecutionError(failures, outcomes)
        return SessionResult(
            plan=plan,
            outcomes=[outcomes[index] for index in range(len(specs))],
            wall_seconds=time.perf_counter() - started,
            backend=plan.backend,
            cache_stats=stats,
        )

    def _stream_sweep(self, plan: SweepPlan, resume=None):
        """Run the grid cell by cell, labelling every event with its cell.

        A cell whose fleet had failures does not stop the sweep: the
        remaining cells still run (maximising what a ``--record`` log
        captures for ``--resume``) and one
        :class:`~repro.service.CampaignExecutionError` aggregating every
        failure is raised after the final cell.
        """
        from repro.service import CampaignExecutionError

        started = time.perf_counter()
        results = []
        failures: list = []
        n_campaigns = 0
        seq = 0                 # cell streams restart their counters; the
        for cell in plan.expand():  # sweep re-stamps one stream-wide order
            label = plan.scenario_label(cell)
            inner = self._stream_campaign(cell, resume)
            while True:
                try:
                    event = next(inner)
                except StopIteration as stop:
                    results.append(stop.value)
                    n_campaigns += len(stop.value.outcomes)
                    break
                except CampaignExecutionError as error:
                    failures.extend(error.failures)
                    n_campaigns += len(error.outcomes)
                    break
                yield dataclasses.replace(event, scenario=label, seq=seq)
                seq += 1
        wall = time.perf_counter() - started
        yield SweepFinished(
            n_scenarios=plan.n_scenarios,
            n_campaigns=n_campaigns,
            wall_seconds=wall,
            seq=seq,
        )
        if failures:
            raise CampaignExecutionError(failures)
        return SweepResult(plan=plan, results=results, wall_seconds=wall)

    @staticmethod
    def _load_caches(cache_path: str):
        from repro.service.cache import TuningCacheSet

        if Path(cache_path).exists():
            return TuningCacheSet.load(cache_path)
        return TuningCacheSet()


class AsyncTuningSession:
    """Awaitable facade over :class:`TuningSession`.

    ``await session.run(plan)`` executes the plan on a worker thread —
    the service's own pool (thread/process backend) keeps doing the heavy
    lifting, the event loop stays responsive, and results are the same
    objects the sync session returns.  ``run_all`` drives many plans
    concurrently with an ``asyncio.gather``, and ``stream`` surfaces the
    worker pool's event stream as an async iterator::

        async for event in session.stream(plan):
            ...
    """

    def __init__(
        self, *, pretrained=None, manager=None, caches=None, shm_store=None
    ) -> None:
        self._session = TuningSession(
            pretrained=pretrained, manager=manager, caches=caches,
            shm_store=shm_store,
        )
        #: Result of the most recently exhausted :meth:`stream` iteration.
        self.last_result: "SessionResult | SweepResult | None" = None

    async def run(self, plan, *, bus=None, resume=None) -> SessionResult:
        return await asyncio.to_thread(
            self._session.run, plan, bus=bus, resume=resume
        )

    async def run_all(self, plans) -> list[SessionResult]:
        return list(await asyncio.gather(*(self.run(plan) for plan in plans)))

    async def stream(self, plan, *, bus=None, resume=None):
        """Async-iterate the plan's event stream.

        The sync stream runs on a worker thread; events hop to the event
        loop through an ``asyncio.Queue``.  After exhaustion the stream's
        :class:`SessionResult`/:class:`SweepResult` is available on
        :attr:`last_result`.  Abandoning the iteration early (``break`` /
        ``aclose``) closes the underlying sync stream, which cancels
        work not yet dispatched; only units already running are awaited.
        """
        import threading

        loop = asyncio.get_running_loop()
        events: asyncio.Queue = asyncio.Queue()
        stopping = threading.Event()
        _END = object()

        def produce():
            stream = self._session.stream(plan, bus=bus, resume=resume)
            try:
                while True:
                    if stopping.is_set():
                        # Consumer walked away: run the generator's
                        # cleanup (pool shutdown w/ cancel_futures) from
                        # the thread that owns it, then stop producing.
                        stream.close()
                        return
                    try:
                        event = next(stream)
                    except StopIteration as stop:
                        loop.call_soon_threadsafe(events.put_nowait, (_END, stop.value))
                        return
                    loop.call_soon_threadsafe(events.put_nowait, ("event", event))
            except BaseException as error:  # noqa: BLE001 — re-raised below
                loop.call_soon_threadsafe(events.put_nowait, ("error", error))

        producer = loop.run_in_executor(None, produce)
        try:
            while True:
                tag, payload = await events.get()
                if tag is _END:
                    self.last_result = payload
                    return
                if tag == "error":
                    raise payload
                yield payload
        finally:
            stopping.set()
            await producer
