"""Plan execution: the :class:`TuningSession` facade and its async twin.

A session turns a declarative plan into the exact computation the legacy
entry points performed:

* a :class:`~repro.api.plans.TuningPlan` reproduces the ``repro tune``
  lifecycle — one engine, one tuner, one rate trace — bit-identically;
* a :class:`~repro.api.plans.CampaignPlan` reproduces the
  ``repro serve-campaigns`` lifecycle over the concurrent
  :class:`~repro.service.TuningService`, with the same per-campaign
  seeding, so sequential/thread/process backends (and the async facade)
  all return bit-identical :class:`~repro.baselines.api.TuningResult`
  step sequences;
* a :class:`~repro.api.plans.SweepPlan` runs its grid cells in order,
  each as a campaign, and returns one :class:`SweepResult`.

Execution is **streaming**: :meth:`TuningSession.stream` yields the typed
:mod:`repro.api.events` of the run as they happen (optionally fanning
them out through an :class:`~repro.api.events.EventBus`), and the
blocking :meth:`TuningSession.run` is a thin wrapper that drains the
stream — so observing a run can never change its results.
:class:`AsyncTuningSession` exposes the same stream as an async iterator
(``async for event in session.stream(plan)``).

Sessions are reusable: pre-trained artifacts resolve once per
``(engine, scale, model-path)`` and are shared across runs, and an
optional ``cache_path`` plan field round-trips the service's
:class:`~repro.service.cache.TuningCacheSet` through a versioned on-disk
snapshot so even separate *processes* never repeat a pure computation.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.components import (
    TunerResources,
    build_engine,
    build_tuner,
    resolve_query,
    streamtune_variant,
)
from repro.api.events import (
    CacheStats,
    CampaignFinished,
    CampaignStarted,
    SweepFinished,
)
from repro.api.plans import CampaignPlan, PlanError, SweepPlan, TuningPlan


@dataclass
class SessionResult:
    """Everything one :meth:`TuningSession.run` produced."""

    plan: "TuningPlan | CampaignPlan"
    outcomes: list                      # list[CampaignOutcome], plan order
    wall_seconds: float
    backend: str
    cache_stats: dict = field(default_factory=dict)

    @property
    def results(self) -> list:
        """The :class:`CampaignResult` per query, in plan order."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def result(self):
        """The single campaign result (tuning plans / 1-query campaigns)."""
        if len(self.outcomes) != 1:
            raise ValueError(
                f"session ran {len(self.outcomes)} campaigns; use .results"
            )
        return self.outcomes[0].result

    def outcome(self, query_name: str):
        for outcome in self.outcomes:
            if outcome.spec_name == query_name:
                return outcome
        known = ", ".join(o.spec_name for o in self.outcomes)
        raise KeyError(f"no campaign named {query_name!r} (have: {known})")


@dataclass
class SweepResult:
    """Everything one sweep produced: a :class:`SessionResult` per cell."""

    plan: "SweepPlan"
    results: list                       # list[SessionResult], grid order
    wall_seconds: float

    @property
    def scenarios(self) -> list[tuple[str, "SessionResult"]]:
        """``(scenario label, cell result)`` pairs in grid order."""
        return [
            (self.plan.scenario_label(result.plan), result)
            for result in self.results
        ]

    @property
    def n_campaigns(self) -> int:
        return sum(len(result.outcomes) for result in self.results)

    def scenario(self, label: str) -> "SessionResult":
        for cell_label, result in self.scenarios:
            if cell_label == label:
                return result
        known = ", ".join(cell_label for cell_label, _ in self.scenarios)
        raise KeyError(f"no scenario labelled {label!r} (have: {known})")


class TuningSession:
    """Execute declarative plans; the single front door to the pipeline.

    Construction is cheap — expensive artifacts (pre-trained models,
    histories) are resolved lazily per plan and memoised process-wide via
    :mod:`repro.experiments.context`, so interleaved runs of many plans
    share everything pure.  Pass ``pretrained=`` to inject an existing
    artifact (tests and notebooks), and ``manager=`` to share caches
    across a ``process`` backend's workers.
    """

    def __init__(self, *, pretrained=None, manager=None) -> None:
        self._pretrained_override = pretrained
        self._manager = manager

    # -- artifact resolution -------------------------------------------

    def _scale_for(self, plan):
        from repro.experiments.scale import resolve_scale

        return resolve_scale(plan.scale)

    def _pretrained_for(self, plan, scale):
        if self._pretrained_override is not None:
            return self._pretrained_override
        if plan.model is not None:
            from repro.core.persistence import load_pretrained

            return load_pretrained(plan.model)
        from repro.experiments.context import pretrained_model

        return pretrained_model(plan.engine, scale)

    def _resources_for(self, plan, scale) -> TunerResources:
        from repro.experiments.context import history

        return TunerResources(
            scale=scale,
            pretrained=lambda: self._pretrained_for(plan, scale),
            history=lambda limit: history(plan.engine, scale)[:limit],
        )

    # -- execution ------------------------------------------------------

    def run(self, plan, *, bus=None) -> "SessionResult | SweepResult":
        """Execute ``plan`` synchronously and return its results.

        A thin wrapper that drains :meth:`stream` — observing a run and
        running it blind compute exactly the same thing.  ``bus``
        publishes every event to an :class:`~repro.api.events.EventBus`
        on the way.
        """
        stream = self.stream(plan, bus=bus)
        while True:
            try:
                next(stream)
            except StopIteration as stop:
                return stop.value

    def stream(self, plan, *, bus=None):
        """Execute ``plan``, yielding typed events as work completes.

        Returns a generator whose ``StopIteration.value`` (the ``return``
        of a ``yield from``) is the :class:`SessionResult` /
        :class:`SweepResult`, so callers that want both the stream and
        the result can ``result = yield from session.stream(plan)``.
        """
        if isinstance(plan, TuningPlan):
            inner = self._stream_tuning(plan)
        elif isinstance(plan, CampaignPlan):
            inner = self._stream_campaign(plan)
        elif isinstance(plan, SweepPlan):
            inner = self._stream_sweep(plan)
        else:
            raise PlanError(
                f"cannot run a {type(plan).__name__}; expected TuningPlan, "
                "CampaignPlan or SweepPlan (build one, or load a plan file "
                "via load_plan)"
            )
        if bus is None:
            return inner
        return self._published(inner, bus)

    @staticmethod
    def _published(inner, bus):
        """Re-yield ``inner`` publishing every event to ``bus``."""
        while True:
            try:
                event = next(inner)
            except StopIteration as stop:
                return stop.value
            bus.publish(event)
            yield event

    def _stream_tuning(self, plan: TuningPlan):
        """The single-query lifecycle (identical to the legacy ``tune``)."""
        from repro.experiments.campaigns import iter_campaign
        from repro.service.tuning import CampaignOutcome, _step_events

        started = time.perf_counter()
        seq = 0

        def stamped(event):
            nonlocal seq
            event = dataclasses.replace(event, seq=seq)
            seq += 1
            return event

        scale = self._scale_for(plan)
        engine = build_engine(plan.engine, seed=scale.seed)
        query = resolve_query(plan.query, plan.engine)
        params = {}
        caches = None
        is_streamtune, model_suffix = streamtune_variant(plan.tuner)
        if is_streamtune:
            params = {"seed": plan.seed}
            if model_suffix is None:
                # A 'streamtune-<model>' spelling carries its own layer;
                # build_tuner turns the suffix into model_kind.
                params["model_kind"] = plan.layer
            if plan.cache_path is not None:
                caches = self._load_caches(plan.cache_path)
                params["caches"] = caches
        tuner = build_tuner(
            plan.tuner, engine, self._resources_for(plan, scale), **params
        )
        yield stamped(CampaignStarted(
            campaign=query.name,
            index=0,
            engine=plan.engine,
            tuner=plan.tuner,
            backend="inline",
            n_steps=len(plan.rates),
        ))
        # The canonical campaign loop, one event block per tuning process.
        iterator = iter_campaign(engine, tuner, query, list(plan.rates))
        while True:
            try:
                index, multiplier, process = next(iterator)
            except StopIteration as stop:
                result = stop.value
                break
            for event in _step_events(
                query.name, len(plan.rates), index, multiplier, process
            ):
                yield stamped(event)
        if caches is not None:
            caches.save(plan.cache_path)
        wall = time.perf_counter() - started
        outcome = CampaignOutcome(
            spec_name=query.name, result=result, wall_seconds=wall, backend="inline"
        )
        yield stamped(CampaignFinished(
            campaign=query.name,
            index=0,
            backend="inline",
            n_steps=len(result.processes),
            converged_steps=sum(1 for p in result.processes if p.converged),
            wall_seconds=wall,
            outcome=outcome,
        ))
        stats = caches.stats() if caches is not None else {}
        yield stamped(CacheStats(stats=stats))
        return SessionResult(
            plan=plan, outcomes=[outcome], wall_seconds=wall, backend="inline",
            cache_stats=stats,
        )

    def _stream_campaign(self, plan: CampaignPlan):
        """The fleet lifecycle (identical to legacy ``serve-campaigns``)."""
        from repro.service import CampaignSpec, TuningService

        started = time.perf_counter()
        scale = self._scale_for(plan)
        is_streamtune, model_suffix = streamtune_variant(plan.tuner)
        # Baseline fleets never touch the pre-trained artifact; skipping
        # it keeps e.g. a ds2 sweep cell from triggering a training run.
        pretrained = self._pretrained_for(plan, scale) if is_streamtune else None
        model_kind = model_suffix if model_suffix else plan.layer
        specs = [
            CampaignSpec(
                query=resolve_query(token, plan.engine),
                multipliers=rates,
                engine=plan.engine,
                engine_seed=plan.seed,
                seed=plan.seed,
                tuner=plan.tuner,
                model_kind=model_kind,
            )
            for token, rates in plan.rates_for()
        ]
        manager = self._manager
        own_manager = False
        if plan.backend == "process" and manager is None:
            import multiprocessing

            manager = multiprocessing.Manager()
            own_manager = True
        caches = (
            self._load_caches(plan.cache_path) if plan.cache_path is not None else None
        )
        outcomes: dict[int, object] = {}
        stats: dict = {}
        try:
            service = TuningService(
                pretrained,
                backend=plan.backend,
                max_workers=plan.workers,
                prioritize_backpressure=plan.prioritize_backpressure,
                manager=manager,
                caches=caches,
            )
            for event in service.stream(specs, trace_shards=plan.trace_shards):
                if isinstance(event, CampaignFinished):
                    outcomes[event.index] = event.outcome
                elif isinstance(event, CacheStats):
                    stats = event.stats
                yield event
            if caches is not None:
                caches.save(plan.cache_path)
        finally:
            if own_manager:
                manager.shutdown()
        return SessionResult(
            plan=plan,
            outcomes=[outcomes[index] for index in range(len(specs))],
            wall_seconds=time.perf_counter() - started,
            backend=plan.backend,
            cache_stats=stats,
        )

    def _stream_sweep(self, plan: SweepPlan):
        """Run the grid cell by cell, labelling every event with its cell."""
        started = time.perf_counter()
        results = []
        seq = 0                 # cell streams restart their counters; the
        for cell in plan.expand():  # sweep re-stamps one stream-wide order
            label = plan.scenario_label(cell)
            inner = self._stream_campaign(cell)
            while True:
                try:
                    event = next(inner)
                except StopIteration as stop:
                    results.append(stop.value)
                    break
                yield dataclasses.replace(event, scenario=label, seq=seq)
                seq += 1
        wall = time.perf_counter() - started
        yield SweepFinished(
            n_scenarios=len(results),
            n_campaigns=sum(len(result.outcomes) for result in results),
            wall_seconds=wall,
            seq=seq,
        )
        return SweepResult(plan=plan, results=results, wall_seconds=wall)

    @staticmethod
    def _load_caches(cache_path: str):
        from repro.service.cache import TuningCacheSet

        if Path(cache_path).exists():
            return TuningCacheSet.load(cache_path)
        return TuningCacheSet()


class AsyncTuningSession:
    """Awaitable facade over :class:`TuningSession`.

    ``await session.run(plan)`` executes the plan on a worker thread —
    the service's own pool (thread/process backend) keeps doing the heavy
    lifting, the event loop stays responsive, and results are the same
    objects the sync session returns.  ``run_all`` drives many plans
    concurrently with an ``asyncio.gather``, and ``stream`` surfaces the
    worker pool's event stream as an async iterator::

        async for event in session.stream(plan):
            ...
    """

    def __init__(self, *, pretrained=None, manager=None) -> None:
        self._session = TuningSession(pretrained=pretrained, manager=manager)
        #: Result of the most recently exhausted :meth:`stream` iteration.
        self.last_result: "SessionResult | SweepResult | None" = None

    async def run(self, plan, *, bus=None) -> SessionResult:
        return await asyncio.to_thread(self._session.run, plan, bus=bus)

    async def run_all(self, plans) -> list[SessionResult]:
        return list(await asyncio.gather(*(self.run(plan) for plan in plans)))

    async def stream(self, plan, *, bus=None):
        """Async-iterate the plan's event stream.

        The sync stream runs on a worker thread; events hop to the event
        loop through an ``asyncio.Queue``.  After exhaustion the stream's
        :class:`SessionResult`/:class:`SweepResult` is available on
        :attr:`last_result`.  Abandoning the iteration early (``break`` /
        ``aclose``) closes the underlying sync stream, which cancels
        work not yet dispatched; only units already running are awaited.
        """
        import threading

        loop = asyncio.get_running_loop()
        events: asyncio.Queue = asyncio.Queue()
        stopping = threading.Event()
        _END = object()

        def produce():
            stream = self._session.stream(plan, bus=bus)
            try:
                while True:
                    if stopping.is_set():
                        # Consumer walked away: run the generator's
                        # cleanup (pool shutdown w/ cancel_futures) from
                        # the thread that owns it, then stop producing.
                        stream.close()
                        return
                    try:
                        event = next(stream)
                    except StopIteration as stop:
                        loop.call_soon_threadsafe(events.put_nowait, (_END, stop.value))
                        return
                    loop.call_soon_threadsafe(events.put_nowait, ("event", event))
            except BaseException as error:  # noqa: BLE001 — re-raised below
                loop.call_soon_threadsafe(events.put_nowait, ("error", error))

        producer = loop.run_in_executor(None, produce)
        try:
            while True:
                tag, payload = await events.get()
                if tag is _END:
                    self.last_result = payload
                    return
                if tag == "error":
                    raise payload
                yield payload
        finally:
            stopping.set()
            await producer
