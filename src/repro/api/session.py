"""Plan execution: the :class:`TuningSession` facade and its async twin.

A session turns a declarative plan into the exact computation the legacy
entry points performed:

* a :class:`~repro.api.plans.TuningPlan` reproduces the ``repro tune``
  lifecycle — one engine, one tuner, one rate trace — bit-identically;
* a :class:`~repro.api.plans.CampaignPlan` reproduces the
  ``repro serve-campaigns`` lifecycle over the concurrent
  :class:`~repro.service.TuningService`, with the same per-campaign
  seeding, so sequential/thread/process backends (and the async facade)
  all return bit-identical :class:`~repro.baselines.api.TuningResult`
  step sequences.

Sessions are reusable: pre-trained artifacts resolve once per
``(engine, scale, model-path)`` and are shared across runs, and an
optional ``cache_path`` plan field round-trips the service's
:class:`~repro.service.cache.TuningCacheSet` through a versioned on-disk
snapshot so even separate *processes* never repeat a pure computation.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.components import TunerResources, build_engine, build_tuner, resolve_query
from repro.api.plans import CampaignPlan, PlanError, TuningPlan


@dataclass
class SessionResult:
    """Everything one :meth:`TuningSession.run` produced."""

    plan: "TuningPlan | CampaignPlan"
    outcomes: list                      # list[CampaignOutcome], plan order
    wall_seconds: float
    backend: str
    cache_stats: dict = field(default_factory=dict)

    @property
    def results(self) -> list:
        """The :class:`CampaignResult` per query, in plan order."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def result(self):
        """The single campaign result (tuning plans / 1-query campaigns)."""
        if len(self.outcomes) != 1:
            raise ValueError(
                f"session ran {len(self.outcomes)} campaigns; use .results"
            )
        return self.outcomes[0].result

    def outcome(self, query_name: str):
        for outcome in self.outcomes:
            if outcome.spec_name == query_name:
                return outcome
        known = ", ".join(o.spec_name for o in self.outcomes)
        raise KeyError(f"no campaign named {query_name!r} (have: {known})")


class TuningSession:
    """Execute declarative plans; the single front door to the pipeline.

    Construction is cheap — expensive artifacts (pre-trained models,
    histories) are resolved lazily per plan and memoised process-wide via
    :mod:`repro.experiments.context`, so interleaved runs of many plans
    share everything pure.  Pass ``pretrained=`` to inject an existing
    artifact (tests and notebooks), and ``manager=`` to share caches
    across a ``process`` backend's workers.
    """

    def __init__(self, *, pretrained=None, manager=None) -> None:
        self._pretrained_override = pretrained
        self._manager = manager

    # -- artifact resolution -------------------------------------------

    def _scale_for(self, plan):
        from repro.experiments.scale import resolve_scale

        return resolve_scale(plan.scale)

    def _pretrained_for(self, plan, scale):
        if self._pretrained_override is not None:
            return self._pretrained_override
        if plan.model is not None:
            from repro.core.persistence import load_pretrained

            return load_pretrained(plan.model)
        from repro.experiments.context import pretrained_model

        return pretrained_model(plan.engine, scale)

    def _resources_for(self, plan, scale) -> TunerResources:
        from repro.experiments.context import history

        return TunerResources(
            scale=scale,
            pretrained=lambda: self._pretrained_for(plan, scale),
            history=lambda limit: history(plan.engine, scale)[:limit],
        )

    # -- execution ------------------------------------------------------

    def run(self, plan) -> SessionResult:
        """Execute ``plan`` synchronously and return its results."""
        if isinstance(plan, TuningPlan):
            return self._run_tuning(plan)
        if isinstance(plan, CampaignPlan):
            return self._run_campaign(plan)
        raise PlanError(
            f"cannot run a {type(plan).__name__}; expected TuningPlan or "
            "CampaignPlan (build one, or load a plan file via load_plan)"
        )

    def _run_tuning(self, plan: TuningPlan) -> SessionResult:
        """The single-query lifecycle (identical to the legacy ``tune``)."""
        from repro.experiments.campaigns import run_campaign
        from repro.service.tuning import CampaignOutcome

        started = time.perf_counter()
        scale = self._scale_for(plan)
        engine = build_engine(plan.engine, seed=scale.seed)
        query = resolve_query(plan.query, plan.engine)
        params = {}
        caches = None
        if plan.tuner.lower().startswith("streamtune"):
            params = {"seed": plan.seed}
            if "-" not in plan.tuner:
                # A 'streamtune-<model>' spelling carries its own layer;
                # build_tuner turns the suffix into model_kind.
                params["model_kind"] = plan.layer
            if plan.cache_path is not None:
                caches = self._load_caches(plan.cache_path)
                params["caches"] = caches
        tuner = build_tuner(
            plan.tuner, engine, self._resources_for(plan, scale), **params
        )
        result = run_campaign(engine, tuner, query, list(plan.rates))
        if caches is not None:
            caches.save(plan.cache_path)
        wall = time.perf_counter() - started
        outcome = CampaignOutcome(
            spec_name=query.name, result=result, wall_seconds=wall, backend="inline"
        )
        return SessionResult(
            plan=plan, outcomes=[outcome], wall_seconds=wall, backend="inline",
            cache_stats=caches.stats() if caches is not None else {},
        )

    def _run_campaign(self, plan: CampaignPlan) -> SessionResult:
        """The fleet lifecycle (identical to legacy ``serve-campaigns``)."""
        from repro.service import CampaignSpec, TuningService

        started = time.perf_counter()
        scale = self._scale_for(plan)
        pretrained = self._pretrained_for(plan, scale)
        specs = [
            CampaignSpec(
                query=resolve_query(token, plan.engine),
                multipliers=rates,
                engine=plan.engine,
                engine_seed=plan.seed,
                seed=plan.seed,
                model_kind=plan.layer,
            )
            for token, rates in plan.rates_for()
        ]
        manager = self._manager
        own_manager = False
        if plan.backend == "process" and manager is None:
            import multiprocessing

            manager = multiprocessing.Manager()
            own_manager = True
        caches = (
            self._load_caches(plan.cache_path) if plan.cache_path is not None else None
        )
        try:
            service = TuningService(
                pretrained,
                backend=plan.backend,
                max_workers=plan.workers,
                prioritize_backpressure=plan.prioritize_backpressure,
                manager=manager,
                caches=caches,
            )
            outcomes = service.run(specs)
            if caches is not None:
                caches.save(plan.cache_path)
            stats = service.cache_stats()
        finally:
            if own_manager:
                manager.shutdown()
        return SessionResult(
            plan=plan,
            outcomes=outcomes,
            wall_seconds=time.perf_counter() - started,
            backend=plan.backend,
            cache_stats=stats,
        )

    @staticmethod
    def _load_caches(cache_path: str):
        from repro.service.cache import TuningCacheSet

        if Path(cache_path).exists():
            return TuningCacheSet.load(cache_path)
        return TuningCacheSet()


class AsyncTuningSession:
    """Awaitable facade over :class:`TuningSession`.

    ``await session.run(plan)`` executes the plan on a worker thread —
    the service's own pool (thread/process backend) keeps doing the heavy
    lifting, the event loop stays responsive, and results are the same
    objects the sync session returns.  ``run_all`` drives many plans
    concurrently with an ``asyncio.gather``.
    """

    def __init__(self, *, pretrained=None, manager=None) -> None:
        self._session = TuningSession(pretrained=pretrained, manager=manager)

    async def run(self, plan) -> SessionResult:
        return await asyncio.to_thread(self._session.run, plan)

    async def run_all(self, plans) -> list[SessionResult]:
        return list(await asyncio.gather(*(self.run(plan) for plan in plans)))
