"""Typed execution events and the bus that distributes them.

The execution layer is observable: a streaming run (``TuningSession.stream``
or ``TuningService.stream``) yields a sequence of frozen event records as
campaigns progress, instead of going dark until a barrier join.  Events are
plain data — every consumer sees the same stream, and recording a run is
just writing the events down:

* :class:`CampaignStarted` — a campaign began executing; followed by either
  its :class:`CampaignFinished` or its :class:`CampaignFailed`;
* :class:`StepCompleted` — one per tuning process (one source-rate change),
  with a per-campaign ``step_index`` that increases monotonically;
* :class:`ChaosInjected` — a scheduled chaos effect (operator loss or
  latency spike from the plan's :class:`~repro.scenarios.ChaosSpec`) was
  applied, emitted before the affected step's tuning process runs;
* :class:`Reconfigured` — one per stop-and-restart redeployment inside a
  step, emitted before its step's :class:`StepCompleted`;
* :class:`CampaignFinished` — a campaign's last tuning process finished
  (always follows its steps); carries the full campaign result, which
  :meth:`Event.to_dict` serialises so a recorded log can later be resumed;
* :class:`CampaignFailed` — a campaign's worker died (exception or killed
  process); carries the error type, message and traceback text;
* :class:`CampaignSkipped` — a resumed run found the campaign already
  completed in its resume log and replayed the recorded result instead of
  re-executing (followed by the replayed :class:`CampaignFinished`);
* :class:`CacheStats` — one per service run, after the last campaign;
* :class:`SweepFinished` — one per :class:`~repro.api.plans.SweepPlan`
  execution, after the last scenario;
* :class:`JobSubmitted` / :class:`JobStateChanged` — the daemon's job
  lifecycle (:mod:`repro.daemon`): a plan accepted by ``repro serve``
  and its transitions through ``queued``/``running``/``finished``/
  ``failed``.  They share the event round-trip contract, so the daemon's
  manifest is an event ledger like any ``--record`` log.

Every event carries a stream-wide monotonic ``seq`` (re-stamped at the
consumer, so merged shard/worker streams never interleave out of order),
the ``scenario`` label of the sweep grid cell that produced it (when any),
and — for campaign-scoped events — a deterministic ``cell_key`` derived
from the campaign's (query, engine, tuner, rate trace, seed) via
:func:`campaign_cell_key`.  The cell key is what checkpoint/resume matches
on: two runs of the same plan stamp identical keys.

:func:`event_from_dict` restores any event from its :meth:`Event.to_dict`
output — the round-trip contract ``--resume`` depends on.

:class:`EventBus` fans one stream out to many subscribers (progress
printer, JSONL recorder, metrics aggregator — or anything callable).  A
subscriber raising never breaks the run: the error is recorded on
``bus.errors`` and the remaining subscribers still see the event.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.plane import fire as _fault_fire, hard_exit, trip as _fault_trip

__all__ = [
    "CacheStats",
    "CampaignFailed",
    "CampaignFinished",
    "CampaignSkipped",
    "CampaignStarted",
    "ChaosInjected",
    "Event",
    "EventBus",
    "JobStateChanged",
    "JobSubmitted",
    "JsonlRecorder",
    "MetricsAggregator",
    "ProgressPrinter",
    "Reconfigured",
    "StepCompleted",
    "SweepFinished",
    "campaign_cell_key",
    "event_from_dict",
]


def campaign_cell_key(
    query: str,
    engine: str,
    tuner: str,
    rates,
    seed: int | None = None,
    *,
    layer: str | None = None,
    engine_seed: int | None = None,
    chaos: str | None = None,
) -> str:
    """The deterministic identity of one campaign across runs.

    Two executions of the same plan stamp the same key on the same
    campaign, so a recorded :class:`CampaignFinished` can stand in for a
    re-execution (``--resume``).  The key covers every result-affecting
    axis the execution layer knows: query, engine (and its seed), tuner
    (and its prediction ``layer``, when it uses one), rate trace
    (``repr``-exact floats, so distinct traces can never collide) and
    tuner seed.  What it cannot see — the pre-trained artifact behind a
    ``scale``/``model`` setting, or the code itself — is the operator's
    responsibility, exactly as when resuming across code versions.  The
    key is readable on purpose: it is what operators grep for in a JSONL
    log.

    ``chaos`` is the :meth:`~repro.scenarios.ChaosSpec.label` of the
    campaign's chaos schedule, when it has one.  Chaos-free campaigns —
    every campaign recorded before the chaos dimension existed — omit the
    token entirely, keeping their keys byte-identical across versions.
    """
    trace = "-".join(repr(float(rate)) for rate in rates)
    key = f"{engine}:{tuner}:{query}:x{trace}"
    if layer is not None:
        key += f":l{layer}"
    if seed is not None:
        key += f":s{seed}"
    if engine_seed is not None:
        key += f":e{engine_seed}"
    if chaos is not None:
        key += f":c{chaos}"
    return key


@dataclass(frozen=True)
class Event:
    """Base record: stream position plus the sweep cell that produced it."""

    #: Stream-wide monotonic sequence number, stamped by the consumer.
    seq: int = field(default=-1, kw_only=True)
    #: Grid-cell label when the event belongs to a sweep, else ``None``.
    scenario: str | None = field(default=None, kw_only=True)
    #: Deterministic campaign identity (:func:`campaign_cell_key`) on
    #: campaign-scoped events; ``None`` on stream-scoped ones.
    cell_key: str | None = field(default=None, kw_only=True)

    @property
    def kind(self) -> str:
        """The event's type name (``"CampaignStarted"``, ...)."""
        return type(self).__name__

    def to_dict(self) -> dict:
        """A JSON-serialisable view (non-serialisable fields omitted)."""
        data: dict = {"event": self.kind}
        for spec in dataclasses.fields(self):
            if not spec.metadata.get("serialise", True):
                continue
            data[spec.name] = getattr(self, spec.name)
        return data


@dataclass(frozen=True)
class CampaignStarted(Event):
    """A campaign's first tuning process is about to run."""

    campaign: str = ""
    index: int = 0                     # position in the submitted spec list
    engine: str = "flink"
    tuner: str = "streamtune"
    backend: str = "sequential"
    n_steps: int = 0                   # rate changes this campaign will tune
    shards: int = 1                    # trace shards the campaign is split into


@dataclass(frozen=True)
class StepCompleted(Event):
    """One tuning process (one source-rate change) finished."""

    campaign: str = ""
    step_index: int = 0                # 0-based position in the rate trace
    n_steps: int = 0
    multiplier: float = 0.0
    parallelisms: dict = field(default_factory=dict)   # final per-operator map
    reconfigurations: int = 0
    backpressure_events: int = 0
    converged: bool = False
    recommendation_seconds: float = 0.0

    @property
    def total_parallelism(self) -> int:
        return sum(self.parallelisms.values())


@dataclass(frozen=True)
class ChaosInjected(Event):
    """A scheduled chaos effect was applied before/at a trace step.

    Emitted by campaigns whose plan carries a
    :class:`~repro.scenarios.ChaosSpec`, right before the affected step's
    tuning process runs (and before that step's :class:`StepCompleted`).
    ``effect`` is ``"operator-loss"`` (``operator``/``count`` say what
    failed), ``"latency-spike"`` (``seconds`` says by how much the
    step's telemetry stretched) or ``"trace-dropout"`` (``factor`` says
    what fraction of the step's source rate survived the outage).
    """

    campaign: str = ""
    step_index: int = 0
    effect: str = ""
    operator: str = ""
    count: int = 0
    seconds: float = 0.0
    factor: float = 0.0


@dataclass(frozen=True)
class Reconfigured(Event):
    """The engine stop-and-restarted the job with a new parallelism map."""

    campaign: str = ""
    step_index: int = 0
    iteration: int = 0                 # tuner iteration within the step
    parallelisms: dict = field(default_factory=dict)
    backpressure_after: bool = False


@dataclass(frozen=True)
class CampaignFinished(Event):
    """A campaign's last tuning process finished (always follows its steps)."""

    campaign: str = ""
    index: int = 0
    backend: str = "sequential"
    n_steps: int = 0
    converged_steps: int = 0
    wall_seconds: float = 0.0
    #: The full :class:`~repro.service.CampaignOutcome`; carried for
    #: programmatic consumers, omitted from the field walk in ``to_dict``
    #: (serialised instead as the derived ``result`` payload below).
    outcome: object = field(default=None, repr=False, compare=False,
                            metadata={"serialise": False})

    def to_dict(self) -> dict:
        """The JSON view, including the campaign's full ``result``.

        The result payload (multipliers plus every tuning process's step
        records) is what lets a recorded log stand in for re-execution on
        ``--resume``: :func:`event_from_dict` rebuilds the outcome from it
        bit-identically.
        """
        data = super().to_dict()
        payload = _result_payload(self.outcome)
        if payload is not None:
            data["result"] = payload
        return data


@dataclass(frozen=True)
class CampaignFailed(Event):
    """A campaign's worker died; the fleet keeps running without it.

    Emitted instead of :class:`CampaignFinished` when a worker raises or
    its process is killed (OOM, signal).  ``traceback`` preserves the full
    text even across process boundaries, where exception objects may not
    unpickle.
    """

    campaign: str = ""
    index: int = 0
    backend: str = "sequential"
    error_type: str = ""
    error_message: str = ""
    traceback: str = ""


@dataclass(frozen=True)
class CampaignSkipped(Event):
    """A resumed run replayed this campaign from its resume log.

    Always followed by the replayed :class:`CampaignFinished` carrying the
    recorded result, so blocking wrappers see a complete fleet.
    """

    campaign: str = ""
    index: int = 0
    backend: str = "sequential"
    n_steps: int = 0
    #: Path of the resume log that supplied the recorded result.
    resumed_from: str = ""


@dataclass(frozen=True)
class CacheStats(Event):
    """Hit/miss counters of the run's shared cache sections."""

    stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SweepFinished(Event):
    """Every scenario of a sweep has run."""

    n_scenarios: int = 0
    n_campaigns: int = 0
    wall_seconds: float = 0.0


@dataclass(frozen=True)
class JobSubmitted(Event):
    """The daemon accepted a plan submission (:mod:`repro.daemon`).

    Carries everything needed to reconstruct the job after a restart:
    the full plan payload, its tenant/priority, and the ledger file its
    execution events are recorded to.
    """

    job: str = ""
    tenant: str = "default"
    priority: int = 0
    plan_kind: str = ""
    n_cells: int = 0                    # campaigns the plan will execute
    ledger: str = ""                    # ledger filename, relative to the store
    plan: dict = field(default_factory=dict)
    submitted_at: float = 0.0           # unix time, operator-facing only


@dataclass(frozen=True)
class JobStateChanged(Event):
    """A daemon job moved through its lifecycle.

    ``state`` is one of :data:`repro.daemon.jobs.JOB_STATES`
    (``queued``/``running``/``finished``/``failed``); ``error`` carries
    the failure text on ``failed`` transitions.
    """

    job: str = ""
    state: str = ""
    error: str = ""
    at: float = 0.0                     # unix time, operator-facing only


# ----------------------------------------------------------------------
# JSON round-trip: to_dict() output -> an equal event
# ----------------------------------------------------------------------

def _result_payload(outcome) -> dict | None:
    """Serialise a ``CampaignOutcome``'s result as plain JSON data."""
    result = getattr(outcome, "result", None)
    if result is None:
        return None
    return {
        "query_name": result.query_name,
        "method": result.method,
        "multipliers": list(result.multipliers),
        "processes": [
            {
                "query_name": process.query_name,
                "tuner_name": process.tuner_name,
                "converged": process.converged,
                "steps": [dataclasses.asdict(step) for step in process.steps],
            }
            for process in result.processes
        ],
    }


def _outcome_from_payload(payload: dict, campaign: str, backend: str,
                          wall_seconds: float):
    """Rebuild a ``CampaignOutcome`` from :func:`_result_payload` output.

    Floats survive JSON exactly (``repr`` round-trip), so the rebuilt
    result is bit-identical to the recorded one — the property resume
    rests on.  Imports are lazy: the event layer stays import-light and
    cycle-free with the service layer that imports it.
    """
    from repro.baselines.api import TuningResult, TuningStep
    from repro.experiments.campaigns import CampaignResult
    from repro.service.tuning import CampaignOutcome

    result = CampaignResult(
        query_name=payload["query_name"], method=payload["method"]
    )
    result.multipliers = list(payload["multipliers"])
    for process in payload["processes"]:
        result.processes.append(
            TuningResult(
                query_name=process["query_name"],
                tuner_name=process["tuner_name"],
                converged=process["converged"],
                steps=[TuningStep(**step) for step in process["steps"]],
            )
        )
    return CampaignOutcome(
        spec_name=campaign,
        result=result,
        wall_seconds=wall_seconds,
        backend=backend,
    )


#: Every concrete event class, keyed by its ``kind`` — the dispatch table
#: of :func:`event_from_dict`.
EVENT_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        CampaignStarted,
        StepCompleted,
        ChaosInjected,
        Reconfigured,
        CampaignFinished,
        CampaignFailed,
        CampaignSkipped,
        CacheStats,
        SweepFinished,
        JobSubmitted,
        JobStateChanged,
    )
}


def event_from_dict(data: dict) -> Event:
    """Restore an event from its :meth:`Event.to_dict` output.

    The inverse of recording: for every event class,
    ``event_from_dict(event.to_dict()) == event`` (the ``outcome`` object
    is excluded from equality but is itself rebuilt from the ``result``
    payload when one was recorded).  Raises ``ValueError`` for missing or
    unknown kinds — a resume log with foreign lines should fail loudly.
    """
    if not isinstance(data, dict):
        raise ValueError(f"an event record must be a mapping, got {type(data).__name__}")
    kind = data.get("event")
    if kind is None:
        raise ValueError("event record has no 'event' kind field")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown event kind {kind!r} (expected one of "
            f"{', '.join(sorted(EVENT_TYPES))})"
        )
    known = {
        spec.name
        for spec in dataclasses.fields(cls)
        if spec.metadata.get("serialise", True)
    }
    kwargs = {key: value for key, value in data.items() if key in known}
    if cls is CampaignFinished and isinstance(data.get("result"), dict):
        kwargs["outcome"] = _outcome_from_payload(
            data["result"],
            campaign=kwargs.get("campaign", ""),
            backend=kwargs.get("backend", "sequential"),
            wall_seconds=kwargs.get("wall_seconds", 0.0),
        )
    return cls(**kwargs)


class EventBus:
    """Fan one event stream out to pluggable subscribers.

    Subscribers are callables taking one event.  ``publish`` never raises
    on a subscriber's behalf: failures are appended to :attr:`errors` as
    ``(subscriber, event, exception)`` so a broken progress printer cannot
    kill a half-finished fleet.
    """

    def __init__(self, *subscribers) -> None:
        self._subscribers: list = list(subscribers)
        self.errors: list[tuple] = []

    def subscribe(self, subscriber):
        """Register ``subscriber`` and return it (usable as a decorator)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber) -> None:
        self._subscribers.remove(subscriber)

    def publish(self, event: Event) -> None:
        for subscriber in list(self._subscribers):
            try:
                subscriber(event)
            except Exception as error:  # noqa: BLE001 — isolation by design
                self.errors.append((subscriber, event, error))

    def __len__(self) -> int:
        return len(self._subscribers)


# ----------------------------------------------------------------------
# built-in subscribers
# ----------------------------------------------------------------------

class ProgressPrinter:
    """One human-readable line per event (``--follow`` in the CLI).

    ``verbose=False`` (default) skips per-reconfiguration lines, which
    dominate the stream but rarely matter when following a fleet.
    """

    def __init__(self, stream=None, verbose: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose

    def _write(self, line: str, scenario: str | None) -> None:
        prefix = f"[{scenario}] " if scenario else ""
        print(f"{prefix}{line}", file=self.stream, flush=True)

    def __call__(self, event: Event) -> None:
        if isinstance(event, CampaignStarted):
            self._write(
                f"> {event.campaign}: {event.n_steps} rate change(s) via "
                f"{event.tuner}@{event.engine} ({event.backend}"
                + (f", {event.shards} shards)" if event.shards > 1 else ")"),
                event.scenario,
            )
        elif isinstance(event, StepCompleted):
            note = "" if event.converged else ", not converged"
            self._write(
                f"  . {event.campaign} step {event.step_index + 1}/"
                f"{event.n_steps}: rate x{event.multiplier:g} -> "
                f"parallelism {event.total_parallelism} "
                f"({event.reconfigurations} reconfig(s){note})",
                event.scenario,
            )
        elif isinstance(event, ChaosInjected):
            if event.effect == "operator-loss":
                detail = f"lost {event.count} instance(s) of {event.operator}"
            else:
                detail = f"telemetry +{event.seconds:g}s"
            self._write(
                f"  ! {event.campaign} step {event.step_index + 1}: chaos "
                f"{event.effect} ({detail})",
                event.scenario,
            )
        elif isinstance(event, Reconfigured):
            if self.verbose:
                self._write(
                    f"    ~ {event.campaign} step {event.step_index + 1} "
                    f"iteration {event.iteration}: redeployed "
                    f"{sum(event.parallelisms.values())} tasks",
                    event.scenario,
                )
        elif isinstance(event, CampaignFinished):
            self._write(
                f"< {event.campaign} done: {event.converged_steps}/"
                f"{event.n_steps} converged in {event.wall_seconds:.2f}s",
                event.scenario,
            )
        elif isinstance(event, CampaignFailed):
            self._write(
                f"x {event.campaign} FAILED: {event.error_type}: "
                f"{event.error_message}",
                event.scenario,
            )
        elif isinstance(event, CampaignSkipped):
            self._write(
                f"= {event.campaign} skipped: {event.n_steps} recorded "
                f"step(s) replayed from {event.resumed_from or 'resume log'}",
                event.scenario,
            )
        elif isinstance(event, CacheStats):
            summary = ", ".join(
                f"{kind}: {values.get('hits', 0)}h/{values.get('misses', 0)}m"
                for kind, values in event.stats.items()
            )
            self._write(f"caches: {summary or 'none'}", event.scenario)
        elif isinstance(event, SweepFinished):
            self._write(
                f"sweep done: {event.n_scenarios} scenario(s), "
                f"{event.n_campaigns} campaign(s) in {event.wall_seconds:.2f}s",
                event.scenario,
            )


class JsonlRecorder:
    """Write every event to ``path`` as one JSON object per line.

    The file opens lazily on the first event (truncating any previous
    log — one recorder, one run) and flushes per line, so a crash
    mid-run leaves a readable prefix.  ``fsync=True`` additionally
    fsyncs per line: the interpreter flush only hands the line to the
    OS page cache, which a SIGKILL survives but a power loss (or an
    eager container teardown) does not — a daemon whose ledger *is* the
    recovery source pays the sync so every recorded event is durable the
    moment a client can observe it.  Usable as a context manager;
    otherwise call :meth:`close` (or let the interpreter do it).
    """

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = None
        self.n_events = 0

    def __call__(self, event: Event) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
        line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
        torn = _fault_trip("ledger.write.torn-tail")
        if torn is not None:
            # Cooperative torn-tail injection: persist only a prefix of
            # the line, then die mid-write — the exact artifact a crash
            # during write() leaves, which every ledger reader (resume,
            # coordinator merge) must tolerate.
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            hard_exit(torn.exit_code)
        self._handle.write(line)
        self._handle.flush()
        if self.fsync:
            import os

            _fault_fire("ledger.fsync.crash-before")
            os.fsync(self._handle.fileno())
        self.n_events += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        self.close()


class MetricsAggregator:
    """Reduce a stream into per-campaign and stream-wide counters."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.steps: dict[str, int] = {}
        self.reconfigurations: dict[str, int] = {}
        self.wall_seconds: dict[str, float] = {}
        self.cache_stats: dict = {}
        #: ``cell_key`` (falling back to the campaign label) of every
        #: :class:`CampaignFailed` seen, in stream order — the exact set an
        #: operator needs to retry via ``--resume``.
        self.failed_cell_keys: list[str] = []

    def __call__(self, event: Event) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        if isinstance(event, StepCompleted):
            key = self._key(event)
            self.steps[key] = self.steps.get(key, 0) + 1
            self.reconfigurations[key] = (
                self.reconfigurations.get(key, 0) + event.reconfigurations
            )
        elif isinstance(event, CampaignFinished):
            self.wall_seconds[self._key(event)] = event.wall_seconds
        elif isinstance(event, CampaignFailed):
            self.failed_cell_keys.append(event.cell_key or self._key(event))
        elif isinstance(event, CacheStats):
            self.cache_stats = dict(event.stats)

    @staticmethod
    def _key(event) -> str:
        if event.scenario:
            return f"{event.scenario}/{event.campaign}"
        return event.campaign

    @property
    def n_events(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> dict:
        return {
            "events": dict(self.counts),
            "campaigns": len(self.wall_seconds),
            "steps": sum(self.steps.values()),
            "reconfigurations": sum(self.reconfigurations.values()),
            "wall_seconds": dict(self.wall_seconds),
            "failed_campaigns": len(self.failed_cell_keys),
            "failed_cell_keys": list(self.failed_cell_keys),
        }
