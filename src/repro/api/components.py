"""Built-in component registrations for the four registries.

Everything the repo can construct by name lives here: the simulated
engine clusters, the tuning methods (StreamTune plus every baseline),
the workload families, and the monotone prediction-layer models.  Each
entry declares its parameter surface as :class:`~repro.api.registry.ParamSpec`
rows, so a plan file (or a CLI flag) is validated before anything is
built and an unknown name fails with the full list of alternatives.

Tuner factories receive ``(engine, resources, **params)``:``resources``
is a :class:`TunerResources` that lazily supplies the shared artifacts a
method may need — the pre-trained StreamTune model, slices of the
execution history, and the experiment scale whose seed conventions the
legacy ``make_tuner`` ladder encoded.  Methods that need none of it
(DS2, ContTune, Oracle) simply ignore the argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.api.registry import ENGINES, MODELS, TUNERS, WORKLOADS, ParamSpec, REQUIRED
from repro.baselines.conttune import ContTuneTuner
from repro.baselines.ds2 import DS2Tuner
from repro.baselines.oracle import OracleTuner
from repro.baselines.zerotune import ZeroTuneTuner
from repro.core.tuner import StreamTuneTuner
from repro.engines.faults import FaultInjectingFlink
from repro.engines.flink import FlinkCluster
from repro.engines.paced import DEFAULT_TELEMETRY_SECONDS, PacedFlink
from repro.engines.scheduler import SchedulingAwareTimely
from repro.engines.timely import TimelyCluster
from repro.workloads.nexmark import NEXMARK_QUERY_NAMES, nexmark_query
from repro.workloads.pqp import PQP_TEMPLATES, pqp_queries


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------

_SEED = ParamSpec("seed", int, None, help="engine RNG seed (None = unseeded)")
_NOISE = ParamSpec("noise_std", float, None, help="measurement noise std fraction")


def _flink_kwargs(seed, task_managers, slots_per_task_manager, noise_std) -> dict:
    kwargs = {"seed": seed}
    if task_managers is not None:
        kwargs["task_managers"] = task_managers
    if slots_per_task_manager is not None:
        kwargs["slots_per_task_manager"] = slots_per_task_manager
    if noise_std is not None:
        kwargs["noise_std"] = noise_std
    return kwargs


@ENGINES.register(
    "flink",
    params=(
        _SEED,
        ParamSpec("task_managers", int, None, help="TaskManagers in the cluster"),
        ParamSpec("slots_per_task_manager", int, None, help="slots per TaskManager"),
        _NOISE,
    ),
)
def _build_flink(
    seed=None, task_managers=None, slots_per_task_manager=None, noise_std=None
):
    """Simulated Apache Flink cluster (50 TaskManagers x 2 slots)."""
    return FlinkCluster(**_flink_kwargs(seed, task_managers, slots_per_task_manager, noise_std))


@ENGINES.register(
    "flink-faulty",
    aliases=("faulty-flink",),
    family="flink",
    traits=("faults",),
    params=(
        _SEED,
        ParamSpec("task_managers", int, None),
        ParamSpec("slots_per_task_manager", int, None),
        _NOISE,
    ),
)
def _build_faulty_flink(
    seed=None, task_managers=None, slots_per_task_manager=None, noise_std=None
):
    """Flink cluster whose operator instances can be failed and healed."""
    return FaultInjectingFlink(
        **_flink_kwargs(seed, task_managers, slots_per_task_manager, noise_std)
    )


@ENGINES.register(
    "flink-paced",
    aliases=("paced-flink",),
    family="flink",
    traits=("paced",),
    params=(
        _SEED,
        ParamSpec("task_managers", int, None),
        ParamSpec("slots_per_task_manager", int, None),
        _NOISE,
        ParamSpec(
            "telemetry_seconds",
            float,
            DEFAULT_TELEMETRY_SECONDS,
            help="wall-clock metric-window latency per measurement",
        ),
    ),
)
def _build_paced_flink(
    seed=None,
    task_managers=None,
    slots_per_task_manager=None,
    noise_std=None,
    telemetry_seconds=DEFAULT_TELEMETRY_SECONDS,
):
    """Flink whose telemetry costs wall-clock time (bit-identical results)."""
    return PacedFlink(
        telemetry_seconds=telemetry_seconds,
        **_flink_kwargs(seed, task_managers, slots_per_task_manager, noise_std),
    )


def _timely_kwargs(seed, workers, max_parallelism, noise_std) -> dict:
    kwargs = {"seed": seed}
    if workers is not None:
        kwargs["workers"] = workers
    if max_parallelism is not None:
        kwargs["max_parallelism"] = max_parallelism
    if noise_std is not None:
        kwargs["noise_std"] = noise_std
    return kwargs


@ENGINES.register(
    "timely",
    params=(
        _SEED,
        ParamSpec("workers", int, None, help="Timely worker threads"),
        ParamSpec("max_parallelism", int, None, help="per-operator degree ceiling"),
        _NOISE,
    ),
)
def _build_timely(seed=None, workers=None, max_parallelism=None, noise_std=None):
    """Simulated Timely Dataflow deployment (ten workers)."""
    return TimelyCluster(**_timely_kwargs(seed, workers, max_parallelism, noise_std))


@ENGINES.register(
    "timely-scheduled",
    aliases=("scheduling-timely",),
    family="timely",
    params=(
        _SEED,
        ParamSpec("workers", int, None),
        ParamSpec("max_parallelism", int, None),
        _NOISE,
        ParamSpec(
            "strategy",
            str,
            "spread",
            help="task placement strategy",
            choices=("spread", "pack"),
        ),
    ),
)
def _build_timely_scheduled(
    seed=None, workers=None, max_parallelism=None, noise_std=None, strategy="spread"
):
    """Timely cluster whose processing ability reflects task placement."""
    return SchedulingAwareTimely(
        strategy=strategy, **_timely_kwargs(seed, workers, max_parallelism, noise_std)
    )


def build_engine(name: str, **params):
    """Resolve + construct an engine cluster by registry name."""
    return ENGINES.create(name, **params)


def engine_family(name: str) -> str:
    """The workload family of an engine name (aliases resolved).

    Each engine variant declares the base engine whose Table II rate
    units, query corpus and pretrained artifacts it serves via its
    registry entry's ``family`` attribute — a new variant registered
    with ``family="flink"`` is covered with no map to update.  Engines
    that declare no family (third-party or base engines) are their own.
    """
    entry = ENGINES.entry(name)
    return entry.family or entry.name


#: Engine registry name -> workload family, derived from the registry
#: entries (kept as a mapping for back-compat; :func:`engine_family` is
#: the lookup to use).
ENGINE_FAMILIES = {name: engine_family(name) for name in ENGINES.names()}


# ----------------------------------------------------------------------
# tuners
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TunerResources:
    """Lazy artifact access handed to tuner factories.

    ``pretrained`` returns the shared :class:`PretrainedStreamTune`
    artifact; ``history`` returns the first ``n`` execution records;
    ``scale`` carries the experiment preset whose seed offsets the
    legacy construction ladder hard-coded (StreamTune ``scale.seed + 4``,
    ZeroTune ``scale.seed + 3``).  Factories pull only what they need, so
    building a DS2 baseline never triggers a pre-training run.
    """

    scale: object = None
    pretrained: Callable[[], object] | None = None
    history: Callable[[int], list] | None = None

    def require_pretrained(self, method: str):
        if self.pretrained is None:
            raise ValueError(
                f"tuner {method!r} needs a pre-trained StreamTune artifact, but "
                "these resources supply none (pass `pretrained=` or a model path)"
            )
        return self.pretrained()

    def require_history(self, method: str, limit: int) -> list:
        if self.history is None:
            raise ValueError(
                f"tuner {method!r} needs an execution history, but these "
                "resources supply none"
            )
        return self.history(limit)

    def _scale_attr(self, attribute: str, fallback):
        if self.scale is None:
            return fallback
        return getattr(self.scale, attribute)


@TUNERS.register(
    "streamtune",
    params=(
        ParamSpec("model_kind", str, "svm", help="prediction-layer model name"),
        ParamSpec("seed", int, None, help="tuner seed (None = scale.seed + 4)"),
        ParamSpec("max_iterations", int, None),
        ParamSpec("warmup_rows", int, None),
    ),
    allow_extra=True,
)
def _build_streamtune(
    engine, resources: TunerResources, model_kind="svm", seed=None,
    max_iterations=None, warmup_rows=None, **overrides
):
    """The paper's system: pre-trained encoder + monotone fine-tuned layer."""
    MODELS.entry(model_kind)  # fail fast with the model alternatives listed
    kwargs = dict(overrides)
    if max_iterations is not None:
        kwargs["max_iterations"] = max_iterations
    if warmup_rows is not None:
        kwargs["warmup_rows"] = warmup_rows
    if seed is None:
        seed = resources._scale_attr("seed", 20250711) + 4
    return StreamTuneTuner(
        engine,
        resources.require_pretrained("streamtune"),
        model_kind=model_kind,
        seed=seed,
        **kwargs,
    )


@TUNERS.register(
    "ds2", params=(ParamSpec("max_iterations", int, None),)
)
def _build_ds2(engine, resources=None, max_iterations=None):
    """DS2 rate-based scaling controller (OSDI'18 baseline)."""
    del resources
    if max_iterations is None:
        return DS2Tuner(engine)
    return DS2Tuner(engine, max_iterations=max_iterations)


@TUNERS.register(
    "conttune",
    params=(
        ParamSpec("alpha", float, None, help="GP exploration padding"),
        ParamSpec("max_iterations", int, None),
    ),
)
def _build_conttune(engine, resources=None, alpha=None, max_iterations=None):
    """ContTune Big-Small GP tuner (VLDB'23 baseline)."""
    del resources
    kwargs = {}
    if alpha is not None:
        kwargs["alpha"] = alpha
    if max_iterations is not None:
        kwargs["max_iterations"] = max_iterations
    return ContTuneTuner(engine, **kwargs)


@TUNERS.register("oracle")
def _build_oracle(engine, resources=None):
    """Ground-truth optimal parallelism (upper bound, sees the simulator)."""
    del resources
    return OracleTuner(engine)


@TUNERS.register(
    "zerotune",
    needs_history=True,
    params=(
        ParamSpec("epochs", int, None, help="cost-model epochs (None = scale preset)"),
        ParamSpec("n_history", int, None, help="history records (None = scale preset)"),
        ParamSpec("seed", int, None, help="tuner seed (None = scale.seed + 3)"),
    ),
)
def _build_zerotune(engine, resources: TunerResources, epochs=None, n_history=None, seed=None):
    """ZeroTune zero-shot cost model (ICDE'24 baseline)."""
    if epochs is None:
        epochs = resources._scale_attr("zerotune_epochs", 8)
    if n_history is None:
        n_history = resources._scale_attr("zerotune_history", 1200)
    if seed is None:
        seed = resources._scale_attr("seed", 20250711) + 3
    records = resources.require_history("zerotune", n_history)
    return ZeroTuneTuner(engine, records, epochs=epochs, seed=seed)


def streamtune_variant(method: str) -> "tuple[bool, str | None]":
    """Parse a tuner name's StreamTune spelling, case-insensitively.

    The single source of truth for the naming convention: returns
    ``(True, None)`` for the plain name, ``(True, '<model>')`` for the
    legacy ``streamtune-<model>`` ablation spelling (suffix
    lower-cased), and ``(False, None)`` for every other method — including
    names that merely *start* with "streamtune" ("streamtune2" is not a
    StreamTune variant).
    """
    base, _, suffix = method.partition("-")
    if base.lower() != "streamtune":
        return False, None
    return True, (suffix.lower() or None)


def build_tuner(method: str, engine, resources: TunerResources | None = None, **params):
    """Resolve + construct a tuning method bound to ``engine``.

    ``method`` accepts the legacy ``StreamTune-<model>`` spelling for the
    Fig. 11a prediction-layer ablation; the suffix becomes the
    ``model_kind`` parameter.
    """
    key = method.lower()
    is_streamtune, model_suffix = streamtune_variant(method)
    if is_streamtune and model_suffix is not None:
        params.setdefault("model_kind", model_suffix)
        key = "streamtune"
    return TUNERS.create(key, engine, resources or TunerResources(), **params)


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------

@WORKLOADS.register(
    "nexmark",
    params=(
        ParamSpec("name", str, REQUIRED, help="query name, q1..q8", choices=NEXMARK_QUERY_NAMES),
        ParamSpec("engine", str, "flink", help="engine whose rate units to bind"),
    ),
)
def _build_nexmark(name, engine="flink"):
    """Nexmark benchmark queries bound to Table II rate units."""
    return nexmark_query(name, engine)


@WORKLOADS.register(
    "pqp",
    params=(
        ParamSpec("template", str, REQUIRED, help="PQP template", choices=PQP_TEMPLATES),
        ParamSpec("index", int, 0, help="query index within the template"),
    ),
)
def _build_pqp(template, index=0):
    """ZeroTune's parallel-query-plan synthetic workload (Flink only)."""
    queries = pqp_queries(template)
    if not 0 <= index < len(queries):
        raise ValueError(
            f"workload 'pqp': template {template!r} has {len(queries)} queries, "
            f"index {index} is out of range"
        )
    return queries[index]


def resolve_query(token: str, engine: str = "flink"):
    """Resolve a CLI/plan query token into a :class:`StreamingQuery`.

    Two spellings, matching the original CLI: a Nexmark name (``q5``) or
    a PQP ``<template>/<index>`` pair (``2-way-join/3``).  Unknown names
    raise :class:`~repro.api.registry.UnknownComponentError` listing the
    alternatives.
    """
    token = token.strip()
    if "/" in token:
        template, _, index = token.rpartition("/")
        try:
            index_value = int(index)
        except ValueError:
            raise ValueError(
                f"malformed PQP query token {token!r}: expected '<template>/<index>' "
                f"with an integer index (templates: {', '.join(PQP_TEMPLATES)})"
            ) from None
        return WORKLOADS.create("pqp", template=template, index=index_value)
    return WORKLOADS.create("nexmark", name=token.lower(), engine=engine_family(engine))


# ----------------------------------------------------------------------
# prediction models (the monotone fine-tuning layer M_f)
# ----------------------------------------------------------------------

_MODEL_SEED = ParamSpec("seed", int, 11, help="model RNG seed")


@MODELS.register("svm", params=(_MODEL_SEED,))
def _build_svm(seed=11):
    """Monotonic SVM over random Fourier features (the paper's M_f)."""
    from repro.models.svm import MonotonicSVM

    return MonotonicSVM(seed=seed)


@MODELS.register("xgboost", aliases=("gbdt",), params=(_MODEL_SEED,))
def _build_gbdt(seed=11):
    """Gradient-boosted trees with a monotone constraint on p."""
    from repro.models.gbdt import MonotonicGBDT

    return MonotonicGBDT(seed=seed)


@MODELS.register("isotonic", aliases=("knn",), params=(_MODEL_SEED,))
def _build_isotonic(seed=11):
    """k-NN probabilities made monotone by isotonic regression."""
    from repro.models.isotonic import IsotonicKNN

    return IsotonicKNN(seed=seed)


@MODELS.register("nn", aliases=("mlp",), params=(_MODEL_SEED,))
def _build_mlp(seed=11):
    """Plain MLP without the monotone constraint (Fig. 11a ablation)."""
    from repro.models.mlp import MLPClassifier

    return MLPClassifier(seed=seed)


def build_prediction_model(kind: str, seed: int = 11):
    """Resolve + construct a fine-tuning prediction layer by name."""
    return MODELS.create(kind, seed=seed)
