"""``repro.api`` — the declarative front door to the StreamTune pipeline.

Everything the repo can do is reachable through three layers:

* **registries** (:mod:`repro.api.registry`, populated by
  :mod:`repro.api.components`) — engines, tuners, workloads and
  prediction models self-register by name with typed parameter specs;
  adding a scenario component means one ``@REGISTRY.register`` block,
  not edits to the CLI, the experiments and the service.
* **plans** (:mod:`repro.api.plans`) — :class:`TuningPlan` (one query)
  and :class:`CampaignPlan` (a fleet), frozen dataclasses that
  round-trip through dicts, JSON and TOML and validate eagerly with
  actionable errors.
* **sessions** (:mod:`repro.api.session`) — :class:`TuningSession`
  executes a plan over the existing engines/tuners/service,
  bit-identically to the legacy entry points; :class:`AsyncTuningSession`
  is the awaitable facade over the same machinery.

Quick start::

    from repro.api import CampaignPlan, TuningSession

    plan = CampaignPlan(queries=("q1", "q5"), rates=(3, 7, 4, 2),
                        backend="thread", scale="smoke")
    result = TuningSession().run(plan)
    for outcome in result.outcomes:
        print(outcome.spec_name, outcome.result.average_reconfigurations)

or, from a config file (JSON or TOML)::

    from repro.api import TuningSession, load_plan

    result = TuningSession().run(load_plan("campaign.toml"))
"""

from repro.api.registry import (
    ENGINES,
    MODELS,
    TUNERS,
    WORKLOADS,
    ComponentEntry,
    ParamSpec,
    REQUIRED,
    Registry,
    RegistryError,
    UnknownComponentError,
)
from repro.api.components import (  # importing populates the registries
    TunerResources,
    build_engine,
    build_prediction_model,
    build_tuner,
    engine_family,
    resolve_query,
)
from repro.api.events import (
    CacheStats,
    CampaignFailed,
    CampaignFinished,
    CampaignSkipped,
    CampaignStarted,
    ChaosInjected,
    Event,
    EventBus,
    JobStateChanged,
    JobSubmitted,
    JsonlRecorder,
    MetricsAggregator,
    ProgressPrinter,
    Reconfigured,
    StepCompleted,
    SweepFinished,
    campaign_cell_key,
    event_from_dict,
)
from repro.api.resume import (
    ResumeError,
    ResumeLog,
    discover_latest_log,
    load_events,
)
from repro.api.plans import (
    CampaignPlan,
    PlanError,
    SweepPlan,
    TuningPlan,
    load_plan,
    plan_from_dict,
    replace,
    save_plan,
)
from repro.api.session import (
    AsyncTuningSession,
    SessionResult,
    SweepResult,
    TuningSession,
)

#: Scenario-plane names resolved lazily (PEP 562): the scenarios package
#: imports the registry machinery above, so an eager import here would
#: be a cycle hazard — and most API users never touch chaos specs.
_SCENARIO_EXPORTS = {
    "ChaosSpec": "repro.scenarios.chaos",
    "LatencySpike": "repro.scenarios.chaos",
    "OperatorLoss": "repro.scenarios.chaos",
    "ScenarioError": "repro.scenarios.library",
    "TRACES": "repro.scenarios.library",
    "TraceSpec": "repro.scenarios.library",
}


def __getattr__(name: str):
    module = _SCENARIO_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "AsyncTuningSession",
    "CacheStats",
    "CampaignFailed",
    "CampaignFinished",
    "CampaignPlan",
    "CampaignSkipped",
    "CampaignStarted",
    "ChaosInjected",
    "ChaosSpec",
    "ComponentEntry",
    "ENGINES",
    "Event",
    "EventBus",
    "JobStateChanged",
    "JobSubmitted",
    "JsonlRecorder",
    "LatencySpike",
    "MODELS",
    "MetricsAggregator",
    "OperatorLoss",
    "ParamSpec",
    "PlanError",
    "ProgressPrinter",
    "REQUIRED",
    "Reconfigured",
    "Registry",
    "RegistryError",
    "ResumeError",
    "ResumeLog",
    "ScenarioError",
    "SessionResult",
    "StepCompleted",
    "SweepFinished",
    "SweepPlan",
    "SweepResult",
    "TRACES",
    "TUNERS",
    "TraceSpec",
    "TunerResources",
    "TuningPlan",
    "TuningSession",
    "UnknownComponentError",
    "WORKLOADS",
    "build_engine",
    "build_prediction_model",
    "build_tuner",
    "campaign_cell_key",
    "discover_latest_log",
    "engine_family",
    "event_from_dict",
    "load_events",
    "load_plan",
    "plan_from_dict",
    "replace",
    "resolve_query",
    "save_plan",
]
