"""Named component registries with typed parameter specs.

The repo grew four parallel construction idioms — ``make_engine`` /
``make_tuner`` ladders in :mod:`repro.experiments.context`, the
``make_prediction_model`` factory, ``CampaignSpec.make_engine`` and the
CLI's hand-rolled query resolution.  Registries collapse all of them into
one pattern (PDSP-Bench exposes workloads/engines the same way): a
component self-registers under a name (plus aliases) together with a
typed :class:`ParamSpec` list, and every consumer resolves it through
:meth:`Registry.create`, which validates arguments *before* construction
and turns an unknown name into an error that lists the alternatives.

Built-in components are registered by :mod:`repro.api.components`, which
``repro.api`` imports eagerly — ``from repro.api import ENGINES`` always
sees a populated registry.  Third parties extend the system the same way::

    from repro.api import ENGINES, ParamSpec

    @ENGINES.register("myengine", params=(ParamSpec("seed", int, None),))
    def _build(seed=None):
        return MyEngineCluster(seed=seed)
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable

#: Sentinel for "parameter has no default" (``None`` is a valid default).
REQUIRED = object()


class RegistryError(ValueError):
    """A component was invoked with invalid parameters."""


class UnknownComponentError(KeyError, ValueError):
    """A name did not resolve in a registry.

    Subclasses both :class:`KeyError` and :class:`ValueError` so legacy
    call sites (and their tests) that caught either exception from the
    old if/else ladders keep working, but the message is actionable: it
    names the registry, suggests the closest match, and lists every
    alternative.
    """

    def __init__(self, kind: str, name: str, known: tuple[str, ...]) -> None:
        suggestions = difflib.get_close_matches(name, known, n=1)
        hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
        message = (
            f"unknown {kind} {name!r}{hint} "
            f"(available: {', '.join(known) if known else 'none registered'})"
        )
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.known = known
        self.message = message

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.message


@dataclass(frozen=True)
class ParamSpec:
    """One typed, documented parameter of a registered component."""

    name: str
    annotation: type
    default: Any = REQUIRED
    help: str = ""
    choices: tuple = ()

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def validate(self, value, kind: str, component: str):
        """Coerce ``value`` to the spec; raise an actionable error if unfit."""
        if value is None and not self.required:
            # None is always accepted for optional parameters (meaning
            # "use the component's internal default").
            return value
        if self.annotation is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if self.annotation is not Any and not isinstance(value, self.annotation):
            raise RegistryError(
                f"{kind} {component!r}: parameter {self.name!r} expects "
                f"{self.annotation.__name__}, got {type(value).__name__} ({value!r})"
            )
        if self.choices and value not in self.choices:
            # An out-of-choices value is an unknown *name*, not a type
            # error — raise the lookup error so callers get the same
            # did-you-mean treatment as a registry miss.
            raise UnknownComponentError(
                f"{kind} {component!r} {self.name}", str(value), tuple(map(str, self.choices))
            )
        return value


@dataclass(frozen=True)
class ComponentEntry:
    """A registered factory plus its metadata."""

    name: str
    factory: Callable
    params: tuple[ParamSpec, ...] = ()
    aliases: tuple[str, ...] = ()
    summary: str = ""
    #: Extra keyword arguments beyond ``params`` are forwarded verbatim
    #: when True (used by components that proxy ``**overrides`` through).
    allow_extra: bool = False
    #: True for tuners whose factory pulls an execution history from its
    #: resources; such methods cannot run as service campaigns (plan
    #: validation consults this flag instead of hardcoding names).
    needs_history: bool = False
    #: Base family this component is a variant of ("" means it is its own
    #: family).  Engine variants declare the engine whose rate units,
    #: corpora and pretrained artifacts they share, so lookups never need
    #: a hand-maintained fallback map.
    family: str = ""
    #: Capability tags ("faults", "paced", ...) consumed by plan
    #: validation — e.g. a chaos schedule checks the engine it targets
    #: actually supports the scheduled effects.
    traits: tuple[str, ...] = ()

    def param(self, name: str) -> ParamSpec | None:
        for spec in self.params:
            if spec.name == name:
                return spec
        return None


class Registry:
    """A name -> factory table with typed construction."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, ComponentEntry] = {}
        self._aliases: dict[str, str] = {}

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        *,
        params: tuple[ParamSpec, ...] = (),
        aliases: tuple[str, ...] = (),
        summary: str = "",
        allow_extra: bool = False,
        needs_history: bool = False,
        family: str = "",
        traits: tuple[str, ...] = (),
    ):
        """Decorator: register ``factory`` under ``name`` (+ ``aliases``)."""

        def decorate(factory: Callable) -> Callable:
            if name in self._entries or name in self._aliases:
                raise RegistryError(f"{self.kind} {name!r} is already registered")
            doc = summary
            if not doc and factory.__doc__:
                doc = factory.__doc__.strip().splitlines()[0]
            entry = ComponentEntry(
                name=name,
                factory=factory,
                params=tuple(params),
                aliases=tuple(aliases),
                summary=doc,
                allow_extra=allow_extra,
                needs_history=needs_history,
                family=family,
                traits=tuple(traits),
            )
            self._entries[name] = entry
            for alias in aliases:
                if alias in self._entries or alias in self._aliases:
                    raise RegistryError(
                        f"{self.kind} alias {alias!r} is already registered"
                    )
                self._aliases[alias] = name
            return factory

        return decorate

    # -- resolution -----------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """Canonical component names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        key = name.lower()
        return key in self._entries or key in self._aliases

    def entry(self, name: str) -> ComponentEntry:
        key = name.lower()
        key = self._aliases.get(key, key)
        try:
            return self._entries[key]
        except KeyError:
            known = tuple(sorted(set(self._entries) | set(self._aliases)))
            raise UnknownComponentError(self.kind, name, known) from None

    def validate_kwargs(self, name: str, kwargs: dict) -> dict:
        """Type-check ``kwargs`` against the entry's specs (no construction)."""
        entry = self.entry(name)
        validated = {}
        for key, value in kwargs.items():
            spec = entry.param(key)
            if spec is None:
                if entry.allow_extra:
                    validated[key] = value
                    continue
                accepted = ", ".join(s.name for s in entry.params) or "none"
                raise RegistryError(
                    f"{self.kind} {entry.name!r} does not accept parameter "
                    f"{key!r} (accepted: {accepted})"
                )
            validated[key] = spec.validate(value, self.kind, entry.name)
        for spec in entry.params:
            if spec.required and spec.name not in validated:
                raise RegistryError(
                    f"{self.kind} {entry.name!r} requires parameter {spec.name!r}"
                )
        return validated

    def create(self, name: str, /, *args, **kwargs):
        """Build the component: positional context + validated keywords.

        Positional ``args`` carry contextual objects the caller always
        supplies (the engine a tuner binds to, for example); ``kwargs``
        are the declarative surface validated against the entry's
        :class:`ParamSpec` list.
        """
        entry = self.entry(name)
        return entry.factory(*args, **self.validate_kwargs(name, kwargs))

    def describe(self) -> str:
        """Human-readable listing (used by docs and ``--help`` epilogs)."""
        lines = []
        for name in self.names():
            entry = self._entries[name]
            alias_note = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
            lines.append(f"{name}{alias_note}: {entry.summary}")
            for spec in entry.params:
                default = "required" if spec.required else f"default {spec.default!r}"
                lines.append(
                    f"  - {spec.name} ({spec.annotation.__name__}, {default})"
                    + (f": {spec.help}" if spec.help else "")
                )
        return "\n".join(lines)


#: The four component families of the paper's pipeline.
ENGINES = Registry("engine")
TUNERS = Registry("tuner")
WORKLOADS = Registry("workload")
MODELS = Registry("prediction model")
