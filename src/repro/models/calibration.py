"""Probability calibration and reliability diagnostics for M_f (extension).

Algorithm 2 compares M_f's bottleneck probability against a threshold, so
the *calibration* of that probability — not just its ranking — determines
where the recommended parallelism lands.  StreamTune's conservative
threshold (0.35 by default) implicitly compensates for miscalibration;
this module makes the trade-off measurable and correctable:

* :class:`PlattCalibrator` — wraps any fitted model exposing a
  ``decision_function`` (or falls back to logits of ``predict_proba``)
  and learns the classic two-parameter sigmoid ``sigma(a*s + b)`` with
  ``a > 0`` by Newton iterations on the calibration split.  Because the
  mapping is strictly increasing in the underlying score, wrapping a
  monotone model yields a monotone calibrated model — Algorithm 2's
  binary search stays sound.
* :func:`brier_score`, :func:`expected_calibration_error`,
  :func:`reliability_table` — standard diagnostics used by the ablation
  experiment to quantify how far raw model outputs sit from calibrated
  probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _scores(model, features: np.ndarray) -> np.ndarray:
    """Raw real-valued scores of a model, preferring the margin."""
    decision = getattr(model, "decision_function", None)
    if decision is not None:
        return np.asarray(decision(features), dtype=np.float64)
    probabilities = np.clip(model.predict_proba(features), 1e-9, 1 - 1e-9)
    return np.log(probabilities / (1 - probabilities))


@dataclass(frozen=True)
class PlattParameters:
    """Fitted sigmoid parameters: probability = sigma(slope*score + intercept)."""

    slope: float
    intercept: float
    n_iterations: int
    converged: bool


def fit_platt(
    scores: np.ndarray,
    labels: np.ndarray,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> PlattParameters:
    """Newton fit of Platt scaling with the standard target smoothing.

    Uses Platt's prior-smoothed targets ``(n_pos+1)/(n_pos+2)`` and
    ``1/(n_neg+2)`` so the fit is defined even for small or separable
    calibration sets.  The slope is projected to stay positive: an
    inverted calibration map would silently flip the monotone constraint
    of the wrapped model.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be equal-length 1-D arrays")
    if len(scores) < 2:
        raise ValueError("need at least two calibration points")
    if set(np.unique(labels)) - {0.0, 1.0}:
        raise ValueError("labels must be binary")

    n_pos = float(labels.sum())
    n_neg = float(len(labels) - n_pos)
    hi = (n_pos + 1.0) / (n_pos + 2.0)
    lo = 1.0 / (n_neg + 2.0)
    targets = np.where(labels > 0.5, hi, lo)

    slope, intercept = 1.0, 0.0
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        z = slope * scores + intercept
        prob = 1.0 / (1.0 + np.exp(-z))
        gradient_common = prob - targets
        grad_a = float(np.dot(gradient_common, scores))
        grad_b = float(gradient_common.sum())
        weight = prob * (1 - prob) + 1e-12
        h_aa = float(np.dot(weight, scores * scores)) + 1e-9
        h_ab = float(np.dot(weight, scores))
        h_bb = float(weight.sum()) + 1e-9
        det = h_aa * h_bb - h_ab * h_ab
        if abs(det) < 1e-18:
            break
        step_a = (h_bb * grad_a - h_ab * grad_b) / det
        step_b = (h_aa * grad_b - h_ab * grad_a) / det
        slope -= step_a
        intercept -= step_b
        slope = max(slope, 1e-6)   # keep the map increasing
        if max(abs(step_a), abs(step_b)) < tolerance:
            converged = True
            break
    return PlattParameters(
        slope=slope, intercept=intercept, n_iterations=iteration, converged=converged
    )


class PlattCalibrator:
    """Calibrated wrapper around a fitted prediction layer.

    Satisfies the same ``BinaryClassifier`` protocol as the wrapped model
    (``fit`` refits *only* the calibration map — the base model is treated
    as frozen, mirroring how fine-tuning freezes the GNN encoder).
    """

    def __init__(self, base_model) -> None:
        self.base_model = base_model
        self.parameters: PlattParameters | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "PlattCalibrator":
        scores = _scores(self.base_model, np.asarray(features, dtype=np.float64))
        self.parameters = fit_platt(scores, np.asarray(labels, dtype=np.float64))
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.parameters is None:
            raise RuntimeError("calibrate (fit) before predicting")
        scores = _scores(self.base_model, np.asarray(features, dtype=np.float64))
        z = self.parameters.slope * scores + self.parameters.intercept
        return 1.0 / (1.0 + np.exp(-z))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)


def brier_score(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean squared error of probabilistic predictions (lower is better)."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if probabilities.shape != labels.shape:
        raise ValueError("probabilities and labels must align")
    if len(labels) == 0:
        raise ValueError("empty inputs")
    return float(np.mean((probabilities - labels) ** 2))


@dataclass(frozen=True)
class ReliabilityBin:
    """One bin of a reliability diagram."""

    lower: float
    upper: float
    n_samples: int
    mean_predicted: float
    mean_observed: float

    @property
    def gap(self) -> float:
        return abs(self.mean_predicted - self.mean_observed)


def reliability_table(
    probabilities: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 10,
) -> list[ReliabilityBin]:
    """Equal-width reliability diagram bins over [0, 1]."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if probabilities.shape != labels.shape:
        raise ValueError("probabilities and labels must align")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins: list[ReliabilityBin] = []
    for i in range(n_bins):
        lower, upper = float(edges[i]), float(edges[i + 1])
        if i + 1 == n_bins:
            members = (probabilities >= lower) & (probabilities <= upper)
        else:
            members = (probabilities >= lower) & (probabilities < upper)
        count = int(members.sum())
        bins.append(
            ReliabilityBin(
                lower=lower,
                upper=upper,
                n_samples=count,
                mean_predicted=float(probabilities[members].mean()) if count else 0.0,
                mean_observed=float(labels[members].mean()) if count else 0.0,
            )
        )
    return bins


def expected_calibration_error(
    probabilities: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 10,
) -> float:
    """ECE: sample-weighted mean |confidence - accuracy| over bins."""
    table = reliability_table(probabilities, labels, n_bins)
    total = sum(entry.n_samples for entry in table)
    if total == 0:
        raise ValueError("empty inputs")
    return float(
        sum(entry.n_samples * entry.gap for entry in table) / total
    )
