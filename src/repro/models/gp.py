"""Minimal 1-D Gaussian process regression (ContTune's surrogate model).

RBF kernel with observation noise, constant mean, Cholesky solve.  ContTune
models each operator's per-instance processing rate as a GP over the
parallelism degree and acts on a conservative lower confidence bound
``mu(p) - alpha * sigma(p)`` (paper §V-A sets alpha = 3).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve


class GaussianProcess1D:
    """GP regression on scalar inputs with an RBF kernel."""

    def __init__(
        self,
        length_scale: float = 10.0,
        signal_variance: float | None = None,
        noise_variance: float | None = None,
    ) -> None:
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self._x: np.ndarray | None = None
        self._mean = 0.0
        self._chol = None
        self._alpha: np.ndarray | None = None

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        assert self.signal_variance is not None
        diff = a[:, None] - b[None, :]
        return self.signal_variance * np.exp(-0.5 * (diff / self.length_scale) ** 2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess1D":
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(x) != len(y) or len(x) == 0:
            raise ValueError("x and y must be equal-length and non-empty")
        self._x = x
        self._mean = float(y.mean())
        centered = y - self._mean
        if self.signal_variance is None:
            spread = float(centered.var())
            self.signal_variance = max(spread, 1e-12 + 0.01 * self._mean**2)
        if self.noise_variance is None:
            self.noise_variance = 0.05 * self.signal_variance + 1e-12
        k = self._kernel(x, x) + self.noise_variance * np.eye(len(x))
        self._chol = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._chol, centered)
        return self

    def predict(self, x_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``x_new``."""
        if self._x is None:
            raise RuntimeError("GP is not fitted")
        x_new = np.asarray(x_new, dtype=np.float64).reshape(-1)
        k_star = self._kernel(x_new, self._x)
        mean = self._mean + k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        prior = self._kernel(x_new, x_new).diagonal()
        variance = np.maximum(prior - np.einsum("ij,ji->i", k_star, v), 1e-12)
        return mean, np.sqrt(variance)

    def lower_confidence_bound(self, x_new: np.ndarray, alpha: float) -> np.ndarray:
        """mu(x) - alpha * sigma(x): ContTune's conservative estimate."""
        mean, std = self.predict(x_new)
        return mean - alpha * std
