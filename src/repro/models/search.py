"""Minimum-parallelism search (paper Algorithm 2, line 8).

``p_rec(v) = min { p <= p_max : M_f(h_v, p) = 0 }`` — thanks to the
monotonic constraint the feasible region is an up-closed interval, so the
minimum is found by binary search in O(log p_max) model evaluations.

The same routine is deliberately reused for the non-monotone NN ablation:
on a non-monotone predictor the bisection invariant breaks and the returned
degree can be wrong — that is the failure mode Fig. 11a quantifies.
"""

from __future__ import annotations

import numpy as np


def min_feasible_parallelism(
    model,
    embedding: np.ndarray,
    p_max: int,
    normalize,
    probability_threshold: float | None = None,
    strict: bool = False,
) -> int:
    """Smallest parallelism the model does not classify as a bottleneck.

    ``model`` is a fitted prediction layer over ``[h, p]``; ``normalize``
    maps an integer degree to the model's parallelism feature (usually
    :meth:`FeatureEncoder.normalize_parallelism` partially applied).
    By default the model's own class decision (``predict``) defines
    feasibility; pass ``probability_threshold`` to bisect the probability
    surface at a custom level instead.  Returns ``p_max`` when even the
    maximum is predicted to bottleneck.

    Implementation note: all ``p_max`` candidate rows are evaluated in one
    batched model call (models are vectorised; per-probe calls dominate
    tuning time otherwise), and the *binary search* of Algorithm 2 then
    runs over the precomputed predicate.  On a monotone model the result
    equals the true minimum; on a non-monotone model it reproduces exactly
    what bisection would do — the failure mode of the Fig. 11a NN ablation.
    Because the predicate is precomputed once, the outcome is a pure
    function of the model's predictions: repeated calls with identical
    inputs return identical degrees even for non-monotone models.

    ``strict=True`` validates the precomputed predicate and raises
    :class:`ValueError` when the model is not monotone along the
    parallelism axis (a bottleneck verdict reappearing after a
    non-bottleneck one), instead of silently returning bisection's answer.
    """
    if p_max < 1:
        raise ValueError("p_max must be >= 1")

    norms = np.array([normalize(p) for p in range(1, p_max + 1)])
    if hasattr(model, "margin_profile") and hasattr(model, "proba_profile"):
        # Profile fast path: the model can sweep the parallelism axis for a
        # fixed embedding without materialising p_max duplicated rows (for
        # the kernel SVM this avoids p_max redundant feature lifts).
        if probability_threshold is None:
            bottleneck = model.margin_profile(embedding, norms) >= 0.0
        else:
            bottleneck = model.proba_profile(embedding, norms) >= probability_threshold
    else:
        rows = np.empty((p_max, len(embedding) + 1))
        rows[:, :-1] = embedding
        rows[:, -1] = norms
        if probability_threshold is None:
            bottleneck = model.predict(rows).astype(bool)
        else:
            bottleneck = model.predict_proba(rows) >= probability_threshold

    if strict and np.any(bottleneck[1:] & ~bottleneck[:-1]):
        raise ValueError(
            "model is not monotone along the parallelism axis: a bottleneck "
            "verdict reappears after a non-bottleneck one"
        )

    def is_bottleneck(p: int) -> bool:
        return bool(bottleneck[p - 1])

    if is_bottleneck(p_max):
        return p_max
    low, high = 1, p_max
    while low < high:
        mid = (low + high) // 2
        if is_bottleneck(mid):
            low = mid + 1
        else:
            high = mid
    return low


def feasibility_profile(
    model,
    embedding: np.ndarray,
    p_max: int,
    normalize,
) -> np.ndarray:
    """Bottleneck probability for every p in [1, p_max] (diagnostics)."""
    rows = np.stack(
        [np.concatenate([embedding, [normalize(p)]]) for p in range(1, p_max + 1)]
    )
    return model.predict_proba(rows)
