"""Fine-tuning prediction models M_f (paper §IV-B).

Lightweight classifiers over ``x = [h_v, p]`` (frozen GNN embedding plus a
candidate parallelism degree) predicting the bottleneck probability.  SVM
and GBDT enforce the paper's monotonic constraint — the probability of
being a bottleneck is non-increasing in p — which makes Algorithm 2's
binary search for the minimum feasible parallelism sound.  The plain
neural network deliberately lacks the constraint (the Fig. 11a ablation).
"""

from repro.models.base import MonotonicityReport, check_monotonicity
from repro.models.calibration import (
    PlattCalibrator,
    brier_score,
    expected_calibration_error,
    reliability_table,
)
from repro.models.svm import MonotonicSVM
from repro.models.gbdt import MonotonicGBDT
from repro.models.isotonic import IsotonicKNN
from repro.models.mlp import MLPClassifier
from repro.models.search import min_feasible_parallelism

__all__ = [
    "IsotonicKNN",
    "MLPClassifier",
    "MonotonicGBDT",
    "MonotonicSVM",
    "MonotonicityReport",
    "PlattCalibrator",
    "brier_score",
    "check_monotonicity",
    "expected_calibration_error",
    "min_feasible_parallelism",
    "reliability_table",
]


def make_prediction_model(kind: str, seed: int = 11):
    """Factory for the fine-tuning layer: 'svm', 'xgboost', 'isotonic' or 'nn'.

    Delegates to the :data:`repro.api.MODELS` registry (imported lazily —
    the registry imports this package), so every registered model —
    including third-party registrations — is constructible here, and an
    unknown kind fails with the full list of alternatives.
    """
    from repro.api.registry import MODELS

    return MODELS.create(kind, seed=seed)
