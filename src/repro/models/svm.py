"""Monotonic SVM (paper Eq. 5).

The paper's formulation separates the embedding features from the
parallelism degree:

    f(x) = w_e^T phi(h) + w_p * p + b,       subject to  w_p <= 0,

with a kernel lift ``phi`` on the embedding part only, hinge loss with
regularisation C, and the sign constraint enforcing that a larger
parallelism can only lower the decision score (hence the bottleneck
probability).

Offline substitution: scikit-learn is unavailable, so the kernel trick is
realised with **random Fourier features** (Rahimi & Recht) approximating an
RBF kernel on ``h``, and the primal is solved by projected subgradient
descent (the projection ``w_p <- min(w_p, 0)`` after every step keeps the
iterate feasible).  Probabilities come from Platt-style scaling of the
margin with a positivity-constrained slope, which preserves monotonicity
in p.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import validate_training_inputs
from repro.gnn.loss import sigmoid
from repro.utils.rng import seeded_rng


class MonotonicSVM:
    """Kernelised hinge-loss classifier, monotone non-increasing in p."""

    def __init__(
        self,
        c: float = 16.0,
        gamma: float = 1.5,
        n_fourier_features: int = 256,
        epochs: int = 200,
        learning_rate: float = 0.05,
        seed: int = 11,
    ) -> None:
        if c <= 0 or gamma <= 0:
            raise ValueError("c and gamma must be positive")
        if n_fourier_features < 1:
            raise ValueError("n_fourier_features must be >= 1")
        self.c = c
        self.gamma = gamma
        self.n_fourier_features = n_fourier_features
        self.epochs = epochs
        self.learning_rate = learning_rate
        self._rng = seeded_rng(seed)
        self._fitted = False
        self._feature_mean: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None
        self._rff_weights: np.ndarray | None = None
        self._rff_offsets: np.ndarray | None = None
        self._w_embed: np.ndarray | None = None
        self._w_parallelism = 0.0
        self._bias = 0.0
        self._platt_scale = 1.0
        self._platt_offset = 0.0

    # ------------------------------------------------------------------
    # feature lift
    # ------------------------------------------------------------------

    def _lift(self, embeddings: np.ndarray) -> np.ndarray:
        """Random Fourier features approximating an RBF kernel on h."""
        assert self._rff_weights is not None and self._rff_offsets is not None
        projection = embeddings @ self._rff_weights + self._rff_offsets
        return np.sqrt(2.0 / self.n_fourier_features) * np.cos(projection)

    def _split(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Standardised embedding columns and the raw parallelism column.

        The RBF kernel is distance-based: without per-column standardisation
        the GNN embedding's scale dominates gamma and the kernel saturates
        (every pair looks maximally distant), destroying generalisation.
        """
        embeddings = features[:, :-1]
        if self._feature_mean is not None:
            embeddings = (embeddings - self._feature_mean) / self._feature_scale
        return embeddings, features[:, -1]

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MonotonicSVM":
        features, labels = validate_training_inputs(features, labels)
        raw_embeddings = features[:, :-1]
        self._feature_mean = raw_embeddings.mean(axis=0)
        self._feature_scale = np.maximum(raw_embeddings.std(axis=0), 1e-8)
        embeddings, parallelism = self._split(features)
        # Normalise the kernel bandwidth by dimensionality so gamma means
        # "per typical pairwise distance" regardless of embedding width.
        n_embed = embeddings.shape[1]
        self._rff_weights = self._rng.normal(
            0.0,
            np.sqrt(2.0 * self.gamma / n_embed),
            size=(n_embed, self.n_fourier_features),
        )
        self._rff_offsets = self._rng.uniform(0.0, 2.0 * np.pi, self.n_fourier_features)
        lifted = self._lift(embeddings)

        y = 2.0 * labels - 1.0                      # {-1, +1}
        n = len(y)
        # Class weights keep the minority class visible (bottleneck labels
        # are often rare once tuning converges).
        n_pos = max(1.0, float((y > 0).sum()))
        n_neg = max(1.0, float((y < 0).sum()))
        weight = np.where(y > 0, n / (2.0 * n_pos), n / (2.0 * n_neg))

        # Primal smooth (squared-hinge) SVM solved by L-BFGS-B; the Eq. 5
        # sign constraint w_p <= 0 maps directly onto a box bound.  The
        # regulariser follows the usual SVM scaling lambda = 1 / (C n).
        lam = 1.0 / (self.c * n)
        dim = self.n_fourier_features

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            w_e = theta[:dim]
            w_p = theta[dim]
            b = theta[dim + 1]
            scores = lifted @ w_e + w_p * parallelism + b
            margin = 1.0 - y * scores
            active = margin > 0.0
            hinge = np.where(active, margin, 0.0)
            value = 0.5 * lam * (w_e @ w_e + w_p * w_p) + float(
                (weight * hinge**2).mean()
            )
            coeff = -2.0 * weight * hinge * y / n
            grad = np.empty_like(theta)
            grad[:dim] = lam * w_e + coeff @ lifted
            grad[dim] = lam * w_p + float(coeff @ parallelism)
            grad[dim + 1] = float(coeff.sum())
            return value, grad

        from scipy.optimize import minimize

        theta0 = np.zeros(dim + 2)
        bounds = [(None, None)] * dim + [(None, 0.0), (None, None)]
        solution = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": self.epochs},
        )
        self._w_embed = solution.x[:dim]
        self._w_parallelism = float(min(solution.x[dim], 0.0))
        self._bias = float(solution.x[dim + 1])
        self._fitted = True
        margins = lifted @ self._w_embed + self._w_parallelism * parallelism + self._bias
        self._fit_platt(margins, labels)
        return self

    def _fit_platt(self, margins: np.ndarray, labels: np.ndarray) -> None:
        """Fit p = sigmoid(a * margin + b0) with a >= 0 (keeps monotonicity)."""
        a, b0 = 1.0, 0.0
        for _ in range(120):
            z = a * margins + b0
            p = sigmoid(z)
            grad_a = float(((p - labels) * margins).mean())
            grad_b = float((p - labels).mean())
            a -= 0.5 * grad_a
            b0 -= 0.5 * grad_b
            a = max(a, 1e-2)
        self._platt_scale = a
        self._platt_offset = b0

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Margin f(x); positive = predicted bottleneck."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        embeddings, parallelism = self._split(features)
        lifted = self._lift(embeddings)
        assert self._w_embed is not None
        return lifted @ self._w_embed + self._w_parallelism * parallelism + self._bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        margins = self.decision_function(features)
        return sigmoid(self._platt_scale * margins + self._platt_offset)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard decision on the *margin* (class-weighted hinge boundary).

        Platt probabilities are calibrated to the class prior, so on
        imbalanced data the 0.5-probability surface drifts away from the
        max-margin separator; the class decision must use the margin.
        """
        return (self.decision_function(features) >= 0.0).astype(np.int64)

    @property
    def parallelism_weight(self) -> float:
        """The constrained weight w_p (always <= 0 after fitting)."""
        return self._w_parallelism
