"""Monotonic SVM (paper Eq. 5).

The paper's formulation separates the embedding features from the
parallelism degree:

    f(x) = w_e^T phi(h) + w_p * p + b,       subject to  w_p <= 0,

with a kernel lift ``phi`` on the embedding part only, hinge loss with
regularisation C, and the sign constraint enforcing that a larger
parallelism can only lower the decision score (hence the bottleneck
probability).

Offline substitution: scikit-learn is unavailable, so the kernel trick is
realised with **random Fourier features** (Rahimi & Recht) approximating an
RBF kernel on ``h``, and the primal is solved by projected subgradient
descent (the projection ``w_p <- min(w_p, 0)`` after every step keeps the
iterate feasible).  Probabilities come from Platt-style scaling of the
margin with a positivity-constrained slope, which preserves monotonicity
in p.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import validate_training_inputs
from repro.gnn.loss import sigmoid
from repro.utils.rng import seeded_rng


class MonotonicSVM:
    """Kernelised hinge-loss classifier, monotone non-increasing in p."""

    def __init__(
        self,
        c: float = 16.0,
        gamma: float = 1.5,
        n_fourier_features: int = 256,
        epochs: int = 200,
        learning_rate: float = 0.05,
        seed: int = 11,
        platt_tol: float = 0.0,
    ) -> None:
        """``platt_tol`` > 0 stops the Platt-scaling loop once both gradient
        magnitudes fall below it (deterministic early exit); the default 0
        keeps the historical fixed-iteration behaviour bit-for-bit."""
        if c <= 0 or gamma <= 0:
            raise ValueError("c and gamma must be positive")
        if n_fourier_features < 1:
            raise ValueError("n_fourier_features must be >= 1")
        self.c = c
        self.gamma = gamma
        self.n_fourier_features = n_fourier_features
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.platt_tol = platt_tol
        #: Optional extra options merged into the L-BFGS-B ``options`` dict
        #: (e.g. ``{"ftol": 1e-7, "gtol": 1e-4}``).  The online tuning loop
        #: thresholds a calibrated probability at ~0.35, so it can trade the
        #: solver's last digits of objective precision for iterations.
        self.solver_options: dict | None = None
        self._rng = seeded_rng(seed)
        self._fitted = False
        self.solution_theta: np.ndarray | None = None
        self._feature_mean: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None
        self._rff_weights: np.ndarray | None = None
        self._rff_offsets: np.ndarray | None = None
        self._w_embed: np.ndarray | None = None
        self._w_parallelism = 0.0
        self._bias = 0.0
        self._platt_scale = 1.0
        self._platt_offset = 0.0

    # ------------------------------------------------------------------
    # feature lift
    # ------------------------------------------------------------------

    def _lift(self, embeddings: np.ndarray) -> np.ndarray:
        """Random Fourier features approximating an RBF kernel on h."""
        assert self._rff_weights is not None and self._rff_offsets is not None
        projection = embeddings @ self._rff_weights + self._rff_offsets
        return np.sqrt(2.0 / self.n_fourier_features) * np.cos(projection)

    def _split(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Standardised embedding columns and the raw parallelism column.

        The RBF kernel is distance-based: without per-column standardisation
        the GNN embedding's scale dominates gamma and the kernel saturates
        (every pair looks maximally distant), destroying generalisation.
        """
        embeddings = features[:, :-1]
        if self._feature_mean is not None:
            embeddings = (embeddings - self._feature_mean) / self._feature_scale
        return embeddings, features[:, -1]

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
        theta0: np.ndarray | None = None,
    ) -> "MonotonicSVM":
        """Fit the primal SVM; ``sample_weight`` counts row multiplicities.

        A dataset with ``sample_weight=[2, 3]`` optimises the same objective
        as the expanded dataset repeating row 0 twice and row 1 three times
        — the fine-tuning loop exploits this to collapse its heavily
        duplicated training multiset (prior replication, feedback
        replication, minority oversampling) into weighted unique rows.

        ``theta0`` warm-starts L-BFGS from a previous solution in the same
        random-feature space (the RFF draw depends only on the model seed,
        so successive refits of a tuning loop share the feature space); the
        online loop's refits change only a few feedback rows between fits,
        which makes the previous optimum an excellent starting point.
        """
        features, labels = validate_training_inputs(features, labels)
        counts = None
        if sample_weight is not None:
            counts = np.asarray(sample_weight, dtype=np.float64).reshape(-1)
            if len(counts) != len(labels):
                raise ValueError("sample_weight and labels disagree on count")
            if not (counts > 0).all():
                raise ValueError("sample_weight entries must be positive")
        raw_embeddings = features[:, :-1]
        if counts is None:
            self._feature_mean = raw_embeddings.mean(axis=0)
            self._feature_scale = np.maximum(raw_embeddings.std(axis=0), 1e-8)
        else:
            total = counts.sum()
            mean = (counts[:, None] * raw_embeddings).sum(axis=0) / total
            var = (counts[:, None] * (raw_embeddings - mean) ** 2).sum(axis=0) / total
            self._feature_mean = mean
            self._feature_scale = np.maximum(np.sqrt(var), 1e-8)
        embeddings, parallelism = self._split(features)
        # Normalise the kernel bandwidth by dimensionality so gamma means
        # "per typical pairwise distance" regardless of embedding width.
        n_embed = embeddings.shape[1]
        self._rff_weights = self._rng.normal(
            0.0,
            np.sqrt(2.0 * self.gamma / n_embed),
            size=(n_embed, self.n_fourier_features),
        )
        self._rff_offsets = self._rng.uniform(0.0, 2.0 * np.pi, self.n_fourier_features)
        lifted = self._lift(embeddings)

        y = 2.0 * labels - 1.0                      # {-1, +1}
        n = len(y) if counts is None else float(counts.sum())
        # Class weights keep the minority class visible (bottleneck labels
        # are often rare once tuning converges).
        if counts is None:
            n_pos = max(1.0, float((y > 0).sum()))
            n_neg = max(1.0, float((y < 0).sum()))
        else:
            n_pos = max(1.0, float(counts[y > 0].sum()))
            n_neg = max(1.0, float(counts[y < 0].sum()))
        weight = np.where(y > 0, n / (2.0 * n_pos), n / (2.0 * n_neg))
        if counts is not None:
            weight = weight * counts

        # Primal smooth (squared-hinge) SVM solved by L-BFGS-B; the Eq. 5
        # sign constraint w_p <= 0 maps directly onto a box bound.  The
        # regulariser follows the usual SVM scaling lambda = 1 / (C n).
        lam = 1.0 / (self.c * n)
        dim = self.n_fourier_features

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            w_e = theta[:dim]
            w_p = theta[dim]
            b = theta[dim + 1]
            scores = lifted @ w_e + w_p * parallelism + b
            margin = 1.0 - y * scores
            active = margin > 0.0
            hinge = np.where(active, margin, 0.0)
            value = 0.5 * lam * (w_e @ w_e + w_p * w_p) + float(
                (weight * hinge**2).sum() / n
            )
            coeff = -2.0 * weight * hinge * y / n
            grad = np.empty_like(theta)
            grad[:dim] = lam * w_e + coeff @ lifted
            grad[dim] = lam * w_p + float(coeff @ parallelism)
            grad[dim + 1] = float(coeff.sum())
            return value, grad

        from scipy.optimize import minimize

        if theta0 is None:
            start = np.zeros(dim + 2)
        else:
            start = np.asarray(theta0, dtype=np.float64)
            if start.shape != (dim + 2,):
                raise ValueError(
                    f"theta0 must have shape ({dim + 2},), got {start.shape}"
                )
            # Project into the feasible box so L-BFGS-B starts legal.
            start = start.copy()
            start[dim] = min(start[dim], 0.0)
        bounds = [(None, None)] * dim + [(None, 0.0), (None, None)]
        options = {"maxiter": self.epochs}
        if self.solver_options:
            options.update(self.solver_options)
        solution = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options=options,
        )
        self.solution_theta = solution.x.copy()
        self._w_embed = solution.x[:dim]
        self._w_parallelism = float(min(solution.x[dim], 0.0))
        self._bias = float(solution.x[dim + 1])
        self._fitted = True
        margins = lifted @ self._w_embed + self._w_parallelism * parallelism + self._bias
        self._fit_platt(margins, labels, counts)
        return self

    def _fit_platt(
        self,
        margins: np.ndarray,
        labels: np.ndarray,
        counts: np.ndarray | None = None,
    ) -> None:
        """Fit p = sigmoid(a * margin + b0) with a >= 0 (keeps monotonicity)."""
        n = float(len(margins)) if counts is None else float(counts.sum())
        multiplicity = np.ones_like(margins) if counts is None else counts
        a, b0 = 1.0, 0.0
        for _ in range(120):
            z = a * margins + b0
            p = sigmoid(z)
            grad_a = float((multiplicity * (p - labels) * margins).sum() / n)
            grad_b = float((multiplicity * (p - labels)).sum() / n)
            if self.platt_tol > 0.0 and (
                abs(grad_a) < self.platt_tol and abs(grad_b) < self.platt_tol
            ):
                break
            a -= 0.5 * grad_a
            b0 -= 0.5 * grad_b
            a = max(a, 1e-2)
        self._platt_scale = a
        self._platt_offset = b0

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Margin f(x); positive = predicted bottleneck."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        embeddings, parallelism = self._split(features)
        lifted = self._lift(embeddings)
        assert self._w_embed is not None
        return lifted @ self._w_embed + self._w_parallelism * parallelism + self._bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        margins = self.decision_function(features)
        return sigmoid(self._platt_scale * margins + self._platt_offset)

    # ------------------------------------------------------------------
    # parallelism profiles (fast path for the minimum-degree search)
    # ------------------------------------------------------------------

    def margin_profile(
        self, embedding: np.ndarray, parallelism_values: np.ndarray
    ) -> np.ndarray:
        """Margins of one operator embedding across many parallelism values.

        ``f(x) = w_e^T phi(h) + w_p p + b`` touches the kernel lift through
        ``h`` only, so sweeping ``p`` needs a single lifted row rather than
        one per candidate degree — the minimum-parallelism search evaluates
        ``p_max`` candidates with one cosine transform instead of ``p_max``.
        """
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        embedding = np.asarray(embedding, dtype=np.float64).reshape(1, -1)
        row = np.concatenate([embedding, [[0.0]]], axis=1)
        lifted_embedding, _ = self._split(row)
        lifted = self._lift(lifted_embedding)
        assert self._w_embed is not None
        base = lifted @ self._w_embed
        return base + self._w_parallelism * np.asarray(parallelism_values) + self._bias

    def proba_profile(
        self, embedding: np.ndarray, parallelism_values: np.ndarray
    ) -> np.ndarray:
        """Platt-calibrated probabilities along a parallelism sweep."""
        margins = self.margin_profile(embedding, parallelism_values)
        return sigmoid(self._platt_scale * margins + self._platt_offset)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard decision on the *margin* (class-weighted hinge boundary).

        Platt probabilities are calibrated to the class prior, so on
        imbalanced data the 0.5-probability surface drifts away from the
        max-margin separator; the class decision must use the margin.
        """
        return (self.decision_function(features) >= 0.0).astype(np.int64)

    @property
    def parallelism_weight(self) -> float:
        """The constrained weight w_p (always <= 0 after fitting)."""
        return self._w_parallelism
