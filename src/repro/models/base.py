"""Common contract and monotonicity checking for fine-tuning models.

Every model consumes feature matrices whose **last column is the
(normalised) parallelism degree** and exposes

* ``fit(X, y)`` with binary labels,
* ``predict_proba(X) -> (n,)`` bottleneck probabilities,
* ``predict(X) -> (n,)`` hard 0/1 decisions.

:func:`check_monotonicity` empirically probes a fitted model along the
parallelism axis — used by tests and by the Fig. 11a ablation to show the
NN baseline violating the constraint the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class BinaryClassifier(Protocol):
    """Structural type of all fine-tuning prediction layers."""

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "BinaryClassifier": ...

    def predict_proba(self, features: np.ndarray) -> np.ndarray: ...

    def predict(self, features: np.ndarray) -> np.ndarray: ...


@dataclass(frozen=True)
class MonotonicityReport:
    """Result of probing a model along the parallelism feature."""

    n_probes: int
    n_violations: int
    max_violation: float    # largest probability increase along increasing p

    @property
    def is_monotone(self) -> bool:
        return self.n_violations == 0


def check_monotonicity(
    model: BinaryClassifier,
    base_features: np.ndarray,
    parallelism_grid: np.ndarray | None = None,
    tolerance: float = 1e-9,
) -> MonotonicityReport:
    """Probe ``model`` for violations of the monotonic constraint.

    For each row of ``base_features`` (parallelism column ignored), sweep
    the last feature over ``parallelism_grid`` and count increases of the
    predicted bottleneck probability.
    """
    if base_features.ndim != 2 or base_features.shape[1] < 2:
        raise ValueError("base_features must be 2-D with >= 2 columns")
    if parallelism_grid is None:
        parallelism_grid = np.linspace(0.0, 1.0, 21)
    n_probes = 0
    n_violations = 0
    max_violation = 0.0
    for row in base_features:
        swept = np.tile(row, (len(parallelism_grid), 1))
        swept[:, -1] = parallelism_grid
        probabilities = model.predict_proba(swept)
        deltas = np.diff(probabilities)
        n_probes += len(deltas)
        bad = deltas > tolerance
        n_violations += int(bad.sum())
        if bad.any():
            max_violation = max(max_violation, float(deltas[bad].max()))
    return MonotonicityReport(
        n_probes=n_probes, n_violations=n_violations, max_violation=max_violation
    )


def validate_training_inputs(features: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Shared input validation: shapes, finiteness, binary labels."""
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels).reshape(-1)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D matrix")
    if len(features) != len(labels):
        raise ValueError("features and labels disagree on sample count")
    if len(labels) == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not np.isfinite(features).all():
        raise ValueError("features contain non-finite values")
    unique = set(np.unique(labels).tolist())
    if not unique <= {0, 1}:
        raise ValueError(f"labels must be binary 0/1, got {sorted(unique)}")
    return features, labels.astype(np.float64)
