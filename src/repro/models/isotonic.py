"""Isotonic k-NN: a third monotone candidate for M_f (extension).

The paper proposes SVM and XGBoost as fine-tuning layers because neural
networks struggle to enforce monotonicity (§IV-B).  A natural third
lightweight candidate — not evaluated in the paper but squarely within its
design space — is non-parametric: for a query ``[h, p]``, take the k
nearest training rows in embedding space and fit an *antitonic* (non-
increasing) regression of label on parallelism over them with the
pool-adjacent-violators algorithm (PAV).  The prediction is that fitted
step function evaluated at ``p``.

Monotonicity holds *by construction*: for a fixed embedding h the
neighbour set is fixed, and a PAV fit is non-increasing in p, so the
bottleneck probability can never rise with parallelism — exactly the
constraint Algorithm 2's binary search requires.

The model needs no training loop (fit = memorise + standardise), which
makes it the cheapest candidate for the online phase; its weakness is the
usual k-NN one — prediction cost grows with |T| — measured in the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import seeded_rng


def pav_antitonic(
    positions: np.ndarray,
    values: np.ndarray,
    weights: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Weighted antitonic (non-increasing) regression via PAV.

    Fits ``g`` minimising ``sum_i w_i (g(x_i) - y_i)^2`` subject to
    ``g`` non-increasing in ``x``.  Returns the unique sorted positions
    and the fitted value per position (ties in ``positions`` are pooled
    first, which PAV requires).
    """
    positions = np.asarray(positions, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if positions.shape != values.shape or positions.ndim != 1:
        raise ValueError("positions and values must be equal-length 1-D arrays")
    if len(positions) == 0:
        raise ValueError("cannot fit an empty regression")
    if weights is None:
        weights = np.ones_like(values)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != values.shape:
            raise ValueError("weights must match values")
        if np.any(weights <= 0):
            raise ValueError("weights must be positive")

    order = np.argsort(positions, kind="stable")
    xs, ys, ws = positions[order], values[order], weights[order]

    # Pool duplicate positions into weighted means.
    unique_x: list[float] = []
    pooled_y: list[float] = []
    pooled_w: list[float] = []
    i = 0
    while i < len(xs):
        j = i
        while j < len(xs) and xs[j] == xs[i]:
            j += 1
        weight = float(ws[i:j].sum())
        unique_x.append(float(xs[i]))
        pooled_y.append(float(np.dot(ys[i:j], ws[i:j]) / weight))
        pooled_w.append(weight)
        i = j

    # Antitonic fit = isotonic fit on negated values.  Classic PAV stack.
    blocks: list[list[float]] = []   # [value, weight, count]
    for y, w in zip(pooled_y, pooled_w):
        blocks.append([-y, w, 1])
        while len(blocks) >= 2 and blocks[-2][0] > blocks[-1][0]:
            v2, w2, c2 = blocks.pop()
            v1, w1, c1 = blocks.pop()
            merged_w = w1 + w2
            blocks.append([(v1 * w1 + v2 * w2) / merged_w, merged_w, c1 + c2])

    fitted = np.empty(len(unique_x))
    cursor = 0
    for value, _weight, count in blocks:
        fitted[cursor : cursor + count] = -value
        cursor += count
    return np.asarray(unique_x), fitted


def step_interpolate(
    query: float, positions: np.ndarray, fitted: np.ndarray
) -> float:
    """Evaluate an antitonic step fit at ``query``.

    Between knots the fit is linearly interpolated (still monotone);
    outside the observed range it clamps to the boundary values, which is
    the conservative choice for extrapolating bottleneck probabilities.
    """
    if len(positions) == 0:
        raise ValueError("empty fit")
    if query <= positions[0]:
        return float(fitted[0])
    if query >= positions[-1]:
        return float(fitted[-1])
    return float(np.interp(query, positions, fitted))


class IsotonicKNN:
    """Monotone non-parametric M_f: k-NN in h, antitonic PAV along p.

    Feature convention matches every other model in this package: the
    last column of the feature matrix is the normalised parallelism, the
    rest is the (frozen) operator embedding.

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size; capped at the training-set size.
    bandwidth:
        Gaussian kernel bandwidth for neighbour weighting, in units of
        the median pairwise embedding distance (so the default is
        scale-free).  ``None`` weights all neighbours equally.
    prior_weight:
        Weight of two virtual anchor rows (bottleneck at p=0, clear at
        p=1 in normalised units) blended into every neighbourhood; keeps
        predictions defined and monotone when a neighbourhood is
        single-class.
    seed:
        Only used to break exact distance ties deterministically.
    """

    def __init__(
        self,
        n_neighbors: int = 25,
        bandwidth: float | None = 1.0,
        prior_weight: float = 0.25,
        seed: int = 11,
    ) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if prior_weight < 0:
            raise ValueError("prior_weight must be >= 0")
        self.n_neighbors = n_neighbors
        self.bandwidth = bandwidth
        self.prior_weight = prior_weight
        self.seed = seed
        self._embeddings: np.ndarray | None = None
        self._parallelisms: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._median_distance: float = 1.0

    # ------------------------------------------------------------------
    # BinaryClassifier protocol
    # ------------------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "IsotonicKNN":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] < 2:
            raise ValueError("features must be 2-D with an embedding and a p column")
        if len(features) != len(labels):
            raise ValueError("features and labels disagree on length")
        if len(features) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._embeddings = features[:, :-1].copy()
        self._parallelisms = features[:, -1].copy()
        self._labels = labels.copy()

        # Per-dimension robust scale for the distance metric.
        spread = self._embeddings.std(axis=0)
        self._scale = np.where(spread > 1e-12, spread, 1.0)

        scaled = self._embeddings / self._scale
        n = len(scaled)
        if n > 1:
            rng = seeded_rng(self.seed)
            probes = rng.choice(n, size=min(n, 64), replace=False)
            deltas = scaled[probes, None, :] - scaled[None, probes, :]
            distances = np.sqrt((deltas**2).sum(axis=2))
            positive = distances[distances > 0]
            self._median_distance = float(np.median(positive)) if len(positive) else 1.0
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._embeddings is None:
            raise RuntimeError("predict before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features[None, :]
        return np.asarray([self._predict_row(row) for row in features])

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _predict_row(self, row: np.ndarray) -> float:
        embedding, p = row[:-1], float(row[-1])
        scaled_train = self._embeddings / self._scale
        scaled_query = embedding / self._scale
        distances = np.sqrt(((scaled_train - scaled_query) ** 2).sum(axis=1))
        k = min(self.n_neighbors, len(distances))
        neighbour_idx = np.argpartition(distances, k - 1)[:k]

        if self.bandwidth is None:
            weights = np.ones(k)
        else:
            width = self.bandwidth * max(self._median_distance, 1e-12)
            weights = np.exp(-0.5 * (distances[neighbour_idx] / width) ** 2)
            weights = np.maximum(weights, 1e-12)

        positions = self._parallelisms[neighbour_idx]
        values = self._labels[neighbour_idx]
        if self.prior_weight > 0:
            # Virtual anchors encode the physics: zero parallelism cannot
            # keep up (bottleneck), the physical maximum is presumed safe.
            positions = np.concatenate([positions, [0.0, 1.0]])
            values = np.concatenate([values, [1.0, 0.0]])
            weights = np.concatenate([weights, [self.prior_weight] * 2])

        knots, fitted = pav_antitonic(positions, values, weights)
        return min(1.0, max(0.0, step_interpolate(p, knots, fitted)))
