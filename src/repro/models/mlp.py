"""Plain neural-network classifier — the *non-monotonic* ablation baseline.

Fig. 11a compares SVM/XGBoost (monotone) against a neural network that
"does not enforce the monotonic constraint".  This is that NN: a small
two-layer MLP trained with Adam on logistic loss.  Nothing stops it from
predicting a *higher* bottleneck probability at a *higher* parallelism, so
Algorithm 2's binary search can report spuriously low degrees — producing
the extra reconfigurations and backpressure the ablation measures.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.layers import Linear, ReLU
from repro.gnn.loss import bce_with_logits, sigmoid
from repro.gnn.optim import Adam
from repro.models.base import validate_training_inputs
from repro.utils.rng import seeded_rng


class MLPClassifier:
    """Two-hidden-layer MLP over [h_v, p] without monotonicity."""

    def __init__(
        self,
        hidden_dim: int = 32,
        epochs: int = 150,
        learning_rate: float = 5e-3,
        batch_size: int = 64,
        seed: int = 11,
    ) -> None:
        if hidden_dim < 1:
            raise ValueError("hidden_dim must be >= 1")
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self._layers: list | None = None
        self._rng = seeded_rng(seed)

    def _build(self, input_dim: int) -> None:
        rng = seeded_rng(self.seed + 1)
        self._fc1 = Linear(rng, input_dim, self.hidden_dim)
        self._act1 = ReLU()
        self._fc2 = Linear(rng, self.hidden_dim, self.hidden_dim // 2)
        self._act2 = ReLU()
        self._fc3 = Linear(rng, self.hidden_dim // 2, 1)
        self._layers = [self._fc1, self._act1, self._fc2, self._act2, self._fc3]

    def _forward(self, features: np.ndarray) -> np.ndarray:
        assert self._layers is not None
        value = features
        for layer in self._layers:
            value = layer.forward(value)
        return value

    def _backward(self, grad: np.ndarray) -> None:
        assert self._layers is not None
        for layer in reversed(self._layers):
            grad = layer.backward(grad)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MLPClassifier":
        features, labels = validate_training_inputs(features, labels)
        self._build(features.shape[1])
        parameters = [p for layer in self._layers for p in layer.parameters()]
        optimizer = Adam(parameters, learning_rate=self.learning_rate, weight_decay=1e-4)
        mask = np.ones(len(labels), dtype=bool)
        for _ in range(self.epochs):
            order = self._rng.permutation(len(labels))
            for start in range(0, len(order), self.batch_size):
                batch = order[start : start + self.batch_size]
                optimizer.zero_grad()
                logits = self._forward(features[batch])
                _, grad = bce_with_logits(
                    logits, labels[batch].astype(np.int64), mask[batch]
                )
                self._backward(grad)
                optimizer.step()
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._layers is None:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return sigmoid(self._forward(features).reshape(-1))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)
