"""Monotonic gradient-boosted decision trees (paper §IV-B, "XGBoost").

A from-scratch second-order gradient boosting classifier with the two
modifications the paper describes for enforcing monotonicity:

* **Split screening** — candidate splits on the constrained feature whose
  child values would violate the monotonic order "are penalised by setting
  their gain to -inf, effectively excluding them";
* **Leaf value bounding** — once a node splits on the constrained feature,
  the midpoint of the two child values bounds every leaf beneath: for a
  *decreasing* constraint the low-parallelism subtree may not dip below the
  midpoint and the high-parallelism subtree may not rise above it.

Each tree is therefore non-increasing along the parallelism feature, and a
sum of non-increasing trees (plus a constant base score) stays
non-increasing, so the sigmoid of the ensemble honours the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gnn.loss import sigmoid
from repro.models.base import validate_training_inputs
from repro.utils.rng import seeded_rng

_NO_GAIN = -np.inf


@dataclass
class _Node:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    def predict_one(self, row: np.ndarray) -> float:
        node = self
        while node.feature is not None:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value


class MonotonicGBDT:
    """Logistic-loss boosting, monotone non-increasing in the last feature."""

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int = 3,
        learning_rate: float = 0.25,
        reg_lambda: float = 1.0,
        min_child_weight: float = 1.0,
        min_gain: float = 1e-6,
        subsample: float = 1.0,
        seed: int = 11,
    ) -> None:
        if n_estimators < 1 or max_depth < 1:
            raise ValueError("n_estimators and max_depth must be >= 1")
        if not 0 < subsample <= 1:
            raise ValueError("subsample must lie in (0, 1]")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.min_gain = min_gain
        self.subsample = subsample
        self._rng = seeded_rng(seed)
        self._trees: list[_Node] = []
        self._base_score = 0.0
        self._monotone_feature = -1      # resolved to a real index in fit()
        self._fitted = False

    # ------------------------------------------------------------------
    # boosting
    # ------------------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MonotonicGBDT":
        features, labels = validate_training_inputs(features, labels)
        self._monotone_feature = features.shape[1] - 1
        positive_rate = float(np.clip(labels.mean(), 1e-4, 1 - 1e-4))
        self._base_score = float(np.log(positive_rate / (1.0 - positive_rate)))
        self._trees = []

        scores = np.full(len(labels), self._base_score)
        for _ in range(self.n_estimators):
            probabilities = sigmoid(scores)
            gradients = probabilities - labels
            hessians = np.maximum(probabilities * (1.0 - probabilities), 1e-6)
            if self.subsample < 1.0:
                chosen = self._rng.random(len(labels)) < self.subsample
                if not chosen.any():
                    chosen[self._rng.integers(len(labels))] = True
            else:
                chosen = np.ones(len(labels), dtype=bool)
            tree = self._build_node(
                features[chosen],
                gradients[chosen],
                hessians[chosen],
                depth=0,
                lower=-np.inf,
                upper=np.inf,
            )
            self._trees.append(tree)
            scores += self.learning_rate * self._predict_tree(tree, features)
        self._fitted = True
        return self

    def _leaf_value(self, grad_sum: float, hess_sum: float, lower: float, upper: float) -> float:
        raw = -grad_sum / (hess_sum + self.reg_lambda)
        return float(np.clip(raw, lower, upper))

    def _build_node(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        depth: int,
        lower: float,
        upper: float,
    ) -> _Node:
        grad_sum = float(gradients.sum())
        hess_sum = float(hessians.sum())
        node = _Node(value=self._leaf_value(grad_sum, hess_sum, lower, upper))
        if depth >= self.max_depth or len(gradients) < 2:
            return node

        best = self._find_best_split(features, gradients, hessians, grad_sum, hess_sum, lower, upper)
        if best is None:
            return node

        feature, threshold, gain = best
        del gain
        go_left = features[:, feature] <= threshold
        if feature == self._monotone_feature:
            # Decreasing constraint: left (small p) >= mid >= right (large p).
            left_grad = float(gradients[go_left].sum())
            left_hess = float(hessians[go_left].sum())
            right_grad = grad_sum - left_grad
            right_hess = hess_sum - left_hess
            left_value = self._leaf_value(left_grad, left_hess, lower, upper)
            right_value = self._leaf_value(right_grad, right_hess, lower, upper)
            mid = 0.5 * (left_value + right_value)
            left_bounds = (mid, upper)
            right_bounds = (lower, mid)
        else:
            left_bounds = (lower, upper)
            right_bounds = (lower, upper)

        node.feature = feature
        node.threshold = threshold
        node.left = self._build_node(
            features[go_left], gradients[go_left], hessians[go_left],
            depth + 1, *left_bounds,
        )
        node.right = self._build_node(
            features[~go_left], gradients[~go_left], hessians[~go_left],
            depth + 1, *right_bounds,
        )
        return node

    def _find_best_split(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        grad_sum: float,
        hess_sum: float,
        lower: float,
        upper: float,
    ) -> tuple[int, float, float] | None:
        parent_score = grad_sum * grad_sum / (hess_sum + self.reg_lambda)
        best_gain = self.min_gain
        best: tuple[int, float, float] | None = None
        for feature in range(features.shape[1]):
            column = features[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            grad_prefix = np.cumsum(gradients[order])
            hess_prefix = np.cumsum(hessians[order])
            for i in range(len(sorted_values) - 1):
                if sorted_values[i] == sorted_values[i + 1]:
                    continue
                left_grad, left_hess = float(grad_prefix[i]), float(hess_prefix[i])
                right_grad = grad_sum - left_grad
                right_hess = hess_sum - left_hess
                if left_hess < self.min_child_weight or right_hess < self.min_child_weight:
                    continue
                gain = (
                    left_grad * left_grad / (left_hess + self.reg_lambda)
                    + right_grad * right_grad / (right_hess + self.reg_lambda)
                    - parent_score
                )
                if feature == self._monotone_feature:
                    left_value = self._leaf_value(left_grad, left_hess, lower, upper)
                    right_value = self._leaf_value(right_grad, right_hess, lower, upper)
                    if left_value < right_value:
                        gain = _NO_GAIN    # violates the decreasing constraint
                if gain > best_gain:
                    best_gain = gain
                    threshold = 0.5 * (sorted_values[i] + sorted_values[i + 1])
                    best = (feature, float(threshold), float(gain))
        return best

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    @staticmethod
    def _predict_tree(tree: _Node, features: np.ndarray) -> np.ndarray:
        return np.array([tree.predict_one(row) for row in features])

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=np.float64)
        scores = np.full(len(features), self._base_score)
        for tree in self._trees:
            scores += self.learning_rate * self._predict_tree(tree, features)
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)
