"""Nexmark benchmark queries Q1, Q2, Q3, Q5, Q8 (paper §V-A).

The paper selects these five queries for operator diversity:

* **Q1** — currency conversion: a stateless *map* over the bid stream.
* **Q2** — auction filter: a stateless *filter* over the bid stream.
* **Q3** — local item suggestion: a stateful record-at-a-time *incremental
  join* of filtered persons and auctions.
* **Q5** — hot items: *sliding-window* aggregation; we model the classic
  diamond (per-auction window counts joined with the window maximum).
* **Q8** — monitor new users: a *tumbling-window join* of persons and
  auctions.

Selectivities and tuple widths are ground-truth simulator inputs chosen to
match the queries' published semantics (e.g. Q2's auction filter passes a
small fraction of bids); the tuners never read them directly.
"""

from __future__ import annotations

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import (
    AggregateFunction,
    DataType,
    KeyClass,
    OperatorSpec,
    OperatorType,
    WindowPolicy,
    WindowType,
)
from repro.workloads.query import StreamingQuery
from repro.workloads.rates import rate_units

#: Tuple widths (bytes) of the Nexmark record types.
BID_WIDTH = 112.0
AUCTION_WIDTH = 136.0
PERSON_WIDTH = 200.0

NEXMARK_QUERY_NAMES = ("q1", "q2", "q3", "q5", "q8")


def _source(name: str, data_type: DataType, width: float) -> OperatorSpec:
    return OperatorSpec(
        name=name,
        op_type=OperatorType.SOURCE,
        tuple_width_in=width,
        tuple_width_out=width,
        tuple_data_type=data_type,
    )


def _sink(name: str, width: float) -> OperatorSpec:
    return OperatorSpec(
        name=name,
        op_type=OperatorType.SINK,
        tuple_width_in=width,
        tuple_width_out=width,
    )


def _build_q1() -> LogicalDataflow:
    flow = LogicalDataflow("nexmark_q1")
    flow.chain(
        _source("src_bids", DataType.BID, BID_WIDTH),
        OperatorSpec(
            name="map_currency",
            op_type=OperatorType.MAP,
            tuple_width_in=BID_WIDTH,
            tuple_width_out=BID_WIDTH,
            tuple_data_type=DataType.BID,
            selectivity=1.0,
        ),
        _sink("sink", BID_WIDTH),
    )
    return flow


def _build_q2() -> LogicalDataflow:
    flow = LogicalDataflow("nexmark_q2")
    flow.chain(
        _source("src_bids", DataType.BID, BID_WIDTH),
        OperatorSpec(
            name="filter_auction",
            op_type=OperatorType.FILTER,
            tuple_width_in=BID_WIDTH,
            tuple_width_out=BID_WIDTH,
            tuple_data_type=DataType.BID,
            selectivity=0.2,
        ),
        _sink("sink", BID_WIDTH),
    )
    return flow


def _build_q3() -> LogicalDataflow:
    flow = LogicalDataflow("nexmark_q3")
    src_auctions = flow.add_operator(_source("src_auctions", DataType.AUCTION, AUCTION_WIDTH))
    src_persons = flow.add_operator(_source("src_persons", DataType.PERSON, PERSON_WIDTH))
    filter_category = flow.add_operator(
        OperatorSpec(
            name="filter_category",
            op_type=OperatorType.FILTER,
            tuple_width_in=AUCTION_WIDTH,
            tuple_width_out=AUCTION_WIDTH,
            tuple_data_type=DataType.AUCTION,
            selectivity=0.25,
        )
    )
    filter_state = flow.add_operator(
        OperatorSpec(
            name="filter_state",
            op_type=OperatorType.FILTER,
            tuple_width_in=PERSON_WIDTH,
            tuple_width_out=PERSON_WIDTH,
            tuple_data_type=DataType.PERSON,
            selectivity=0.2,
        )
    )
    join_seller = flow.add_operator(
        OperatorSpec(
            name="join_seller",
            op_type=OperatorType.JOIN,
            join_key_class=KeyClass.LONG,
            tuple_width_in=(AUCTION_WIDTH + PERSON_WIDTH) / 2,
            tuple_width_out=AUCTION_WIDTH + PERSON_WIDTH,
            tuple_data_type=DataType.JOINED,
            selectivity=0.3,
        )
    )
    out = flow.add_operator(_sink("sink", AUCTION_WIDTH + PERSON_WIDTH))
    flow.connect(src_auctions, filter_category)
    flow.connect(src_persons, filter_state)
    flow.connect(filter_category, join_seller)
    flow.connect(filter_state, join_seller)
    flow.connect(join_seller, out)
    return flow


def _build_q5() -> LogicalDataflow:
    flow = LogicalDataflow("nexmark_q5")
    src = flow.add_operator(_source("src_bids", DataType.BID, BID_WIDTH))
    win_count = flow.add_operator(
        OperatorSpec(
            name="win_count",
            op_type=OperatorType.WINDOW_AGGREGATE,
            window_type=WindowType.SLIDING,
            window_policy=WindowPolicy.TIME,
            window_length=60.0,
            sliding_length=10.0,
            aggregate_class=KeyClass.LONG,
            aggregate_key_class=KeyClass.LONG,
            aggregate_function=AggregateFunction.COUNT,
            tuple_width_in=BID_WIDTH,
            tuple_width_out=48.0,
            tuple_data_type=DataType.AGGREGATED,
            selectivity=0.30,
        )
    )
    win_max = flow.add_operator(
        OperatorSpec(
            name="win_max",
            op_type=OperatorType.WINDOW_AGGREGATE,
            window_type=WindowType.SLIDING,
            window_policy=WindowPolicy.TIME,
            window_length=60.0,
            sliding_length=10.0,
            aggregate_class=KeyClass.LONG,
            aggregate_key_class=KeyClass.LONG,
            aggregate_function=AggregateFunction.MAX,
            tuple_width_in=48.0,
            tuple_width_out=48.0,
            tuple_data_type=DataType.AGGREGATED,
            selectivity=0.2,
        )
    )
    join_hot = flow.add_operator(
        OperatorSpec(
            name="join_hot",
            op_type=OperatorType.JOIN,
            join_key_class=KeyClass.LONG,
            tuple_width_in=48.0,
            tuple_width_out=64.0,
            tuple_data_type=DataType.JOINED,
            selectivity=0.5,
        )
    )
    out = flow.add_operator(_sink("sink", 64.0))
    flow.connect(src, win_count)
    flow.connect(win_count, win_max)
    flow.connect(win_count, join_hot)
    flow.connect(win_max, join_hot)
    flow.connect(join_hot, out)
    return flow


def _build_q8() -> LogicalDataflow:
    flow = LogicalDataflow("nexmark_q8")
    src_persons = flow.add_operator(_source("src_persons", DataType.PERSON, PERSON_WIDTH))
    src_auctions = flow.add_operator(_source("src_auctions", DataType.AUCTION, AUCTION_WIDTH))
    win_join = flow.add_operator(
        OperatorSpec(
            name="win_join",
            op_type=OperatorType.WINDOW_JOIN,
            window_type=WindowType.TUMBLING,
            window_policy=WindowPolicy.TIME,
            window_length=600.0,
            join_key_class=KeyClass.LONG,
            tuple_width_in=(PERSON_WIDTH + AUCTION_WIDTH) / 2,
            tuple_width_out=96.0,
            tuple_data_type=DataType.JOINED,
            selectivity=0.15,
        )
    )
    out = flow.add_operator(_sink("sink", 96.0))
    flow.connect(src_persons, win_join)
    flow.connect(src_auctions, win_join)
    flow.connect(win_join, out)
    return flow


_BUILDERS = {
    "q1": _build_q1,
    "q2": _build_q2,
    "q3": _build_q3,
    "q5": _build_q5,
    "q8": _build_q8,
}


def nexmark_query(name: str, engine: str = "flink") -> StreamingQuery:
    """Build one Nexmark query bound to an engine's Table II rate units."""
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown Nexmark query {name!r}; have {sorted(_BUILDERS)}")
    flow = _BUILDERS[key]()
    return StreamingQuery(
        name=f"nexmark_{key}_{engine}",
        flow=flow,
        rate_units=rate_units("nexmark", key, engine),
        engine=engine,
    )


def nexmark_queries(engine: str = "flink") -> list[StreamingQuery]:
    """All five evaluated Nexmark queries for ``engine``."""
    return [nexmark_query(name, engine) for name in NEXMARK_QUERY_NAMES]
