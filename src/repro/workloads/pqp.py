"""PQP synthetic queries (paper §V-A, templates from ZeroTune [20]).

Three templates are used in the paper's evaluation: **Linear** (8 queries),
**2-way-join** (16 queries) and **3-way-join** (32 queries), featuring
source/filter/join/aggregate operators with tumbling and sliding windows.

Node-count design.  Fig. 5 reports the node-count distribution of the
pre-training DAGs over 61 graphs, which is exactly the five Nexmark queries
plus the 56 PQP queries (e.g. 6.56% = 4/61, 19.67% = 12/61).  The generator
therefore fixes the per-template node counts so the combined corpus
reproduces Fig. 5 *exactly*:

=========  =======  ==========================================
nodes      total    composition
=========  =======  ==========================================
2            4      4 linear
3            5      Q1, Q2 + 3 linear
4            5      Q8 + 1 linear + 3 two-way
5            7      7 two-way
6            8      Q3, Q5 + 6 two-way
7           10      10 three-way
8           12      12 three-way
9            8      8 three-way
10           2      2 three-way
=========  =======  ==========================================

PQP operators are deliberately heavyweight (large ``cost_factor``): the
ZeroTune workload pairs low source rates (Table II: 250-5000 records/s)
with expensive windowed joins, which is what pushes the paper's recommended
parallelism for 2-way/3-way joins into the 30-60 range.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import (
    AggregateFunction,
    DataType,
    KeyClass,
    OperatorSpec,
    OperatorType,
    WindowPolicy,
    WindowType,
)
from repro.utils.rng import seeded_rng, stable_hash
from repro.workloads.query import StreamingQuery
from repro.workloads.rates import rate_units

PQP_TEMPLATES = ("linear", "2-way-join", "3-way-join")

#: Per-template query counts (paper §V-A).
TEMPLATE_SIZES = {"linear": 8, "2-way-join": 16, "3-way-join": 32}

#: Node-count plan per template (see module docstring).
_LINEAR_NODE_PLAN = [2, 2, 2, 2, 3, 3, 3, 4]
_TWO_WAY_NODE_PLAN = [4, 4, 4, 5, 5, 5, 5, 5, 5, 6, 6, 6, 6, 6, 6, 6]
_THREE_WAY_NODE_PLAN = [7] * 10 + [8] * 12 + [9] * 8 + [10] * 2

_PQP_SEED = 9_180_424


def _pick_window(rng: np.random.Generator) -> dict:
    """Random window configuration (tumbling/sliding x count/time)."""
    window_type = WindowType.SLIDING if rng.random() < 0.5 else WindowType.TUMBLING
    policy = WindowPolicy.TIME if rng.random() < 0.5 else WindowPolicy.COUNT
    length = float(rng.choice([10, 30, 60, 120, 300]))
    if window_type is WindowType.SLIDING:
        sliding = length / float(rng.choice([2, 3, 5, 6]))
    else:
        sliding = 0.0
    return {
        "window_type": window_type,
        "window_policy": policy,
        "window_length": length,
        "sliding_length": sliding,
    }


def _pqp_source(name: str, rng: np.random.Generator) -> OperatorSpec:
    width = float(rng.choice([32, 64, 128]))
    return OperatorSpec(
        name=name,
        op_type=OperatorType.SOURCE,
        tuple_width_in=width,
        tuple_width_out=width,
        tuple_data_type=DataType.GENERIC,
        cost_factor=float(rng.uniform(60, 140)),
    )


def _pqp_filter(name: str, width: float, rng: np.random.Generator) -> OperatorSpec:
    return OperatorSpec(
        name=name,
        op_type=OperatorType.FILTER,
        tuple_width_in=width,
        tuple_width_out=width,
        selectivity=float(rng.uniform(0.4, 0.9)),
        cost_factor=float(rng.uniform(250, 550)),
    )


def _pqp_map(name: str, width: float, rng: np.random.Generator) -> OperatorSpec:
    return OperatorSpec(
        name=name,
        op_type=OperatorType.MAP,
        tuple_width_in=width,
        tuple_width_out=width,
        selectivity=1.0,
        cost_factor=float(rng.uniform(200, 450)),
    )


def _pqp_window_join(name: str, width: float, rng: np.random.Generator) -> OperatorSpec:
    return OperatorSpec(
        name=name,
        op_type=OperatorType.WINDOW_JOIN,
        join_key_class=KeyClass(rng.choice([k.value for k in (KeyClass.INT, KeyClass.LONG, KeyClass.STRING)])),
        tuple_width_in=width,
        tuple_width_out=width * 1.5,
        tuple_data_type=DataType.JOINED,
        selectivity=float(rng.uniform(0.3, 0.8)),
        cost_factor=float(rng.uniform(280, 480)),
        **_pick_window(rng),
    )


def _pqp_window_aggregate(name: str, width: float, rng: np.random.Generator) -> OperatorSpec:
    function = AggregateFunction(
        rng.choice([f.value for f in AggregateFunction if f is not AggregateFunction.NONE])
    )
    return OperatorSpec(
        name=name,
        op_type=OperatorType.WINDOW_AGGREGATE,
        aggregate_class=KeyClass.INT,
        aggregate_key_class=KeyClass(rng.choice([k.value for k in (KeyClass.INT, KeyClass.LONG)])),
        aggregate_function=function,
        tuple_width_in=width,
        tuple_width_out=48.0,
        tuple_data_type=DataType.AGGREGATED,
        selectivity=float(rng.uniform(0.1, 0.4)),
        cost_factor=float(rng.uniform(80, 200)),
        **_pick_window(rng),
    )


def _pqp_sink(name: str, width: float) -> OperatorSpec:
    return OperatorSpec(
        name=name,
        op_type=OperatorType.SINK,
        tuple_width_in=width,
        tuple_width_out=width,
        cost_factor=8.0,
    )


def _build_linear(index: int, n_nodes: int, rng: np.random.Generator) -> LogicalDataflow:
    """source -> (filter|map)* -> [window_aggregate] -> [sink], n_nodes total."""
    flow = LogicalDataflow(f"pqp_linear_{index}")
    src = flow.add_operator(_pqp_source("src", rng))
    chain = [src]
    width = src.tuple_width_out
    body = n_nodes - 1
    include_sink = n_nodes >= 3
    include_agg = n_nodes >= 4
    n_middle = body - int(include_sink) - int(include_agg)
    for i in range(n_middle):
        maker = _pqp_filter if rng.random() < 0.7 else _pqp_map
        chain.append(flow.add_operator(maker(f"op_{i}", width, rng)))
    if include_agg:
        chain.append(flow.add_operator(_pqp_window_aggregate("win_agg", width, rng)))
        width = 48.0
    if include_sink:
        chain.append(flow.add_operator(_pqp_sink("sink", width)))
    for upstream, downstream in zip(chain, chain[1:]):
        flow.connect(upstream, downstream)
    return flow


def _build_two_way(index: int, n_nodes: int, rng: np.random.Generator) -> LogicalDataflow:
    """Two sources joined in a window, with 0-2 extra pre/post operators."""
    flow = LogicalDataflow(f"pqp_2way_{index}")
    left = flow.add_operator(_pqp_source("src_left", rng))
    right = flow.add_operator(_pqp_source("src_right", rng))
    width = (left.tuple_width_out + right.tuple_width_out) / 2
    join = flow.add_operator(_pqp_window_join("win_join", width, rng))
    out = flow.add_operator(_pqp_sink("sink", join.tuple_width_out))

    extras = n_nodes - 4
    left_head: OperatorSpec = left
    right_head: OperatorSpec = right
    post: list[OperatorSpec] = []
    if extras >= 1:
        if rng.random() < 0.5:
            left_head = flow.add_operator(_pqp_filter("filter_left", left.tuple_width_out, rng))
            flow.connect(left, left_head)
        else:
            post.append(flow.add_operator(_pqp_window_aggregate("win_agg", join.tuple_width_out, rng)))
    if extras >= 2:
        right_head = flow.add_operator(_pqp_filter("filter_right", right.tuple_width_out, rng))
        flow.connect(right, right_head)

    flow.connect(left_head, join)
    flow.connect(right_head, join)
    tail: OperatorSpec = join
    for op in post:
        flow.connect(tail, op)
        tail = op
    flow.connect(tail, out)
    return flow


def _build_three_way(index: int, n_nodes: int, rng: np.random.Generator) -> LogicalDataflow:
    """Three sources, two cascaded window joins, aggregate, sink, + filters."""
    flow = LogicalDataflow(f"pqp_3way_{index}")
    srcs = [flow.add_operator(_pqp_source(f"src_{tag}", rng)) for tag in "abc"]
    width = float(np.mean([s.tuple_width_out for s in srcs]))
    join_ab = flow.add_operator(_pqp_window_join("join_ab", width, rng))
    join_abc = flow.add_operator(_pqp_window_join("join_abc", width * 1.25, rng))
    agg = flow.add_operator(_pqp_window_aggregate("win_agg", join_abc.tuple_width_out, rng))
    out = flow.add_operator(_pqp_sink("sink", 48.0))

    n_filters = n_nodes - 7
    heads = list(srcs)
    for i in range(n_filters):
        filt = flow.add_operator(_pqp_filter(f"filter_{'abc'[i]}", srcs[i].tuple_width_out, rng))
        flow.connect(srcs[i], filt)
        heads[i] = filt

    flow.connect(heads[0], join_ab)
    flow.connect(heads[1], join_ab)
    flow.connect(join_ab, join_abc)
    flow.connect(heads[2], join_abc)
    flow.connect(join_abc, agg)
    flow.connect(agg, out)
    return flow


_NODE_PLANS = {
    "linear": _LINEAR_NODE_PLAN,
    "2-way-join": _TWO_WAY_NODE_PLAN,
    "3-way-join": _THREE_WAY_NODE_PLAN,
}


def pqp_template_size(template: str) -> int:
    """How many queries :func:`pqp_queries` generates for ``template``
    (without building them — cheap enough for eager plan validation)."""
    if template not in _NODE_PLANS:
        raise KeyError(f"unknown PQP template {template!r}; have {PQP_TEMPLATES}")
    return len(_NODE_PLANS[template])


def pqp_queries(template: str, seed: int = _PQP_SEED) -> list[StreamingQuery]:
    """Generate the paper's query set for one PQP template (Flink only)."""
    if template not in PQP_TEMPLATES:
        raise KeyError(f"unknown PQP template {template!r}; have {PQP_TEMPLATES}")
    units = rate_units("pqp", template, "flink")
    rng = seeded_rng(seed + stable_hash(template, 10_000))
    queries: list[StreamingQuery] = []
    if template == "linear":
        plan, builder = _LINEAR_NODE_PLAN, _build_linear
    elif template == "2-way-join":
        plan, builder = _TWO_WAY_NODE_PLAN, _build_two_way
    else:
        plan, builder = _THREE_WAY_NODE_PLAN, _build_three_way
    for index, n_nodes in enumerate(plan):
        flow = builder(index, n_nodes, rng)
        queries.append(
            StreamingQuery(
                name=flow.name,
                flow=flow,
                rate_units=dict(units),
                engine="flink",
            )
        )
    return queries


def pqp_query_set(seed: int = _PQP_SEED) -> dict[str, list[StreamingQuery]]:
    """All 56 PQP queries, keyed by template."""
    return {template: pqp_queries(template, seed=seed) for template in PQP_TEMPLATES}
