"""Benchmark workloads: Nexmark queries, PQP synthetic queries, rate patterns.

Implements the paper's §V-A workload setup: Nexmark Q1/Q2/Q3/Q5/Q8, the PQP
query templates of ZeroTune (Linear, 2-way-join, 3-way-join), the Table II
source-rate units, and the periodic source-rate pattern used to drive every
tuning campaign.
"""

from repro.workloads.rates import (
    BASIC_CYCLE,
    RateSchedule,
    periodic_multipliers,
    rate_units,
)
from repro.workloads.nexmark import nexmark_queries, nexmark_query
from repro.workloads.pqp import pqp_queries, pqp_query_set
from repro.workloads.query import StreamingQuery

__all__ = [
    "BASIC_CYCLE",
    "RateSchedule",
    "StreamingQuery",
    "nexmark_queries",
    "nexmark_query",
    "periodic_multipliers",
    "pqp_queries",
    "pqp_query_set",
    "rate_units",
]
