"""Source-rate units (Table II) and the periodic rate pattern (§V-A).

The paper drives every query with a periodic pattern: a basic cycle of ten
multipliers ``[3, 7, 4, 2, 1, 10, 8, 5, 6, 9]`` (in units of Wu), replicated
to a sequence of 20, with six permutations generated per query — 120 source
rate changes in total.

The pattern generator now lives in :mod:`repro.scenarios.library` as the
``periodic`` family of the ``TRACES`` registry; :data:`BASIC_CYCLE` and
:func:`periodic_multipliers` stay importable from here for back-compat
(lazily, so the workload layer does not pull in the scenario plane just
to look up Table II units).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BASIC_CYCLE", "RateSchedule", "periodic_multipliers", "rate_units"]

#: Table II — source rate units Wu in records/s, keyed by
#: (workload, query, engine) -> {source name: Wu}.
_RATE_UNITS: dict[tuple[str, str, str], dict[str, float]] = {
    ("nexmark", "q1", "flink"): {"src_bids": 700_000.0},
    ("nexmark", "q1", "timely"): {"src_bids": 9_000_000.0},
    ("nexmark", "q2", "flink"): {"src_bids": 900_000.0},
    ("nexmark", "q2", "timely"): {"src_bids": 9_000_000.0},
    ("nexmark", "q3", "flink"): {"src_auctions": 200_000.0, "src_persons": 40_000.0},
    ("nexmark", "q3", "timely"): {"src_auctions": 5_000_000.0, "src_persons": 5_000_000.0},
    ("nexmark", "q5", "flink"): {"src_bids": 80_000.0},
    ("nexmark", "q5", "timely"): {"src_bids": 10_000_000.0},
    ("nexmark", "q8", "flink"): {"src_auctions": 100_000.0, "src_persons": 60_000.0},
    ("nexmark", "q8", "timely"): {"src_auctions": 4_000_000.0, "src_persons": 4_000_000.0},
    ("pqp", "linear", "flink"): {"src": 5_000.0},
    ("pqp", "2-way-join", "flink"): {"src_left": 500.0, "src_right": 500.0},
    ("pqp", "3-way-join", "flink"): {"src_a": 250.0, "src_b": 250.0, "src_c": 250.0},
}


def rate_units(workload: str, query: str, engine: str) -> dict[str, float]:
    """Look up the Table II rate units for a query on an engine."""
    try:
        return dict(_RATE_UNITS[(workload, query, engine)])
    except KeyError:
        raise KeyError(
            f"no Table II rate units for {workload}/{query} on {engine}"
        ) from None


def __getattr__(name: str):
    # Lazy back-compat re-exports of the relocated §V-A generator.
    if name in ("BASIC_CYCLE", "periodic_multipliers"):
        from repro.scenarios import library

        return getattr(library, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class RateSchedule:
    """A concrete schedule of source-rate maps for one query."""

    query_name: str
    steps: tuple[dict[str, float], ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @classmethod
    def for_query(
        cls,
        query,
        n_permutations: int = 6,
        seed: int | None = None,
    ) -> "RateSchedule":
        """Build the periodic schedule for a :class:`StreamingQuery`."""
        from repro.scenarios.library import periodic_multipliers

        multipliers = periodic_multipliers(n_permutations=n_permutations, seed=seed)
        steps = tuple(query.rates_at(m) for m in multipliers)
        return cls(query_name=query.name, steps=steps)
