"""Source-rate units (Table II) and the periodic rate pattern (§V-A).

The paper drives every query with a periodic pattern: a basic cycle of ten
multipliers ``[3, 7, 4, 2, 1, 10, 8, 5, 6, 9]`` (in units of Wu), replicated
to a sequence of 20, with six permutations generated per query — 120 source
rate changes in total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import seeded_rng

#: §V-A basic cycle of source-rate multipliers (x Wu).
BASIC_CYCLE: tuple[int, ...] = (3, 7, 4, 2, 1, 10, 8, 5, 6, 9)

#: Table II — source rate units Wu in records/s, keyed by
#: (workload, query, engine) -> {source name: Wu}.
_RATE_UNITS: dict[tuple[str, str, str], dict[str, float]] = {
    ("nexmark", "q1", "flink"): {"src_bids": 700_000.0},
    ("nexmark", "q1", "timely"): {"src_bids": 9_000_000.0},
    ("nexmark", "q2", "flink"): {"src_bids": 900_000.0},
    ("nexmark", "q2", "timely"): {"src_bids": 9_000_000.0},
    ("nexmark", "q3", "flink"): {"src_auctions": 200_000.0, "src_persons": 40_000.0},
    ("nexmark", "q3", "timely"): {"src_auctions": 5_000_000.0, "src_persons": 5_000_000.0},
    ("nexmark", "q5", "flink"): {"src_bids": 80_000.0},
    ("nexmark", "q5", "timely"): {"src_bids": 10_000_000.0},
    ("nexmark", "q8", "flink"): {"src_auctions": 100_000.0, "src_persons": 60_000.0},
    ("nexmark", "q8", "timely"): {"src_auctions": 4_000_000.0, "src_persons": 4_000_000.0},
    ("pqp", "linear", "flink"): {"src": 5_000.0},
    ("pqp", "2-way-join", "flink"): {"src_left": 500.0, "src_right": 500.0},
    ("pqp", "3-way-join", "flink"): {"src_a": 250.0, "src_b": 250.0, "src_c": 250.0},
}


def rate_units(workload: str, query: str, engine: str) -> dict[str, float]:
    """Look up the Table II rate units for a query on an engine."""
    try:
        return dict(_RATE_UNITS[(workload, query, engine)])
    except KeyError:
        raise KeyError(
            f"no Table II rate units for {workload}/{query} on {engine}"
        ) from None


def periodic_multipliers(
    n_permutations: int = 6,
    cycle: tuple[int, ...] = BASIC_CYCLE,
    seed: int | None = None,
) -> list[int]:
    """The §V-A rate-multiplier sequence.

    Each permutation of the basic cycle is replicated once (20 entries);
    ``n_permutations`` permutations concatenate to ``20 * n`` multipliers
    (120 at the paper's scale).  The first permutation is the identity so
    small campaigns still start with the canonical cycle.
    """
    if n_permutations < 1:
        raise ValueError("n_permutations must be >= 1")
    rng = seeded_rng(seed)
    sequence: list[int] = []
    for index in range(n_permutations):
        if index == 0:
            perm = list(cycle)
        else:
            perm = [int(x) for x in rng.permutation(np.asarray(cycle))]
        sequence.extend(perm + perm)
    return sequence


@dataclass(frozen=True)
class RateSchedule:
    """A concrete schedule of source-rate maps for one query."""

    query_name: str
    steps: tuple[dict[str, float], ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @classmethod
    def for_query(
        cls,
        query,
        n_permutations: int = 6,
        seed: int | None = None,
    ) -> "RateSchedule":
        """Build the periodic schedule for a :class:`StreamingQuery`."""
        multipliers = periodic_multipliers(n_permutations=n_permutations, seed=seed)
        steps = tuple(query.rates_at(m) for m in multipliers)
        return cls(query_name=query.name, steps=steps)
