"""A streaming query: a dataflow plus its source-rate units."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.graph import LogicalDataflow


@dataclass(frozen=True)
class StreamingQuery:
    """A benchmark query bound to an engine's Table II rate units.

    ``rate_units`` maps each source operator name to its Wu (records/s);
    multiplying by a pattern multiplier in [1, 10] yields the instantaneous
    source rates of a tuning campaign step.
    """

    name: str
    flow: LogicalDataflow
    rate_units: dict[str, float]
    engine: str  # "flink" or "timely"

    def __post_init__(self) -> None:
        self.flow.validate()
        sources = set(self.flow.sources())
        configured = set(self.rate_units)
        if sources != configured:
            raise ValueError(
                f"{self.name}: rate units {sorted(configured)} do not match "
                f"sources {sorted(sources)}"
            )

    def rates_at(self, multiplier: float) -> dict[str, float]:
        """Source rates at ``multiplier`` x Wu."""
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        return {src: unit * multiplier for src, unit in self.rate_units.items()}
