"""Directed message passing and FUSE layers (paper Eq. 1-3).

Dataflow edges carry meaning in both directions — an operator's bottleneck
status depends on what its *upstreams* feed it and on what its
*downstreams* can absorb — so aggregation is split into in-neighbour and
out-neighbour means with separate weights:

    m_in(v)  = mean{ h(u) : u -> v },     m_out(v) = mean{ h(w) : v -> w }
    h'(v)    = ReLU( h(v) W_self + m_in(v) W_in + m_out(v) W_out + b )

The FUSE layer implements Eq. 3: it concatenates the (normalised)
parallelism degree onto each node representation and applies a non-linear
transform that restores the hidden dimensionality, so the fused vector can
"seamlessly participate in subsequent message-passing iterations".
"""

from __future__ import annotations

import numpy as np

from repro.gnn.layers import Linear, Parameter, ReLU, glorot


class MessagePassingLayer:
    """One directed mean-aggregation message-passing step."""

    def __init__(self, rng: np.random.Generator, hidden_dim: int) -> None:
        self.w_self = Parameter(glorot(rng, hidden_dim, hidden_dim))
        self.w_in = Parameter(glorot(rng, hidden_dim, hidden_dim))
        self.w_out = Parameter(glorot(rng, hidden_dim, hidden_dim))
        self.bias = Parameter(np.zeros(hidden_dim))
        self._cache: tuple | None = None

    def forward(
        self,
        h: np.ndarray,
        agg_in: np.ndarray,
        agg_out: np.ndarray,
    ) -> np.ndarray:
        """``agg_in``/``agg_out`` are row-normalised n x n aggregation mats."""
        m_in = agg_in @ h
        m_out = agg_out @ h
        z = (
            h @ self.w_self.value
            + m_in @ self.w_in.value
            + m_out @ self.w_out.value
            + self.bias.value
        )
        mask = z > 0
        self._cache = (h, m_in, m_out, agg_in, agg_out, mask)
        return np.where(mask, z, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        h, m_in, m_out, agg_in, agg_out, mask = self._cache
        dz = np.where(mask, grad_output, 0.0)
        self.w_self.grad += h.T @ dz
        self.w_in.grad += m_in.T @ dz
        self.w_out.grad += m_out.T @ dz
        self.bias.grad += dz.sum(axis=0)
        dh = dz @ self.w_self.value.T
        dh += agg_in.T @ (dz @ self.w_in.value.T)
        dh += agg_out.T @ (dz @ self.w_out.value.T)
        return dh

    def parameters(self) -> list[Parameter]:
        return [self.w_self, self.w_in, self.w_out, self.bias]


class FuseLayer:
    """Eq. 3: h'' = FUSE(h' || p), preserving the hidden dimension."""

    def __init__(self, rng: np.random.Generator, hidden_dim: int) -> None:
        self._linear = Linear(rng, hidden_dim + 1, hidden_dim)
        self._relu = ReLU()

    def forward(self, h: np.ndarray, parallelism: np.ndarray) -> np.ndarray:
        """``parallelism`` is an (n, 1) column of normalised degrees."""
        if parallelism.ndim == 1:
            parallelism = parallelism[:, None]
        fused = np.concatenate([h, parallelism], axis=1)
        return self._relu.forward(self._linear.forward(fused))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Returns the gradient w.r.t. h (the parallelism column is input)."""
        grad_fused = self._linear.backward(self._relu.backward(grad_output))
        return grad_fused[:, :-1]

    def parameters(self) -> list[Parameter]:
        return self._linear.parameters()


def normalized_adjacency(
    n_nodes: int,
    edges: list[tuple[int, int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Row-normalised in/out aggregation matrices for mean aggregation.

    ``agg_in[v, u] = 1/|in(v)|`` for each edge u -> v, and symmetrically
    ``agg_out[v, w] = 1/|out(v)|`` for each edge v -> w.
    """
    agg_in = np.zeros((n_nodes, n_nodes))
    agg_out = np.zeros((n_nodes, n_nodes))
    for u, v in edges:
        agg_in[v, u] = 1.0
        agg_out[u, v] = 1.0
    for matrix in (agg_in, agg_out):
        degree = matrix.sum(axis=1, keepdims=True)
        np.divide(matrix, degree, out=matrix, where=degree > 0)
    return agg_in, agg_out
