"""Adam optimiser over :class:`~repro.gnn.layers.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.gnn.layers import Parameter


class Adam:
    """Standard Adam with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must lie in [0, 1)")
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for i, parameter in enumerate(self.parameters):
            grad = parameter.grad
            if self.weight_decay > 0:
                parameter.value *= 1.0 - self.learning_rate * self.weight_decay
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            parameter.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
