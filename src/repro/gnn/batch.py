"""Batched GNN inference over many graph samples at once.

The message-passing layers operate on an ``(n, n)`` aggregation matrix and
an ``(n, d)`` feature matrix; since dataflow DAGs have no cross-graph
edges, a *batch* of samples is just one big graph whose aggregation matrix
is block-diagonal.  Stacking ``k`` samples therefore turns ``k`` encoder
forward passes into one — the warm-up dataset construction of
:mod:`repro.core.finetune` and the service layer's bulk embedding requests
use this to amortise the per-call Python and BLAS dispatch overhead.

The batched result is numerically equivalent to per-sample encoding (the
extra off-block coefficients are exact zeros), though the larger matrix
shapes may change BLAS accumulation order in the last ulp; callers that
require bit-identical results to the per-sample path should keep using
:meth:`BottleneckGNN.encode` sample by sample.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.gnn.data import GraphSample


@dataclass
class BatchedSamples:
    """Several :class:`GraphSample` objects merged into one block graph."""

    merged: GraphSample
    offsets: list[int]          # start row of each sample, plus total length

    @property
    def n_samples(self) -> int:
        return len(self.offsets) - 1

    def split(self, matrix: np.ndarray) -> list[np.ndarray]:
        """Slice a per-node result matrix back into per-sample blocks."""
        return [
            matrix[self.offsets[i]:self.offsets[i + 1]]
            for i in range(self.n_samples)
        ]


def merge_samples(samples: Sequence[GraphSample]) -> BatchedSamples:
    """Assemble the block-diagonal batch graph of ``samples``."""
    if not samples:
        raise ValueError("cannot batch zero samples")
    sizes = [sample.n_nodes for sample in samples]
    total = sum(sizes)
    offsets = [0]
    for size in sizes:
        offsets.append(offsets[-1] + size)
    features = np.concatenate([sample.features for sample in samples], axis=0)
    agg_in = np.zeros((total, total))
    agg_out = np.zeros((total, total))
    for sample, start in zip(samples, offsets):
        stop = start + sample.n_nodes
        agg_in[start:stop, start:stop] = sample.agg_in
        agg_out[start:stop, start:stop] = sample.agg_out
    merged = GraphSample(
        name="batch:" + ",".join(sample.name for sample in samples),
        node_names=[
            f"{index}:{name}"
            for index, sample in enumerate(samples)
            for name in sample.node_names
        ],
        features=features,
        agg_in=agg_in,
        agg_out=agg_out,
        parallelism=np.concatenate([sample.parallelism for sample in samples]),
        labels=np.concatenate([sample.labels for sample in samples]),
        mask=np.concatenate([sample.mask for sample in samples]),
    )
    return BatchedSamples(merged=merged, offsets=offsets)


def encode_samples(
    encoder,
    samples: Sequence[GraphSample],
    parallelism_aware: bool = False,
    max_batch_nodes: int = 128,
) -> list[np.ndarray]:
    """Parallelism-agnostic embeddings for many samples in few passes.

    ``encoder`` is a :class:`repro.gnn.model.BottleneckGNN` (or anything
    exposing ``encode``).  Samples are greedily packed into block-diagonal
    batches of at most ``max_batch_nodes`` nodes (the dense block matrix is
    O(total²), so unbounded packing would swamp the saved dispatch
    overhead); each batch costs one encoder pass.  The default cap sits at
    the empirical crossover for this model's dataflow-sized graphs — the
    ``gnn_encode_*`` / ``warmup_dataset_*`` benchmarks of ``repro perf``
    measure it: around 64–128 nodes the batched pass is ~2x the per-sample
    loop, while multi-hundred-node dense blocks fall *behind* it (the
    O(total²) zero blocks outweigh the saved dispatch).
    """
    if max_batch_nodes < 1:
        raise ValueError("max_batch_nodes must be >= 1")
    results: list[np.ndarray] = []
    chunk: list[GraphSample] = []
    chunk_nodes = 0

    def flush() -> None:
        nonlocal chunk, chunk_nodes
        if not chunk:
            return
        if len(chunk) == 1:
            results.append(encoder.encode(chunk[0], parallelism_aware))
        else:
            batch = merge_samples(chunk)
            merged = encoder.encode(batch.merged, parallelism_aware)
            results.extend(batch.split(merged))
        chunk = []
        chunk_nodes = 0

    for sample in samples:
        if chunk and chunk_nodes + sample.n_nodes > max_batch_nodes:
            flush()
        chunk.append(sample)
        chunk_nodes += sample.n_nodes
    flush()
    return results
