"""Graph samples: the GNN-ready form of one execution-history record."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.features import FeatureEncoder
from repro.dataflow.graph import LogicalDataflow
from repro.gnn.mpnn import normalized_adjacency


@dataclass
class GraphSample:
    """One dataflow execution as GNN input.

    ``labels`` follow Algorithm 1: 1 bottleneck, 0 not, -1 unlabelled;
    ``mask`` selects the labelled operators that contribute to the loss.
    ``parallelism`` is normalised to [0, 1] for the FUSE layer.
    """

    name: str
    node_names: list[str]
    features: np.ndarray          # (n, d) initial feature vectors h^(0)
    agg_in: np.ndarray            # (n, n) row-normalised in-aggregation
    agg_out: np.ndarray           # (n, n) row-normalised out-aggregation
    parallelism: np.ndarray       # (n,) normalised degrees
    labels: np.ndarray            # (n,) in {-1, 0, 1}
    mask: np.ndarray              # (n,) bool: labels != -1

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    @property
    def n_labelled(self) -> int:
        return int(self.mask.sum())

    def index_of(self, operator_name: str) -> int:
        return self.node_names.index(operator_name)


def build_sample(
    flow: LogicalDataflow,
    source_rates: dict[str, float],
    parallelisms: dict[str, int],
    labels: dict[str, int],
    encoder: FeatureEncoder,
    max_parallelism: int,
    name: str | None = None,
) -> GraphSample:
    """Assemble a :class:`GraphSample` from an execution record.

    ``labels`` may omit operators (treated as unlabelled, -1).
    """
    features, order = encoder.encode_dataflow(flow, source_rates)
    index = {node: i for i, node in enumerate(order)}
    edges = [(index[u], index[v]) for u, v in flow.edges]
    agg_in, agg_out = normalized_adjacency(len(order), edges)
    parallelism = np.array(
        [
            encoder.normalize_parallelism(parallelisms[node], max_parallelism)
            for node in order
        ]
    )
    label_array = np.array([labels.get(node, -1) for node in order], dtype=np.int64)
    return GraphSample(
        name=name if name is not None else flow.name,
        node_names=order,
        features=features,
        agg_in=agg_in,
        agg_out=agg_out,
        parallelism=parallelism,
        labels=label_array,
        mask=label_array >= 0,
    )
