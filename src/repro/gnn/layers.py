"""Dense layers with explicit forward/backward passes.

Each layer caches what its backward pass needs from the most recent
forward call; the training loop therefore runs forward -> loss -> backward
per graph before touching the next one (gradients accumulate across a
mini-batch in the parameters' ``grad`` buffers).
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient buffer."""

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear:
    """Affine map y = x W + b."""

    def __init__(self, rng: np.random.Generator, in_dim: int, out_dim: int) -> None:
        self.weight = Parameter(glorot(rng, in_dim, out_dim))
        self.bias = Parameter(np.zeros(out_dim))
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._input is not None, "backward before forward"
        self.weight.grad += self._input.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU:
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward before forward"
        return np.where(self._mask, grad_output, 0.0)

    def parameters(self) -> list[Parameter]:
        return []
