"""Pre-training loop for the per-cluster bottleneck GNNs (paper §IV-A)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gnn.data import GraphSample
from repro.gnn.loss import bce_with_logits
from repro.gnn.model import BottleneckGNN, EncoderConfig
from repro.gnn.optim import Adam
from repro.utils.rng import seeded_rng


@dataclass
class TrainingReport:
    """Loss/accuracy trajectory of one pre-training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


def train_bottleneck_gnn(
    samples: list[GraphSample],
    config: EncoderConfig | None = None,
    epochs: int = 40,
    batch_size: int = 8,
    learning_rate: float = 5e-3,
    weight_decay: float = 1e-4,
    pos_weight: float | None = None,
    max_pos_weight: float = 20.0,
    seed: int = 7,
) -> tuple[BottleneckGNN, TrainingReport]:
    """Pre-train a bottleneck classifier on labelled graph samples.

    Training is supervised classification with the parallelism-aware
    forward path (labels were produced under concrete parallelism degrees,
    so the model must see them — via FUSE, never via h^(0)).

    ``pos_weight=None`` auto-balances: positives are weighted by the
    negative/positive ratio of the labelled corpus (capped), since
    bottleneck labels are rare in randomly-provisioned histories.
    """
    labelled = [s for s in samples if s.n_labelled > 0]
    if not labelled:
        raise ValueError("no labelled samples to train on")
    if pos_weight is None:
        n_pos = sum(int((s.labels[s.mask] == 1).sum()) for s in labelled)
        n_neg = sum(int((s.labels[s.mask] == 0).sum()) for s in labelled)
        if n_pos == 0:
            pos_weight = 1.0
        else:
            pos_weight = float(min(max(n_neg / n_pos, 1.0), max_pos_weight))
    if config is None:
        config = EncoderConfig(input_dim=labelled[0].features.shape[1], seed=seed)
    model = BottleneckGNN(config)
    optimizer = Adam(model.parameters(), learning_rate=learning_rate, weight_decay=weight_decay)
    rng = seeded_rng(seed + 99)
    report = TrainingReport()

    for _ in range(epochs):
        order = rng.permutation(len(labelled))
        epoch_loss = 0.0
        n_correct = 0
        n_total = 0
        optimizer.zero_grad()
        in_batch = 0
        for position, sample_index in enumerate(order):
            sample = labelled[sample_index]
            logits = model.forward(sample, parallelism_aware=True)
            loss, grad = bce_with_logits(
                logits, sample.labels, sample.mask, pos_weight=pos_weight
            )
            model.backward(grad)
            epoch_loss += loss * sample.n_labelled
            predictions = (logits.reshape(-1) > 0)[sample.mask]
            n_correct += int((predictions == (sample.labels[sample.mask] == 1)).sum())
            n_total += sample.n_labelled
            in_batch += 1
            if in_batch == batch_size or position == len(order) - 1:
                _scale_gradients(model, 1.0 / in_batch)
                optimizer.step()
                optimizer.zero_grad()
                in_batch = 0
        report.losses.append(epoch_loss / max(n_total, 1))
        report.accuracies.append(n_correct / max(n_total, 1))
    return model, report


def evaluate_accuracy(model: BottleneckGNN, samples: list[GraphSample]) -> float:
    """Labelled-operator accuracy of ``model`` over ``samples``."""
    n_correct = 0
    n_total = 0
    for sample in samples:
        if sample.n_labelled == 0:
            continue
        probs = model.predict_probabilities(sample, parallelism_aware=True)
        predictions = (probs > 0.5)[sample.mask]
        n_correct += int((predictions == (sample.labels[sample.mask] == 1)).sum())
        n_total += sample.n_labelled
    return n_correct / max(n_total, 1)


def _scale_gradients(model: BottleneckGNN, factor: float) -> None:
    for parameter in model.parameters():
        parameter.grad *= factor
