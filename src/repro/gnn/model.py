"""The bottleneck-prediction GNN (paper §III/§IV-A).

Architecture:

* input embedding: Linear(d -> hidden) + ReLU over the Table I features,
* T directed message-passing layers (Eq. 1-2),
* a jumping-knowledge readout concatenating the input embedding with the
  final message-passing state (the paper's GNN background cites
  jumping-knowledge networks [27]; without the skip, per-operator detail —
  rate, type — washes out after aggregation and the fine-tuned layer
  cannot localise bottleneck thresholds),
* the FUSE layer (Eq. 3) injecting the parallelism degree — on the
  *parallelism-aware* path used during pre-training,
* a two-layer MLP + sigmoid head predicting the bottleneck indicator.

Where FUSE applies is configurable.  §III's "Strategy for Handling
Operator Parallelism" states that "parallelism is incorporated into the
model only after all other features are encoded", so the default fuses
once, after the readout; ``fuse_per_step=True`` reproduces the literal
per-iteration Eq. 3 variant.  The default is what makes the fine-tuning
contract sound: M_f consumes ``[h_v, p]`` where ``h_v`` is exactly the
representation the pre-training loss shaped for "combine me with p to
decide bottleneck-ness".

The *parallelism-agnostic* path stops at the readout; Algorithm 2 (line 7)
reads those embeddings as the ``h_v`` features of the fine-tuned model
``M_f``.  Only the head is replaced/updated during online fine-tuning; the
encoder stays frozen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gnn.data import GraphSample
from repro.gnn.layers import Linear, Parameter, ReLU
from repro.gnn.loss import sigmoid
from repro.gnn.mpnn import FuseLayer, MessagePassingLayer
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class EncoderConfig:
    """Hyper-parameters of the GNN encoder."""

    input_dim: int
    hidden_dim: int = 32
    n_message_passing: int = 2
    head_hidden_dim: int = 16
    jumping_knowledge: bool = True
    fuse_per_step: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        if self.input_dim < 1 or self.hidden_dim < 1 or self.head_hidden_dim < 1:
            raise ValueError("dimensions must be positive")
        if self.n_message_passing < 1:
            raise ValueError("need at least one message-passing step")

    @property
    def embedding_dim(self) -> int:
        """Dimension of the operator embedding h_v exposed to M_f."""
        if self.jumping_knowledge:
            return 2 * self.hidden_dim
        return self.hidden_dim


class BottleneckEncoder:
    """Input embedding + T message-passing steps + readout (+ FUSE)."""

    def __init__(self, config: EncoderConfig) -> None:
        rng = seeded_rng(config.seed)
        self.config = config
        self.embed = Linear(rng, config.input_dim, config.hidden_dim)
        self.embed_act = ReLU()
        self.mp_layers = [
            MessagePassingLayer(rng, config.hidden_dim)
            for _ in range(config.n_message_passing)
        ]
        if config.fuse_per_step:
            self.fuse_layers = [
                FuseLayer(rng, config.hidden_dim)
                for _ in range(config.n_message_passing)
            ]
        else:
            self.fuse_layers = []
        self.fuse_final = FuseLayer(rng, config.embedding_dim)
        self._used_fuse = False

    def forward(self, sample: GraphSample, parallelism_aware: bool) -> np.ndarray:
        """Node embeddings; FUSE is applied only on the aware path."""
        e = self.embed_act.forward(self.embed.forward(sample.features))
        h = e
        per_step = parallelism_aware and self.config.fuse_per_step
        for step, mp_layer in enumerate(self.mp_layers):
            h = mp_layer.forward(h, sample.agg_in, sample.agg_out)
            if per_step:
                h = self.fuse_layers[step].forward(h, sample.parallelism)
        if self.config.jumping_knowledge:
            z = np.concatenate([e, h], axis=1)
        else:
            z = h
        self._used_fuse = parallelism_aware
        if parallelism_aware:
            z = self.fuse_final.forward(z, sample.parallelism)
        return z

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        if self._used_fuse:
            grad = self.fuse_final.backward(grad)
        hidden = self.config.hidden_dim
        if self.config.jumping_knowledge:
            grad_embed_skip = grad[:, :hidden]
            grad_h = grad[:, hidden:]
        else:
            grad_embed_skip = None
            grad_h = grad
        per_step = self._used_fuse and self.config.fuse_per_step
        for step in range(len(self.mp_layers) - 1, -1, -1):
            if per_step:
                grad_h = self.fuse_layers[step].backward(grad_h)
            grad_h = self.mp_layers[step].backward(grad_h)
        if grad_embed_skip is not None:
            grad_h = grad_h + grad_embed_skip
        return self.embed.backward(self.embed_act.backward(grad_h))

    def parameters(self) -> list[Parameter]:
        params = self.embed.parameters()
        for layer in self.mp_layers:
            params.extend(layer.parameters())
        for layer in self.fuse_layers:
            params.extend(layer.parameters())
        params.extend(self.fuse_final.parameters())
        return params

    @property
    def hidden_dim(self) -> int:
        return self.config.hidden_dim


class PredictionHead:
    """Two-layer MLP emitting bottleneck logits (sigmoid lives in the loss)."""

    def __init__(self, rng: np.random.Generator, hidden_dim: int, head_hidden_dim: int) -> None:
        self.fc1 = Linear(rng, hidden_dim, head_hidden_dim)
        self.act = ReLU()
        self.fc2 = Linear(rng, head_hidden_dim, 1)

    def forward(self, h: np.ndarray) -> np.ndarray:
        return self.fc2.forward(self.act.forward(self.fc1.forward(h)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(grad_output)))

    def parameters(self) -> list[Parameter]:
        return self.fc1.parameters() + self.fc2.parameters()


class BottleneckGNN:
    """Encoder + head: the per-cluster pre-trained model."""

    def __init__(self, config: EncoderConfig) -> None:
        rng = seeded_rng(config.seed + 1)
        self.encoder = BottleneckEncoder(config)
        self.head = PredictionHead(rng, config.embedding_dim, config.head_hidden_dim)

    def forward(self, sample: GraphSample, parallelism_aware: bool = True) -> np.ndarray:
        """Bottleneck logits, shape (n, 1)."""
        h = self.encoder.forward(sample, parallelism_aware)
        return self.head.forward(h)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad_h = self.head.backward(grad_logits)
        self.encoder.backward(grad_h)

    def predict_probabilities(self, sample: GraphSample, parallelism_aware: bool = True) -> np.ndarray:
        """Per-operator bottleneck probabilities, shape (n,)."""
        return sigmoid(self.forward(sample, parallelism_aware).reshape(-1))

    def encode(self, sample: GraphSample, parallelism_aware: bool = False) -> np.ndarray:
        """Node embeddings — the fine-tuning features h_v (agnostic path)."""
        return self.encoder.forward(sample, parallelism_aware)

    def predict_probabilities_grid(
        self, sample: GraphSample, parallelism_grid: np.ndarray
    ) -> np.ndarray:
        """Per-operator probabilities for many uniform parallelism degrees.

        Returns shape ``(len(parallelism_grid), n_nodes)``: row ``i`` equals
        ``predict_probabilities`` with every node's (normalised) degree set
        to ``parallelism_grid[i]``.  With the default fuse-after-readout
        architecture the message-passing readout is independent of the
        degree, so the expensive encoder runs **once** and only the FUSE
        layer and head are re-applied per grid point — the distillation
        loop's grid probe drops from ``len(grid)`` encoder passes to one.
        ``fuse_per_step`` models fall back to a full forward per degree.
        """
        grid = np.asarray(parallelism_grid, dtype=np.float64)
        if self.config.fuse_per_step:
            rows = []
            original = sample.parallelism
            try:
                for p_norm in grid:
                    sample.parallelism = np.full(sample.n_nodes, p_norm)
                    rows.append(self.predict_probabilities(sample, parallelism_aware=True))
            finally:
                sample.parallelism = original
            return np.stack(rows)
        z = self.encoder.forward(sample, parallelism_aware=False)
        rows = []
        for p_norm in grid:
            fused = self.encoder.fuse_final.forward(z, np.full(sample.n_nodes, p_norm))
            rows.append(sigmoid(self.head.forward(fused).reshape(-1)))
        return np.stack(rows)

    def parameters(self) -> list[Parameter]:
        return self.encoder.parameters() + self.head.parameters()

    @property
    def config(self) -> EncoderConfig:
        return self.encoder.config
