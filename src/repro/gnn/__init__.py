"""Numpy GNN micro-framework for operator-level bottleneck prediction.

Implements the paper's §IV-A model family from scratch (no torch/DGL in
this offline environment): directed message passing (Eq. 1-2), the FUSE
parallelism-injection layer (Eq. 3), a two-layer MLP + sigmoid prediction
head, binary cross-entropy on labelled operators, and Adam.  Graphs here
are tiny (< 20 nodes), so dense per-graph matrices with handwritten
backward passes are both simple and fast.
"""

from repro.gnn.data import GraphSample, build_sample
from repro.gnn.layers import Linear, Parameter, ReLU
from repro.gnn.model import BottleneckGNN, EncoderConfig
from repro.gnn.loss import bce_with_logits
from repro.gnn.optim import Adam
from repro.gnn.train import TrainingReport, train_bottleneck_gnn

__all__ = [
    "Adam",
    "BottleneckGNN",
    "EncoderConfig",
    "GraphSample",
    "Linear",
    "Parameter",
    "ReLU",
    "TrainingReport",
    "bce_with_logits",
    "build_sample",
    "train_bottleneck_gnn",
]
