"""Binary cross-entropy over labelled operators (paper §IV-A).

The paper averages the per-operator BCE over the labelled set O_label.  We
work in logit space for numerical stability and return the analytic
gradient alongside the loss.
"""

from __future__ import annotations

import numpy as np


def bce_with_logits(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    pos_weight: float = 1.0,
) -> tuple[float, np.ndarray]:
    """Masked mean BCE and its gradient w.r.t. the logits.

    ``logits`` is (n,) or (n, 1); ``labels`` in {-1, 0, 1}; only entries
    with ``mask`` True contribute.  ``pos_weight`` multiplies the loss of
    positive examples (bottleneck labels are a small minority in execution
    histories, and an unweighted loss collapses to "never a bottleneck").
    Returns ``(loss, grad)`` with ``grad`` shaped like ``logits``; when
    nothing is labelled the loss is 0 with a zero gradient.
    """
    if pos_weight <= 0:
        raise ValueError("pos_weight must be positive")
    squeeze = logits.ndim == 2
    flat = logits.reshape(-1)
    n_labelled = int(mask.sum())
    grad = np.zeros_like(flat)
    if n_labelled == 0:
        return 0.0, grad.reshape(logits.shape) if squeeze else grad

    z = flat[mask]
    y = labels[mask].astype(np.float64)
    weights = np.where(y == 1.0, pos_weight, 1.0)
    # log(1 + e^z) computed stably; BCE = max(z,0) - z*y + log(1+e^-|z|).
    loss_terms = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
    total_weight = float(weights.sum())
    loss = float((weights * loss_terms).sum() / total_weight)
    probs = 1.0 / (1.0 + np.exp(-z))
    grad[mask] = weights * (probs - y) / total_weight
    return loss, grad.reshape(logits.shape) if squeeze else grad


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out
