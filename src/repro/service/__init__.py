"""Concurrent multi-query tuning service.

StreamTune's premise is amortising past tuning work; this package extends
the amortisation across *queries running at the same time*.  The seed
repository tuned one :class:`~repro.workloads.query.StreamingQuery` at a
time through a synchronous tuner — real deployments face fleets of
concurrent jobs whose source rates move independently (ContTune VLDB'23,
PDSP-Bench 2025), so the service layer runs many tuning campaigns at once
and makes sure no piece of pure work is ever computed twice.

Architecture (see each module for depth):

* :mod:`repro.service.scheduler` — :class:`CampaignSpec` describes one
  ``(query, rate-trace)`` campaign; :class:`BackpressureScheduler` probes
  every campaign's starting deployment and dispatches queries currently
  showing backpressure first (hottest leading), so scarce workers buy the
  most SLO.
* :mod:`repro.service.cache` — :class:`TuningCacheSet` routes the tuner's
  pure computations (cluster assignment, warm-up dataset construction,
  distilled operating points, operator embeddings) through bounded
  concurrency-safe LRU caches, and persists them between service runs via
  versioned snapshots (``TuningCacheSet.save`` / ``load``);
  :class:`SharedGEDCache` is the thread/process-safe pairwise-GED store
  behind cluster assignment.
* :mod:`repro.service.prewarm` — service-level cache pre-warming: shared
  pure entries (assignments, warm-up datasets, distilled rows,
  embeddings) are computed once in the parent — bulk encoder requests
  coalescing through :mod:`repro.gnn.batch` — before the fleet
  dispatches, shipped to ``process``-backend workers in the pool
  initializer, and restored from a resume log's completed cells.
* :mod:`repro.service.tuning` — :class:`TuningService` executes campaigns
  over a ``sequential`` / ``thread`` / ``process`` worker pool.  Every
  campaign owns its engine and tuner (per-campaign seeding), all share the
  caches, and results are bit-identical across backends and dispatch
  orders because every cached value is a pure function of its key.

Quick start::

    from repro.service import CampaignSpec, TuningService

    service = TuningService(pretrained, backend="thread", max_workers=4)
    specs = [CampaignSpec(query=q, multipliers=(3, 7, 4, 2)) for q in queries]
    outcomes = service.run(specs)          # input order, deterministic

Benchmark: ``python benchmarks/bench_service.py`` compares an 8-query
concurrent campaign against the plain sequential loop (same seeds) and
checks backend-identity; ``--smoke`` runs a seconds-scale variant for CI.
"""

from repro.service.cache import (
    ConcurrentLRUCache,
    SharedGEDCache,
    SnapshotError,
    TuningCacheSet,
)
from repro.service.prewarm import prewarm_caches
from repro.service.scheduler import (
    BackpressureScheduler,
    CampaignPriority,
    CampaignSpec,
    FifoScheduler,
)
from repro.service.tuning import (
    BACKENDS,
    CampaignExecutionError,
    CampaignOutcome,
    TuningService,
    execute_campaign,
    shard_bounds,
)

__all__ = [
    "BACKENDS",
    "BackpressureScheduler",
    "CampaignExecutionError",
    "CampaignOutcome",
    "CampaignPriority",
    "CampaignSpec",
    "ConcurrentLRUCache",
    "FifoScheduler",
    "SharedGEDCache",
    "SnapshotError",
    "TuningCacheSet",
    "TuningService",
    "execute_campaign",
    "prewarm_caches",
    "shard_bounds",
]
