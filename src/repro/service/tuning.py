"""The concurrent multi-query tuning service (see package docstring).

``TuningService`` accepts many :class:`CampaignSpec` objects and executes
them through a worker pool.  Every campaign owns its engine and its
:class:`StreamTuneTuner` (the reentrancy unit), while the expensive pure
computations — cluster assignment GEDs, warm-up datasets, distilled
operating points, parallelism-agnostic embeddings — flow through one
shared :class:`TuningCacheSet`.  Campaign results are therefore

* **identical across backends**: ``sequential``, ``thread`` and
  ``process`` runs of the same specs produce bit-identical
  ``TuningResult`` step sequences (cache hits return exactly what a
  recomputation would), and
* **independent of scheduling**: the backpressure scheduler only decides
  *when* a campaign runs, never what it computes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.pretrain import PretrainedStreamTune
from repro.core.tuner import StreamTuneTuner
from repro.experiments.campaigns import CampaignResult
from repro.service.cache import SharedGEDCache, TuningCacheSet
from repro.service.scheduler import BackpressureScheduler, CampaignSpec, FifoScheduler

BACKENDS = ("sequential", "thread", "process")


@dataclass
class CampaignOutcome:
    """One campaign's result plus service-side accounting."""

    spec_name: str
    result: CampaignResult
    wall_seconds: float
    backend: str


def execute_campaign(
    spec: CampaignSpec,
    pretrained: PretrainedStreamTune,
    caches: TuningCacheSet | None,
    fit_dedup: bool = True,
) -> CampaignOutcome:
    """Run one campaign end to end (the unit of work a worker executes)."""
    started = time.perf_counter()
    engine = spec.make_engine()
    tuner = StreamTuneTuner(
        engine,
        pretrained,
        model_kind=spec.model_kind,
        max_iterations=spec.max_iterations,
        warmup_rows=spec.warmup_rows,
        seed=spec.seed,
        caches=caches,
        fit_dedup=fit_dedup,
        # Optimised fitting and batched warm-up encoding travel together:
        # both deviate from the seed path only in float-level ulps.
        batch_encode=fit_dedup,
        **spec.tuner_overrides,
    )
    result = CampaignResult(query_name=spec.query.name, method=tuner.name)
    tuner.prepare(spec.query)
    flow = spec.query.flow
    deployment = engine.deploy(
        flow,
        dict.fromkeys(flow.operator_names, 1),
        spec.query.rates_at(spec.multipliers[0]),
    )
    for multiplier in spec.multipliers:
        process = tuner.tune(deployment, spec.query.rates_at(multiplier))
        result.multipliers.append(multiplier)
        result.processes.append(process)
    engine.stop(deployment)
    return CampaignOutcome(
        spec_name=spec.name,
        result=result,
        wall_seconds=time.perf_counter() - started,
        backend="worker",
    )


# ----------------------------------------------------------------------
# process-backend worker state
# ----------------------------------------------------------------------

_WORKER: dict = {}


def _init_worker(
    pretrained: PretrainedStreamTune,
    fit_dedup: bool,
    shared_sections: dict | None = None,
) -> None:
    """Per-process initialiser: install the model and fresh local caches.

    The pretrained artifact arrives once per worker (pickled or inherited
    via fork), not once per campaign.  Bulky numpy-laden cache sections
    are process-local; ``shared_sections`` carries the manager-backed
    stores (cluster assignment — GED entries travel inside
    ``pretrained.clustering``'s shared cache) that are cheap enough to
    share across every worker.
    """
    _WORKER["pretrained"] = pretrained
    caches = TuningCacheSet()
    for kind, cache in (shared_sections or {}).items():
        caches._caches[kind] = cache
    _WORKER["caches"] = caches
    _WORKER["fit_dedup"] = fit_dedup


def _run_in_worker(spec: CampaignSpec) -> CampaignOutcome:
    return execute_campaign(
        spec, _WORKER["pretrained"], _WORKER["caches"], _WORKER["fit_dedup"]
    )


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------

class TuningService:
    """Execute many tuning campaigns concurrently over shared caches."""

    def __init__(
        self,
        pretrained: PretrainedStreamTune,
        backend: str = "thread",
        max_workers: int | None = None,
        prioritize_backpressure: bool = True,
        fit_dedup: bool = True,
        share_ged_cache: bool = True,
        manager=None,
        caches: TuningCacheSet | None = None,
    ) -> None:
        """``backend`` selects the worker pool: ``thread`` (default; shares
        every cache section in-process), ``process`` (one Python per
        worker; pass a started ``multiprocessing.Manager`` as ``manager``
        to share the GED/assignment stores across workers too), or
        ``sequential`` (no pool — the reference path concurrency must
        reproduce bit-for-bit).

        ``share_ged_cache=True`` replaces the pretrained clustering's
        private :class:`~repro.ged.search.GEDCache` with a
        :class:`SharedGEDCache` seeded from the existing entries — an exact
        upgrade (same values, now concurrency-safe and shared).

        ``caches`` injects a pre-populated :class:`TuningCacheSet` (for
        example one loaded from a ``TuningCacheSet.load`` snapshot) so
        warm-up datasets, distilled rows and embeddings survive between
        service runs; ``None`` builds a fresh set for this service.
        """
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.pretrained = pretrained
        self.backend = backend
        self.max_workers = max_workers or min(8, (os.cpu_count() or 1) * 2)
        self.scheduler = BackpressureScheduler() if prioritize_backpressure else FifoScheduler()
        self.fit_dedup = fit_dedup
        self._manager = manager
        if share_ged_cache:
            self._install_shared_ged_cache()
        self.caches = caches if caches is not None else self._make_cache_set()

    # -- construction helpers ------------------------------------------

    def _make_cache_set(self) -> TuningCacheSet:
        if self.backend == "process" and self._manager is not None:
            # Only the tiny cross-worker-profitable sections go through the
            # manager (IPC per access); bulky numpy-laden sections stay
            # worker-local via _init_worker.
            return TuningCacheSet(
                sections={"assign": 65536},
                mapping_factory=self._manager.dict,
                lock_factory=self._manager.RLock,
            )
        return TuningCacheSet()

    def _install_shared_ged_cache(self) -> None:
        clustering = self.pretrained.clustering
        old = getattr(clustering, "cache", None)
        if isinstance(old, SharedGEDCache):
            return
        if self.backend == "process" and self._manager is not None:
            from repro.service.cache import ConcurrentLRUCache

            shared = SharedGEDCache(
                costs=old.costs,
                exact_store=ConcurrentLRUCache(
                    mapping=self._manager.dict(), lock=self._manager.RLock()
                ),
                bound_store=ConcurrentLRUCache(
                    mapping=self._manager.dict(), lock=self._manager.RLock()
                ),
            )
        else:
            shared = SharedGEDCache(costs=old.costs)
        # Exact migration: seed the shared store with every distance the
        # clustering phase already paid for.
        for key, value in getattr(old, "_exact", {}).items():
            shared._exact.put(key, value)
        clustering.cache = shared

    # -- execution ------------------------------------------------------

    def run(self, specs: list[CampaignSpec]) -> list[CampaignOutcome]:
        """Execute every campaign; outcomes are returned in *input* order.

        Dispatch order follows the scheduler (backpressured queries first),
        which matters for time-to-first-recommendation under limited
        workers but never changes any campaign's result.
        """
        if not specs:
            return []
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"campaign names must be unique, got {sorted(names)}")
        order = self.scheduler.order(list(specs))
        outcomes: dict[int, CampaignOutcome] = {}
        if self.backend == "sequential":
            for index in order:
                outcomes[index] = execute_campaign(
                    specs[index], self.pretrained, self.caches, self.fit_dedup
                )
        elif self.backend == "thread":
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                futures = {
                    index: pool.submit(
                        execute_campaign,
                        specs[index],
                        self.pretrained,
                        self.caches,
                        self.fit_dedup,
                    )
                    for index in order
                }
                for index, future in futures.items():
                    outcomes[index] = future.result()
        else:
            shared_sections = None
            if self._manager is not None:
                # Manager-backed sections are proxy objects and pickle
                # cleanly to workers; thread-local sections would not.
                shared_sections = {"assign": self.caches.section("assign")}
            with ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=(self.pretrained, self.fit_dedup, shared_sections),
            ) as pool:
                futures = {
                    index: pool.submit(_run_in_worker, specs[index])
                    for index in order
                }
                for index, future in futures.items():
                    outcomes[index] = future.result()
        for outcome in outcomes.values():
            outcome.backend = self.backend
        return [outcomes[index] for index in range(len(specs))]

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss counters of the in-process cache sections."""
        stats = self.caches.stats()
        ged = getattr(self.pretrained.clustering, "cache", None)
        if isinstance(ged, SharedGEDCache):
            stats["ged"] = {"hits": ged.hits, "misses": ged.misses}
        return stats
