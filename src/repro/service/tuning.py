"""The concurrent multi-query tuning service (see package docstring).

``TuningService`` accepts many :class:`CampaignSpec` objects and executes
them through a worker pool.  Every campaign owns its engine and its
tuner (the reentrancy unit), while the expensive pure computations —
cluster assignment GEDs, warm-up datasets, distilled operating points,
parallelism-agnostic embeddings — flow through one shared
:class:`TuningCacheSet`.  Campaign results are therefore

* **identical across backends**: ``sequential``, ``thread`` and
  ``process`` runs of the same specs produce bit-identical
  ``TuningResult`` step sequences (cache hits return exactly what a
  recomputation would), and
* **independent of scheduling**: the backpressure scheduler only decides
  *when* a campaign runs, never what it computes.

Execution is **observable**: :meth:`TuningService.stream` yields typed
:mod:`repro.api.events` as campaigns progress — live per-step on the
thread *and* process backends (process workers relay events through a
``multiprocessing.Manager`` queue), per completed campaign on the
sequential backend and for sharded traces — and :meth:`TuningService.run`
is a thin wrapper that drains the stream and returns outcomes in input
order, so the legacy blocking call stays bit-identical.

Execution is also **fault-tolerant** and **resumable**:

* a worker that dies surfaces a typed
  :class:`~repro.api.events.CampaignFailed` carrying the traceback text —
  the drain loop polls with a timeout and checks worker liveness, so a
  lost sentinel can never hang the stream.  A raised exception fails only
  its own campaign (the rest of the fleet keeps running on every
  backend); a process worker killed outright (OOM, signal) breaks the
  shared pool, so in-flight campaigns each surface their own
  ``CampaignFailed`` too — completed campaigns keep their results and a
  recorded log resumes the rest;
* ``stream(specs, resume=...)`` accepts a
  :class:`~repro.api.resume.ResumeLog` (or any ``cell_key -> outcome``
  mapping): campaigns whose deterministic ``cell_key`` is already recorded
  are not re-executed — a :class:`~repro.api.events.CampaignSkipped`
  marker plus the replayed :class:`~repro.api.events.CampaignFinished`
  (bit-identical recorded result) enter the stream instead.

A campaign's rate trace can additionally be **sharded** across workers
(``trace_shards``): each shard replays the trace prefix on a fresh
engine/tuner (deterministic, so the replayed state matches the unsharded
run exactly) and keeps only its own contiguous chunk; the merged result
is bit-identical to the unsharded campaign.  Replay work shrinks as the
shared caches warm, which is what makes sharding profitable on long
traces.
"""

from __future__ import annotations

import dataclasses
import os
import queue
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.api.events import (
    CacheStats,
    CampaignFailed,
    CampaignFinished,
    CampaignSkipped,
    CampaignStarted,
    Reconfigured,
    StepCompleted,
)
from repro.core.pretrain import PretrainedStreamTune
from repro.core.tuner import StreamTuneTuner
from repro.experiments.campaigns import CampaignResult, iter_campaign
from repro.service.cache import CACHE_SECTIONS, SharedGEDCache, TuningCacheSet
from repro.service.prewarm import RESUME_DEMAND, prewarm_caches
from repro.service.scheduler import BackpressureScheduler, CampaignSpec, FifoScheduler

BACKENDS = ("sequential", "thread", "process")


@dataclass
class CampaignOutcome:
    """One campaign's result plus service-side accounting."""

    spec_name: str
    result: CampaignResult
    wall_seconds: float
    backend: str
    #: :class:`~repro.api.events.ChaosInjected` events of the recorded
    #: chunk, in execution order.  Kept on the outcome so backends that
    #: replay a finished campaign (sequential, sharded) emit the same
    #: stream a live worker does.
    chaos_events: list = field(default_factory=list)


class CampaignExecutionError(RuntimeError):
    """One or more campaigns failed after the rest of the fleet finished.

    Raised by the blocking wrappers (:meth:`TuningService.run`, the
    session layer) once the stream has drained, so surviving campaigns
    complete — and land in any ``--record`` log, ready for ``--resume`` —
    before the failure surfaces.  :attr:`failures` holds the
    :class:`~repro.api.events.CampaignFailed` events (traceback text
    included); :attr:`outcomes` the completed campaigns by spec index.
    """

    def __init__(self, failures: list, outcomes: dict | None = None) -> None:
        self.failures = list(failures)
        self.outcomes = dict(outcomes or {})
        names = ", ".join(event.campaign for event in self.failures)
        first = self.failures[0]
        message = (
            f"{len(self.failures)} campaign(s) failed ({names}); first "
            f"failure: {first.error_type}: {first.error_message}"
        )
        if first.traceback:
            message += f"\n{first.traceback}"
        super().__init__(message)


@dataclass(frozen=True)
class _FailurePayload:
    """A worker failure flattened to data that crosses process borders."""

    error_type: str
    error_message: str
    traceback: str


def _failure_payload(error: BaseException) -> _FailurePayload:
    return _FailurePayload(
        error_type=type(error).__name__,
        error_message=str(error),
        traceback="".join(
            traceback_module.format_exception(type(error), error, error.__traceback__)
        ),
    )


def _build_campaign_tuner(
    spec: CampaignSpec,
    engine,
    pretrained: PretrainedStreamTune | None,
    caches: TuningCacheSet | None,
    fit_dedup: bool,
):
    """The campaign's tuner: StreamTune through the shared caches, or any
    history-free registry method built from the spec alone."""
    from repro.api.components import streamtune_variant

    is_streamtune, model_suffix = streamtune_variant(spec.tuner)
    if is_streamtune:
        if pretrained is None:
            raise ValueError(
                f"campaign {spec.name!r} tunes with {spec.tuner!r} but the "
                "service has no pre-trained artifact (pass pretrained=...)"
            )
        # The 'streamtune-<model>' spelling carries its own layer.
        model_kind = model_suffix if model_suffix else spec.model_kind
        return StreamTuneTuner(
            engine,
            pretrained,
            model_kind=model_kind,
            max_iterations=spec.max_iterations,
            warmup_rows=spec.warmup_rows,
            seed=spec.seed,
            caches=caches,
            fit_dedup=fit_dedup,
            # Optimised fitting and batched warm-up encoding travel together:
            # both deviate from the seed path only in float-level ulps.
            batch_encode=fit_dedup,
            **spec.tuner_overrides,
        )
    from repro.api.components import TunerResources, build_tuner

    return build_tuner(spec.tuner, engine, TunerResources(), **spec.tuner_overrides)


def _step_events(campaign: str, n_steps: int, step_index: int, multiplier, process):
    """The event block one tuning process contributes to the stream."""
    for iteration, step in enumerate(process.steps):
        if step.reconfigured:
            yield Reconfigured(
                campaign=campaign,
                step_index=step_index,
                iteration=iteration,
                parallelisms=dict(step.parallelisms),
                backpressure_after=step.backpressure_after,
            )
    yield StepCompleted(
        campaign=campaign,
        step_index=step_index,
        n_steps=n_steps,
        multiplier=float(multiplier),
        parallelisms=dict(process.final_parallelisms),
        reconfigurations=process.n_reconfigurations,
        backpressure_events=process.n_backpressure_events,
        converged=process.converged,
        recommendation_seconds=process.recommendation_seconds,
    )


def execute_campaign(
    spec: CampaignSpec,
    pretrained: PretrainedStreamTune | None,
    caches: TuningCacheSet | None,
    fit_dedup: bool = True,
    *,
    sink=None,
    keep_from: int = 0,
    stop_at: int | None = None,
) -> CampaignOutcome:
    """Run one campaign end to end (the unit of work a worker executes).

    ``keep_from``/``stop_at`` select a contiguous shard of the rate trace:
    the campaign executes multipliers ``[0:stop_at)`` — replaying the
    prefix so tuner/engine state at ``keep_from`` matches the unsharded
    run bit-for-bit — and records only ``[keep_from:stop_at)``.  ``sink``
    receives a :class:`~repro.api.events.Reconfigured` /
    :class:`~repro.api.events.StepCompleted` block after each recorded
    tuning process (event construction never touches the tuner, so
    observing a campaign cannot change its results).
    """
    started = time.perf_counter()
    engine = spec.make_engine()
    tuner = _build_campaign_tuner(spec, engine, pretrained, caches, fit_dedup)
    multipliers = (
        spec.multipliers if stop_at is None else spec.multipliers[:stop_at]
    )
    chaos_sink = None
    chaos_events: list = []
    if spec.chaos is not None:
        def chaos_sink(event):
            # Shards replay their trace prefix silently — chaos included —
            # so only the recorded chunk's injections reach the stream
            # (live) and the outcome (for backends that replay it).
            if event.step_index >= keep_from:
                chaos_events.append(event)
                if sink is not None:
                    sink(event)
    iterator = iter_campaign(
        engine, tuner, spec.query, list(multipliers),
        chaos=spec.chaos, chaos_sink=chaos_sink,
    )
    while True:
        try:
            index, multiplier, process = next(iterator)
        except StopIteration as stop:
            executed = stop.value
            break
        if index < keep_from:
            continue
        if sink is not None:
            for event in _step_events(
                spec.name, len(spec.multipliers), index, multiplier, process
            ):
                sink(event)
    # The shard's view: only the kept chunk of the executed trace.
    result = CampaignResult(query_name=spec.query.name, method=tuner.name)
    result.multipliers = executed.multipliers[keep_from:]
    result.processes = executed.processes[keep_from:]
    return CampaignOutcome(
        spec_name=spec.name,
        result=result,
        wall_seconds=time.perf_counter() - started,
        backend="worker",
        chaos_events=chaos_events,
    )


# ----------------------------------------------------------------------
# trace sharding
# ----------------------------------------------------------------------

def shard_bounds(n_steps: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``n_steps`` into at most ``n_steps`` contiguous chunks.

    Never emits an empty or degenerate shard: when ``n_shards`` exceeds
    ``n_steps`` the shard count clamps down, and ``n_steps == 0`` yields
    no shards at all (there is no work to split).  Earlier chunks take the
    remainder so sizes differ by at most one.
    """
    if n_steps < 0:
        raise ValueError("n_steps must be >= 0")
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_steps == 0:
        return []
    n_shards = min(n_shards, n_steps)
    base, extra = divmod(n_steps, n_shards)
    bounds = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


@dataclass(frozen=True)
class _Unit:
    """One worker work item: a contiguous shard of one campaign's trace."""

    spec_index: int
    shard_index: int
    n_shards: int
    keep_from: int
    stop_at: int

    @property
    def live(self) -> bool:
        """Whole-campaign units can emit step events live; shards cannot
        (their steps would interleave out of order)."""
        return self.n_shards == 1


def _merge_outcomes(
    spec: CampaignSpec, parts: dict[int, CampaignOutcome], backend: str
) -> CampaignOutcome:
    """Concatenate shard outcomes (shard order) into one campaign outcome."""
    if len(parts) == 1:
        return parts[0]
    result = CampaignResult(
        query_name=spec.query.name, method=parts[0].result.method
    )
    chaos_events: list = []
    for shard_index in sorted(parts):
        part = parts[shard_index].result
        result.multipliers.extend(part.multipliers)
        result.processes.extend(part.processes)
        chaos_events.extend(getattr(parts[shard_index], "chaos_events", []))
    walls = [part.wall_seconds for part in parts.values()]
    return CampaignOutcome(
        spec_name=spec.name,
        result=result,
        chaos_events=chaos_events,
        # On a pool the campaign is as slow as its slowest shard; on the
        # sequential backend shards run one after another, so the honest
        # figure is their sum (prefix replay included).
        wall_seconds=sum(walls) if backend == "sequential" else max(walls),
        backend=backend,
    )


# ----------------------------------------------------------------------
# process-backend worker state
# ----------------------------------------------------------------------

_WORKER: dict = {}


def _init_worker(
    pretrained: PretrainedStreamTune | None,
    fit_dedup: bool,
    shared_sections: dict | None = None,
    backend: str = "process",
    warm_entries: dict | None = None,
    shm_payload: dict | None = None,
) -> None:
    """Per-process initialiser: install the model and fresh local caches.

    The pretrained artifact arrives once per worker (pickled or inherited
    via fork), not once per campaign.  ``shared_sections`` carries the
    manager-backed stores (cluster assignment — GED entries travel inside
    ``pretrained.clustering``'s shared cache) that are cheap enough to
    share across every worker.

    Warm cache entries arrive over one of two planes:

    * ``shm_payload`` — the shared-memory plane (the default on the
      process backend): ``kind -> [(key, descriptor)]`` where numpy-heavy
      payloads are :class:`~repro.service.shm.SharedArrayRef` descriptors
      into parent-owned segments.  The worker attaches read-only views
      over the parent's pages — zero-copy, so N workers hold one copy of
      every embedding matrix, warm-up dataset and distilled row set.
    * ``warm_entries`` — the legacy pickled plane (``kind ->
      [(key, value)]``), kept for callers that cannot share memory.
    """
    _WORKER["pretrained"] = pretrained
    caches = TuningCacheSet()
    for kind, cache in (shared_sections or {}).items():
        caches._caches[kind] = cache
    for kind, entries in (warm_entries or {}).items():
        section = caches._caches.get(kind)
        if section is None:
            continue
        for key, value in entries:
            section.put(key, value)
    if shm_payload:
        from repro.service.shm import SharedArrayStore, attach_sections

        # The worker's store only attaches (never unlinks): it lives for
        # the worker's lifetime in _WORKER so its mappings — and the views
        # cached below — stay valid across every campaign the worker runs.
        store = SharedArrayStore()
        _WORKER["shm_store"] = store
        for kind, entries in attach_sections(shm_payload, store).items():
            section = caches._caches.get(kind)
            if section is None:
                continue
            for key, value in entries:
                section.put(key, value)
    _WORKER["caches"] = caches
    _WORKER["fit_dedup"] = fit_dedup
    _WORKER["backend"] = backend


def _started_event_for(
    spec: CampaignSpec, index: int, n_shards: int, backend: str
) -> CampaignStarted:
    return CampaignStarted(
        campaign=spec.name,
        index=index,
        engine=spec.engine,
        tuner=spec.tuner,
        backend=backend,
        n_steps=len(spec.multipliers),
        shards=n_shards,
        cell_key=spec.cell_key,
    )


def _collect_worker_entries(barrier, known: dict, timeout: float) -> dict:
    """Snapshot this worker's locally computed cache entries.

    One collection task runs per worker process after the fleet drains;
    the manager-backed ``barrier`` holds every task until all workers
    have claimed one, so no worker can serve two tasks (and none can be
    skipped).  ``known`` maps section kind to the keys the parent
    already holds — those entries shipped *to* the worker in the first
    place, so only the worker's own computations travel back.  A broken
    barrier (dead sibling worker) degrades gracefully: this worker still
    returns what it has.
    """
    try:
        barrier.wait(timeout)
    except Exception:  # noqa: BLE001 — best-effort collection by design
        pass
    caches = _WORKER.get("caches")
    if caches is None:
        return {}
    entries: dict = {}
    for kind, known_keys in known.items():
        try:
            section = caches.section(kind)
        except KeyError:
            continue
        fresh = [
            (key, value)
            for key, value in section.items_snapshot()
            if key not in known_keys
        ]
        if fresh:
            entries[kind] = fresh
    return entries


def _run_in_worker(spec: CampaignSpec, unit: "_Unit", relay) -> None:
    """Execute one unit in a worker process, relaying through ``relay``.

    Every terminal state crosses the manager-backed relay queue as data:
    ``("event", unit, event)`` for live mid-campaign events,
    ``("done", unit, outcome)`` on success, ``("error", unit, payload)``
    on a raised exception.  A worker killed outright posts nothing — the
    consumer's liveness check turns its broken future into a failure.
    """
    sink = None
    try:
        if unit.live:
            backend = _WORKER.get("backend", "process")
            relay.put((
                "event",
                unit,
                _started_event_for(spec, unit.spec_index, 1, backend),
            ))
            sink = lambda event: relay.put(("event", unit, event))  # noqa: E731
        outcome = execute_campaign(
            spec,
            _WORKER["pretrained"],
            _WORKER["caches"],
            _WORKER["fit_dedup"],
            sink=sink,
            keep_from=unit.keep_from,
            stop_at=unit.stop_at,
        )
    except BaseException as error:  # noqa: BLE001 — relayed as data
        relay.put(("error", unit, _failure_payload(error)))
        return
    relay.put(("done", unit, outcome))


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------

class TuningService:
    """Execute many tuning campaigns concurrently over shared caches."""

    #: Idle-poll interval (seconds) of the stream's drain loop: how often
    #: worker liveness is re-checked while no events are arriving.
    poll_seconds = 0.2
    #: How long a completed worker future may go without its queued
    #: sentinel arriving before the sentinel is declared lost and the
    #: campaign failed (covers relay-queue latency on the process backend).
    sentinel_grace = 5.0
    #: How long the post-drain worker-cache collection barrier (and each
    #: collection future) may wait before collection is abandoned —
    #: collection is best-effort: a timeout loses cache entries, never
    #: results.
    collect_timeout = 30.0

    def __init__(
        self,
        pretrained: PretrainedStreamTune | None,
        backend: str = "thread",
        max_workers: int | None = None,
        prioritize_backpressure: bool = True,
        fit_dedup: bool = True,
        share_ged_cache: bool = True,
        manager=None,
        caches: TuningCacheSet | None = None,
        prewarm: "bool | str" = "auto",
        start_method: str | None = None,
        shm_store=None,
        collect_worker_caches: bool = True,
    ) -> None:
        """``backend`` selects the worker pool: ``thread`` (default; shares
        every cache section in-process), ``process`` (one Python per
        worker; pass a started ``multiprocessing.Manager`` as ``manager``
        to share the GED/assignment stores across workers too), or
        ``sequential`` (no pool — the reference path concurrency must
        reproduce bit-for-bit).

        ``pretrained`` may be ``None`` when every campaign tunes with a
        history-free baseline method (ds2, conttune, oracle); StreamTune
        campaigns then fail with a clear error.

        ``share_ged_cache=True`` replaces the pretrained clustering's
        private :class:`~repro.ged.search.GEDCache` with a
        :class:`SharedGEDCache` seeded from the existing entries — an exact
        upgrade (same values, now concurrency-safe and shared).

        ``caches`` injects a pre-populated :class:`TuningCacheSet` (for
        example one loaded from a ``TuningCacheSet.load`` snapshot) so
        warm-up datasets, distilled rows and embeddings survive between
        service runs; ``None`` builds a fresh set for this service.

        ``prewarm`` controls service-level cache pre-warming (see
        :mod:`repro.service.prewarm`): ``"auto"`` (default) warms every
        entry on the ``process`` backend (worker-local caches would
        otherwise recompute them per worker), entries demanded by more
        than one work unit on the ``thread`` backend, and — on every
        backend — the entries of resume-covered campaigns; ``True`` warms
        everything, ``False`` disables pre-warming.  Pre-warmed entries
        come from the exact builders the tuner would run on a miss, so
        results are bit-identical either way.

        ``start_method`` pins the process backend's multiprocessing start
        method (``"fork"``, ``"spawn"`` or ``"forkserver"``; ``None``
        keeps the platform default).  Results are bit-identical across
        start methods — shared-memory descriptors attach by name, with no
        fork-inherited state involved.

        ``shm_store`` injects the :class:`~repro.service.shm.
        SharedArrayStore` the process backend publishes warm numpy
        payloads through (for example one a snapshot was materialized
        into, so publication is descriptor-only with no further copy);
        the caller then owns its lifecycle.  ``None`` (default) creates
        and closes a store per process-backend stream.

        ``collect_worker_caches`` (default ``True``) snapshots each
        process-backend worker's locally computed cache entries back into
        the parent's :class:`TuningCacheSet` when the fleet drains, so a
        ``cache_path`` snapshot — or a long-lived daemon's cache plane —
        keeps what workers learned instead of only what the parent
        pre-warmed.  Collection is additive and best-effort: results are
        bit-identical with it on or off, and a broken pool simply skips
        it.
        """
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if prewarm not in (True, False, "auto"):
            raise ValueError(
                f"prewarm must be True, False or 'auto', got {prewarm!r}"
            )
        if start_method is not None:
            import multiprocessing

            allowed = multiprocessing.get_all_start_methods()
            if start_method not in allowed:
                raise ValueError(
                    f"start_method must be one of {allowed}, got {start_method!r}"
                )
        self.pretrained = pretrained
        self.backend = backend
        self.start_method = start_method
        self._shm_store = shm_store
        self.collect_worker_caches = collect_worker_caches
        self.max_workers = max_workers or min(8, (os.cpu_count() or 1) * 2)
        self.scheduler = BackpressureScheduler() if prioritize_backpressure else FifoScheduler()
        self.fit_dedup = fit_dedup
        self._manager = manager
        if share_ged_cache and pretrained is not None:
            self._install_shared_ged_cache()
        self.prewarm = prewarm
        #: Sections newly computed by the most recent stream's pre-warm.
        self.last_prewarm: dict[str, int] = {}
        self.caches = caches if caches is not None else self._make_cache_set()
        if self.pretrained is not None and getattr(
            self.caches, "_legacy_warmup", None
        ):
            # A v2 snapshot's warm-up entries were keyed by cluster id;
            # only now — with the pretrained artifact in hand — can they
            # be re-keyed to v3 history signatures and served.
            from repro.core.finetune import cluster_history_signature

            self.caches.adopt_legacy_warmup(
                lambda cluster: cluster_history_signature(self.pretrained, cluster)
            )
        #: Unit -> worker future of the stream currently draining (empty
        #: outside a stream); introspection for liveness tests/diagnostics.
        self._active_futures: dict = {}

    # -- construction helpers ------------------------------------------

    def _make_cache_set(self) -> TuningCacheSet:
        caches = TuningCacheSet()
        if self.backend == "process" and self._manager is not None:
            # Only the tiny cross-worker-profitable section goes through
            # the manager (IPC per access); bulky numpy-laden sections stay
            # local — the parent's copies hold pre-warmed entries that ship
            # to workers once via the pool initializer (_init_worker).
            from repro.service.cache import ConcurrentLRUCache

            caches._caches["assign"] = ConcurrentLRUCache(
                maxsize=CACHE_SECTIONS["assign"],
                mapping=self._manager.dict(),
                lock=self._manager.RLock(),
            )
        return caches

    def _install_shared_ged_cache(self) -> None:
        clustering = self.pretrained.clustering
        old = getattr(clustering, "cache", None)
        if isinstance(old, SharedGEDCache):
            return
        if self.backend == "process" and self._manager is not None:
            from repro.service.cache import ConcurrentLRUCache

            shared = SharedGEDCache(
                costs=old.costs,
                exact_store=ConcurrentLRUCache(
                    mapping=self._manager.dict(), lock=self._manager.RLock()
                ),
                bound_store=ConcurrentLRUCache(
                    mapping=self._manager.dict(), lock=self._manager.RLock()
                ),
            )
        else:
            shared = SharedGEDCache(costs=old.costs)
        # Exact migration: seed the shared store with every distance the
        # clustering phase already paid for.
        for key, value in getattr(old, "_exact", {}).items():
            shared._exact.put(key, value)
        clustering.cache = shared

    # -- execution ------------------------------------------------------

    def _plan_units(
        self,
        specs: list[CampaignSpec],
        trace_shards: int,
        skip: frozenset | set = frozenset(),
    ) -> list[_Unit]:
        """Work units in dispatch order: scheduler order over campaigns,
        shard order within a campaign.  ``skip`` holds spec indices a
        resume log already covers — they are neither probed nor planned.
        """
        active = [index for index in range(len(specs)) if index not in skip]
        order = self.scheduler.order([specs[index] for index in active])
        units = []
        for position in order:
            spec_index = active[position]
            bounds = shard_bounds(len(specs[spec_index].multipliers), trace_shards)
            for shard_index, (keep_from, stop_at) in enumerate(bounds):
                units.append(
                    _Unit(
                        spec_index=spec_index,
                        shard_index=shard_index,
                        n_shards=len(bounds),
                        keep_from=keep_from,
                        stop_at=stop_at,
                    )
                )
        return units

    def _started_event(self, spec, index, n_shards) -> CampaignStarted:
        return _started_event_for(spec, index, n_shards, self.backend)

    def _finished_event(self, spec, index, outcome) -> CampaignFinished:
        outcome.backend = self.backend
        return CampaignFinished(
            campaign=spec.name,
            index=index,
            backend=self.backend,
            n_steps=len(outcome.result.processes),
            converged_steps=sum(
                1 for process in outcome.result.processes if process.converged
            ),
            wall_seconds=outcome.wall_seconds,
            outcome=outcome,
            cell_key=spec.cell_key,
        )

    def _failed_event(self, spec, index, payload: _FailurePayload) -> CampaignFailed:
        return CampaignFailed(
            campaign=spec.name,
            index=index,
            backend=self.backend,
            error_type=payload.error_type,
            error_message=payload.error_message,
            traceback=payload.traceback,
            cell_key=spec.cell_key,
        )

    def _replay_campaign(self, spec, index, outcome, n_shards):
        """The full event block of a completed campaign (steps re-derived
        from the recorded result — identical to live emission)."""
        yield self._started_event(spec, index, n_shards)
        chaos_by_step: dict[int, list] = {}
        for event in getattr(outcome, "chaos_events", []):
            chaos_by_step.setdefault(event.step_index, []).append(event)
        for step_index, (multiplier, process) in enumerate(
            zip(outcome.result.multipliers, outcome.result.processes)
        ):
            yield from chaos_by_step.get(step_index, ())
            yield from _step_events(
                spec.name, len(spec.multipliers), step_index, multiplier, process
            )
        yield self._finished_event(spec, index, outcome)

    @staticmethod
    def _check_specs(specs: list[CampaignSpec]) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"campaign names must be unique, got {sorted(names)}")

    def _check_executable(self, specs: list[CampaignSpec]) -> None:
        """Fail before the fleet spins up, not deep inside a worker."""
        if self.pretrained is not None:
            return
        for spec in specs:
            if spec.is_streamtune:
                raise ValueError(
                    f"campaign {spec.name!r} tunes with {spec.tuner!r} but the "
                    "service has no pre-trained artifact (pass pretrained=...)"
                )

    def _resumed_outcomes(self, specs, resume) -> dict[int, CampaignOutcome]:
        """Spec indices a resume source already covers, with their
        recorded outcomes (matched by deterministic ``cell_key``)."""
        if resume is None:
            return {}
        if hasattr(resume, "outcome_for"):
            lookup = resume.outcome_for
        elif isinstance(resume, dict):
            lookup = resume.get
        else:
            raise TypeError(
                "resume must be a ResumeLog (or any object with "
                f"outcome_for) or a cell_key->outcome mapping, got "
                f"{type(resume).__name__}"
            )
        outcomes = {}
        for index, spec in enumerate(specs):
            outcome = lookup(spec.cell_key)
            if outcome is not None:
                outcomes[index] = outcome
        return outcomes

    def run(
        self,
        specs: list[CampaignSpec],
        trace_shards: int = 1,
        resume=None,
    ) -> list[CampaignOutcome]:
        """Execute every campaign; outcomes are returned in *input* order.

        A thin wrapper that drains :meth:`stream` — dispatch order follows
        the scheduler (backpressured queries first), which matters for
        time-to-first-recommendation under limited workers but never
        changes any campaign's result.  If any campaign failed, the fleet
        still runs to completion and a :class:`CampaignExecutionError`
        carrying every failure (plus the surviving outcomes) is raised
        afterwards.
        """
        outcomes: dict[int, CampaignOutcome] = {}
        failures: list[CampaignFailed] = []
        for event in self.stream(specs, trace_shards=trace_shards, resume=resume):
            if isinstance(event, CampaignFinished):
                outcomes[event.index] = event.outcome
            elif isinstance(event, CampaignFailed):
                failures.append(event)
        if failures:
            raise CampaignExecutionError(failures, outcomes)
        return [outcomes[index] for index in range(len(specs))]

    def stream(
        self,
        specs: list[CampaignSpec],
        trace_shards: int = 1,
        resume=None,
    ):
        """Execute every campaign, yielding typed events as work completes.

        The stream contains exactly one :class:`CampaignStarted` per
        executed campaign followed — after its :class:`StepCompleted`
        events in monotonically increasing ``step_index`` order — by
        either its :class:`CampaignFinished` or, if its worker died, its
        :class:`CampaignFailed`; then one final :class:`CacheStats`.
        Unsharded campaigns emit their step events live as each tuning
        process completes on both the thread backend (in-process queue)
        and the process backend (manager-backed relay queue); sharded
        campaigns and the sequential backend emit a campaign's block when
        it completes.  ``seq`` is stamped monotonically at the consumer,
        so merged shard/worker streams never interleave out of order.

        ``resume`` (a :class:`~repro.api.resume.ResumeLog` or a
        ``cell_key -> CampaignOutcome`` mapping) replays campaigns already
        recorded: each yields a :class:`CampaignSkipped` marker plus the
        recorded :class:`CampaignFinished` — bit-identical result, no
        re-execution — before the remaining campaigns dispatch.
        """
        if not isinstance(trace_shards, int) or trace_shards < 1:
            raise ValueError(f"trace_shards must be a positive integer, got {trace_shards!r}")
        specs = list(specs)
        self._check_specs(specs)
        resumed = self._resumed_outcomes(specs, resume)
        self._check_executable(
            [spec for index, spec in enumerate(specs) if index not in resumed]
        )
        seq = 0

        def stamped(event):
            nonlocal seq
            event = dataclasses.replace(event, seq=seq)
            seq += 1
            return event

        if specs:
            resumed_from = str(getattr(resume, "path", "") or "")
            for index in sorted(resumed):
                spec = specs[index]
                outcome = resumed[index]
                yield stamped(CampaignSkipped(
                    campaign=spec.name,
                    index=index,
                    backend=self.backend,
                    n_steps=len(outcome.result.processes),
                    resumed_from=resumed_from,
                    cell_key=spec.cell_key,
                ))
                yield stamped(self._finished_event(spec, index, outcome))
            units = self._plan_units(specs, trace_shards, skip=set(resumed))
            if units or resumed:
                # Resumed-only fleets still warm (no pool spins up for
                # them below): their completed cells' pure entries belong
                # in this service's cache set — and any snapshot taken
                # from it — not just their recorded results.
                self._prewarm_for(specs, units, resumed)
            if units:
                if self.backend == "sequential":
                    emitter = self._stream_sequential(specs, units)
                elif self.backend == "thread":
                    emitter = self._stream_threaded(specs, units)
                else:
                    emitter = self._stream_processes(specs, units)
                for event in emitter:
                    yield stamped(event)
        yield stamped(CacheStats(stats=self.cache_stats()))

    # -- pre-warming ----------------------------------------------------

    def _prewarm_min_demand(self) -> int | None:
        """The key-demand threshold of this backend's pre-warm policy, or
        ``None`` when pre-warming is disabled outright."""
        if self.prewarm is False or self.pretrained is None:
            return None
        if self.prewarm is True:
            return 1
        if self.backend == "process":
            return 1            # worker-local caches duplicate everything
        if self.backend == "thread":
            return 2            # only de-duplicate concurrent cold misses
        return RESUME_DEMAND    # sequential: resume-covered entries only

    def _prewarm_for(self, specs, units, resumed) -> None:
        """Populate the shared caches before the fleet dispatches.

        A key's demand is the number of work units that will consult it
        (shards replay their prefix, so every shard counts); campaigns a
        resume log already covers carry :data:`RESUME_DEMAND` — their pure
        entries warm the missing cells and the next ``cache_path``
        snapshot without re-executing anything.
        """
        min_demand = self._prewarm_min_demand()
        if min_demand is None:
            self.last_prewarm = {}
            return
        unit_counts: dict[int, int] = {}
        for unit in units:
            unit_counts[unit.spec_index] = unit_counts.get(unit.spec_index, 0) + 1
        demands = [
            RESUME_DEMAND if index in resumed else unit_counts.get(index, 0)
            for index in range(len(specs))
        ]
        self.last_prewarm = prewarm_caches(
            self.pretrained,
            self.caches,
            specs,
            fit_dedup=self.fit_dedup,
            demands=demands,
            min_demand=min_demand,
        )

    def _warm_entries(self, exclude=frozenset()) -> dict:
        """Per-section ``[(key, value), ...]`` snapshots for worker pools."""
        entries: dict = {}
        for kind in ("assign", "warmup", "distill", "embed"):
            if kind in exclude:
                continue
            try:
                cache = self.caches.section(kind)
            except KeyError:
                continue
            items = cache.items_snapshot()
            if items:
                entries[kind] = items
        return entries

    # -- backend-specific emitters -------------------------------------

    def _stream_sequential(self, specs, units):
        parts: dict[int, dict[int, CampaignOutcome]] = {}
        failed: set[int] = set()
        for unit in units:
            if unit.spec_index in failed:
                continue            # a sibling shard already failed this campaign
            spec = specs[unit.spec_index]
            try:
                outcome = execute_campaign(
                    spec,
                    self.pretrained,
                    self.caches,
                    self.fit_dedup,
                    keep_from=unit.keep_from,
                    stop_at=unit.stop_at,
                )
            except Exception as error:
                failed.add(unit.spec_index)
                yield self._started_event(spec, unit.spec_index, unit.n_shards)
                yield self._failed_event(
                    spec, unit.spec_index, _failure_payload(error)
                )
                continue
            shard_parts = parts.setdefault(unit.spec_index, {})
            shard_parts[unit.shard_index] = outcome
            if len(shard_parts) == unit.n_shards:
                merged = _merge_outcomes(spec, shard_parts, self.backend)
                yield from self._replay_campaign(
                    spec, unit.spec_index, merged, unit.n_shards
                )

    def _run_unit_threaded(self, spec, unit: _Unit, events) -> None:
        """One thread-backend worker: same relay protocol as a process."""
        sink = None
        try:
            if unit.live:
                events.put((
                    "event", unit, self._started_event(spec, unit.spec_index, 1)
                ))
                sink = lambda event: events.put(("event", unit, event))  # noqa: E731
            outcome = execute_campaign(
                spec,
                self.pretrained,
                self.caches,
                self.fit_dedup,
                sink=sink,
                keep_from=unit.keep_from,
                stop_at=unit.stop_at,
            )
        except BaseException as error:  # noqa: BLE001 — relayed as data
            events.put(("error", unit, _failure_payload(error)))
            return
        events.put(("done", unit, outcome))

    def _stream_threaded(self, specs, units):
        events: queue.SimpleQueue = queue.SimpleQueue()
        pool = ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            futures = {
                unit: pool.submit(
                    self._run_unit_threaded, specs[unit.spec_index], unit, events
                )
                for unit in units
            }
            yield from self._drain(specs, futures, events.get)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def _stream_processes(self, specs, units):
        import multiprocessing

        from repro.service.shm import SharedArrayStore, publish_sections

        context = multiprocessing.get_context(self.start_method)
        manager = self._manager
        own_manager = False
        if manager is None:
            # The relay queue needs a manager even when the caches are
            # worker-local; own one for the duration of the stream.
            manager = context.Manager()
            own_manager = True
        shared_sections = None
        if self._manager is not None:
            # Manager-backed sections are proxy objects and pickle
            # cleanly to workers; thread-local sections would not.
            shared_sections = {"assign": self.caches.section("assign")}
        # Warm entries cross the pool border as shared-memory descriptors:
        # the parent publishes each numpy-heavy payload into one segment
        # and workers attach read-only views — one copy for the whole
        # fleet, instead of a pickled copy per worker.  The store is
        # parent-owned; the ``finally`` below (which runs even when the
        # drain loop turned a killed worker into a CampaignFailed) and the
        # store's own atexit hook guarantee the segments are unlinked.
        store = self._shm_store if self._shm_store is not None else SharedArrayStore()
        own_store = store is not self._shm_store
        warm_entries = self._warm_entries(exclude=set(shared_sections or ()))
        shm_payload = publish_sections(warm_entries, store)
        relay = manager.Queue()
        pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(
                self.pretrained, self.fit_dedup, shared_sections,
                self.backend, None, shm_payload,
            ),
        )
        try:
            futures = {
                unit: pool.submit(
                    _run_in_worker, specs[unit.spec_index], unit, relay
                )
                for unit in units
            }
            yield from self._drain(specs, futures, relay.get)
            if self.collect_worker_caches:
                self._collect_from_workers(
                    pool, manager, exclude=set(shared_sections or ())
                )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
            if own_store:
                store.close()
            if own_manager:
                manager.shutdown()

    def _collect_from_workers(self, pool, manager, exclude=frozenset()) -> None:
        """Merge worker-locally computed cache entries into the parent.

        Runs after a successful drain, while the pool's workers are idle:
        one :func:`_collect_worker_entries` task per live worker,
        synchronised on a manager barrier so each worker answers exactly
        once.  Only keys the parent does not already hold travel back
        (the worker filters against the parent's snapshot), and the first
        worker to return a key wins — entries are pure, so duplicates are
        bit-identical anyway.  Any failure (broken pool after a killed
        worker, barrier timeout, dead manager) abandons collection
        silently: it can lose cache entries, never results.
        """
        n_workers = len(getattr(pool, "_processes", None) or {})
        if not n_workers:
            return
        known: dict[str, set] = {}
        for kind in ("assign", "warmup", "distill", "embed"):
            if kind in exclude:
                continue
            try:
                section = self.caches.section(kind)
            except KeyError:
                continue
            known[kind] = {key for key, _ in section.items_snapshot()}
        if not known:
            return
        try:
            barrier = manager.Barrier(n_workers)
            collectors = [
                pool.submit(
                    _collect_worker_entries, barrier, known, self.collect_timeout
                )
                for _ in range(n_workers)
            ]
        except Exception:  # noqa: BLE001 — broken pool/manager: skip collection
            return
        deadline = time.monotonic() + self.collect_timeout + self.sentinel_grace
        for future in collectors:
            try:
                entries = future.result(
                    timeout=max(0.0, deadline - time.monotonic())
                )
            except Exception:  # noqa: BLE001 — a lost worker loses only entries
                continue
            for kind in sorted(entries):
                seen = known.get(kind)
                if seen is None:
                    continue
                section = self.caches.section(kind)
                for key, value in entries[kind]:
                    if key in seen:
                        continue
                    seen.add(key)
                    section.put(key, value)

    def _drain(self, specs, futures: dict, get_event):
        """Yield worker-relayed events until every submitted unit resolves.

        The single consumer loop behind the thread and process backends.
        Blocking on the relay queue is bounded (``poll_seconds``): every
        idle tick re-checks worker liveness, so a worker that died without
        posting its sentinel — killed process, fatal error outside the
        worker body — resolves as a :class:`CampaignFailed` instead of
        hanging the stream, and the surviving workers keep streaming.
        """
        self._active_futures = dict(futures)
        parts: dict[int, dict[int, CampaignOutcome]] = {}
        failed: set[int] = set()
        started: set[int] = set()
        pending: set[_Unit] = set(futures)
        silent_since: dict[_Unit, float] = {}
        try:
            while pending:
                try:
                    item = get_event(timeout=self.poll_seconds)
                except queue.Empty:
                    for unit in list(pending):
                        future = futures[unit]
                        if not future.done():
                            continue
                        error = future.exception()
                        if error is not None:
                            pending.discard(unit)
                            yield from self._absorb(
                                specs, parts, failed, started,
                                ("error", unit, _failure_payload(error)),
                            )
                            continue
                        # Future completed but its sentinel has not been
                        # seen: on the process backend the relay item may
                        # still be in IPC flight, so allow a grace window
                        # before declaring the sentinel lost.
                        first_seen = silent_since.setdefault(unit, time.monotonic())
                        if time.monotonic() - first_seen >= self.sentinel_grace:
                            pending.discard(unit)
                            payload = _FailurePayload(
                                error_type="RuntimeError",
                                error_message=(
                                    "worker exited without posting its result"
                                ),
                                traceback="",
                            )
                            yield from self._absorb(
                                specs, parts, failed, started,
                                ("error", unit, payload),
                            )
                    continue
                kind, unit, payload = item
                if kind == "event":
                    if unit.spec_index in failed:
                        continue
                    if isinstance(payload, CampaignStarted):
                        started.add(unit.spec_index)
                    yield payload
                    continue
                if unit not in pending:
                    continue        # late duplicate after a synthesized failure
                pending.discard(unit)
                yield from self._absorb(specs, parts, failed, started, item)
        finally:
            self._active_futures = {}

    def _absorb(self, specs, parts, failed, started, item):
        """Fold one terminal worker item into the per-campaign state."""
        kind, unit, payload = item
        spec = specs[unit.spec_index]
        if kind == "error":
            if unit.spec_index in failed:
                return              # campaign already reported failed
            failed.add(unit.spec_index)
            if unit.spec_index not in started:
                yield self._started_event(spec, unit.spec_index, unit.n_shards)
            yield self._failed_event(spec, unit.spec_index, payload)
            return
        if unit.spec_index in failed:
            return                  # a sibling shard already failed the campaign
        shard_parts = parts.setdefault(unit.spec_index, {})
        shard_parts[unit.shard_index] = payload
        if len(shard_parts) < unit.n_shards:
            return
        merged = _merge_outcomes(spec, shard_parts, self.backend)
        if unit.live:
            # Started and steps were emitted live by the worker.
            yield self._finished_event(spec, unit.spec_index, merged)
        else:
            yield from self._replay_campaign(
                spec, unit.spec_index, merged, unit.n_shards
            )

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss counters of the in-process cache sections."""
        stats = self.caches.stats()
        if self.pretrained is not None:
            ged = getattr(self.pretrained.clustering, "cache", None)
            if isinstance(ged, SharedGEDCache):
                stats["ged"] = {"hits": ged.hits, "misses": ged.misses}
        return stats
