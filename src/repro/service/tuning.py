"""The concurrent multi-query tuning service (see package docstring).

``TuningService`` accepts many :class:`CampaignSpec` objects and executes
them through a worker pool.  Every campaign owns its engine and its
tuner (the reentrancy unit), while the expensive pure computations —
cluster assignment GEDs, warm-up datasets, distilled operating points,
parallelism-agnostic embeddings — flow through one shared
:class:`TuningCacheSet`.  Campaign results are therefore

* **identical across backends**: ``sequential``, ``thread`` and
  ``process`` runs of the same specs produce bit-identical
  ``TuningResult`` step sequences (cache hits return exactly what a
  recomputation would), and
* **independent of scheduling**: the backpressure scheduler only decides
  *when* a campaign runs, never what it computes.

Execution is **observable**: :meth:`TuningService.stream` yields typed
:mod:`repro.api.events` as campaigns progress — live per-step on the
thread backend, per completed campaign elsewhere — and
:meth:`TuningService.run` is a thin wrapper that drains the stream and
returns outcomes in input order, so the legacy blocking call stays
bit-identical.

A campaign's rate trace can additionally be **sharded** across workers
(``trace_shards``): each shard replays the trace prefix on a fresh
engine/tuner (deterministic, so the replayed state matches the unsharded
run exactly) and keeps only its own contiguous chunk; the merged result
is bit-identical to the unsharded campaign.  Replay work shrinks as the
shared caches warm, which is what makes sharding profitable on long
traces.
"""

from __future__ import annotations

import dataclasses
import os
import queue
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass

from repro.api.events import (
    CacheStats,
    CampaignFinished,
    CampaignStarted,
    Reconfigured,
    StepCompleted,
)
from repro.core.pretrain import PretrainedStreamTune
from repro.core.tuner import StreamTuneTuner
from repro.experiments.campaigns import CampaignResult, iter_campaign
from repro.service.cache import SharedGEDCache, TuningCacheSet
from repro.service.scheduler import BackpressureScheduler, CampaignSpec, FifoScheduler

BACKENDS = ("sequential", "thread", "process")


@dataclass
class CampaignOutcome:
    """One campaign's result plus service-side accounting."""

    spec_name: str
    result: CampaignResult
    wall_seconds: float
    backend: str


def _build_campaign_tuner(
    spec: CampaignSpec,
    engine,
    pretrained: PretrainedStreamTune | None,
    caches: TuningCacheSet | None,
    fit_dedup: bool,
):
    """The campaign's tuner: StreamTune through the shared caches, or any
    history-free registry method built from the spec alone."""
    from repro.api.components import streamtune_variant

    is_streamtune, model_suffix = streamtune_variant(spec.tuner)
    if is_streamtune:
        if pretrained is None:
            raise ValueError(
                f"campaign {spec.name!r} tunes with {spec.tuner!r} but the "
                "service has no pre-trained artifact (pass pretrained=...)"
            )
        # The 'streamtune-<model>' spelling carries its own layer.
        model_kind = model_suffix if model_suffix else spec.model_kind
        return StreamTuneTuner(
            engine,
            pretrained,
            model_kind=model_kind,
            max_iterations=spec.max_iterations,
            warmup_rows=spec.warmup_rows,
            seed=spec.seed,
            caches=caches,
            fit_dedup=fit_dedup,
            # Optimised fitting and batched warm-up encoding travel together:
            # both deviate from the seed path only in float-level ulps.
            batch_encode=fit_dedup,
            **spec.tuner_overrides,
        )
    from repro.api.components import TunerResources, build_tuner

    return build_tuner(spec.tuner, engine, TunerResources(), **spec.tuner_overrides)


def _step_events(campaign: str, n_steps: int, step_index: int, multiplier, process):
    """The event block one tuning process contributes to the stream."""
    for iteration, step in enumerate(process.steps):
        if step.reconfigured:
            yield Reconfigured(
                campaign=campaign,
                step_index=step_index,
                iteration=iteration,
                parallelisms=dict(step.parallelisms),
                backpressure_after=step.backpressure_after,
            )
    yield StepCompleted(
        campaign=campaign,
        step_index=step_index,
        n_steps=n_steps,
        multiplier=float(multiplier),
        parallelisms=dict(process.final_parallelisms),
        reconfigurations=process.n_reconfigurations,
        backpressure_events=process.n_backpressure_events,
        converged=process.converged,
        recommendation_seconds=process.recommendation_seconds,
    )


def execute_campaign(
    spec: CampaignSpec,
    pretrained: PretrainedStreamTune | None,
    caches: TuningCacheSet | None,
    fit_dedup: bool = True,
    *,
    sink=None,
    keep_from: int = 0,
    stop_at: int | None = None,
) -> CampaignOutcome:
    """Run one campaign end to end (the unit of work a worker executes).

    ``keep_from``/``stop_at`` select a contiguous shard of the rate trace:
    the campaign executes multipliers ``[0:stop_at)`` — replaying the
    prefix so tuner/engine state at ``keep_from`` matches the unsharded
    run bit-for-bit — and records only ``[keep_from:stop_at)``.  ``sink``
    receives a :class:`~repro.api.events.Reconfigured` /
    :class:`~repro.api.events.StepCompleted` block after each recorded
    tuning process (event construction never touches the tuner, so
    observing a campaign cannot change its results).
    """
    started = time.perf_counter()
    engine = spec.make_engine()
    tuner = _build_campaign_tuner(spec, engine, pretrained, caches, fit_dedup)
    multipliers = (
        spec.multipliers if stop_at is None else spec.multipliers[:stop_at]
    )
    iterator = iter_campaign(engine, tuner, spec.query, list(multipliers))
    while True:
        try:
            index, multiplier, process = next(iterator)
        except StopIteration as stop:
            executed = stop.value
            break
        if index < keep_from:
            continue
        if sink is not None:
            for event in _step_events(
                spec.name, len(spec.multipliers), index, multiplier, process
            ):
                sink(event)
    # The shard's view: only the kept chunk of the executed trace.
    result = CampaignResult(query_name=spec.query.name, method=tuner.name)
    result.multipliers = executed.multipliers[keep_from:]
    result.processes = executed.processes[keep_from:]
    return CampaignOutcome(
        spec_name=spec.name,
        result=result,
        wall_seconds=time.perf_counter() - started,
        backend="worker",
    )


# ----------------------------------------------------------------------
# trace sharding
# ----------------------------------------------------------------------

def shard_bounds(n_steps: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``n_steps`` into at most ``n_shards`` contiguous chunks.

    Earlier chunks take the remainder so no shard is empty and sizes
    differ by at most one.
    """
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    n_shards = min(n_shards, n_steps)
    base, extra = divmod(n_steps, n_shards)
    bounds = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


@dataclass(frozen=True)
class _Unit:
    """One worker work item: a contiguous shard of one campaign's trace."""

    spec_index: int
    shard_index: int
    n_shards: int
    keep_from: int
    stop_at: int

    @property
    def live(self) -> bool:
        """Whole-campaign units can emit step events live; shards cannot
        (their steps would interleave out of order)."""
        return self.n_shards == 1


def _merge_outcomes(
    spec: CampaignSpec, parts: dict[int, CampaignOutcome], backend: str
) -> CampaignOutcome:
    """Concatenate shard outcomes (shard order) into one campaign outcome."""
    if len(parts) == 1:
        return parts[0]
    result = CampaignResult(
        query_name=spec.query.name, method=parts[0].result.method
    )
    for shard_index in sorted(parts):
        part = parts[shard_index].result
        result.multipliers.extend(part.multipliers)
        result.processes.extend(part.processes)
    walls = [part.wall_seconds for part in parts.values()]
    return CampaignOutcome(
        spec_name=spec.name,
        result=result,
        # On a pool the campaign is as slow as its slowest shard; on the
        # sequential backend shards run one after another, so the honest
        # figure is their sum (prefix replay included).
        wall_seconds=sum(walls) if backend == "sequential" else max(walls),
        backend=backend,
    )


# ----------------------------------------------------------------------
# process-backend worker state
# ----------------------------------------------------------------------

_WORKER: dict = {}


def _init_worker(
    pretrained: PretrainedStreamTune | None,
    fit_dedup: bool,
    shared_sections: dict | None = None,
) -> None:
    """Per-process initialiser: install the model and fresh local caches.

    The pretrained artifact arrives once per worker (pickled or inherited
    via fork), not once per campaign.  Bulky numpy-laden cache sections
    are process-local; ``shared_sections`` carries the manager-backed
    stores (cluster assignment — GED entries travel inside
    ``pretrained.clustering``'s shared cache) that are cheap enough to
    share across every worker.
    """
    _WORKER["pretrained"] = pretrained
    caches = TuningCacheSet()
    for kind, cache in (shared_sections or {}).items():
        caches._caches[kind] = cache
    _WORKER["caches"] = caches
    _WORKER["fit_dedup"] = fit_dedup


def _run_in_worker(
    spec: CampaignSpec, keep_from: int = 0, stop_at: int | None = None
) -> CampaignOutcome:
    return execute_campaign(
        spec,
        _WORKER["pretrained"],
        _WORKER["caches"],
        _WORKER["fit_dedup"],
        keep_from=keep_from,
        stop_at=stop_at,
    )


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------

class TuningService:
    """Execute many tuning campaigns concurrently over shared caches."""

    def __init__(
        self,
        pretrained: PretrainedStreamTune | None,
        backend: str = "thread",
        max_workers: int | None = None,
        prioritize_backpressure: bool = True,
        fit_dedup: bool = True,
        share_ged_cache: bool = True,
        manager=None,
        caches: TuningCacheSet | None = None,
    ) -> None:
        """``backend`` selects the worker pool: ``thread`` (default; shares
        every cache section in-process), ``process`` (one Python per
        worker; pass a started ``multiprocessing.Manager`` as ``manager``
        to share the GED/assignment stores across workers too), or
        ``sequential`` (no pool — the reference path concurrency must
        reproduce bit-for-bit).

        ``pretrained`` may be ``None`` when every campaign tunes with a
        history-free baseline method (ds2, conttune, oracle); StreamTune
        campaigns then fail with a clear error.

        ``share_ged_cache=True`` replaces the pretrained clustering's
        private :class:`~repro.ged.search.GEDCache` with a
        :class:`SharedGEDCache` seeded from the existing entries — an exact
        upgrade (same values, now concurrency-safe and shared).

        ``caches`` injects a pre-populated :class:`TuningCacheSet` (for
        example one loaded from a ``TuningCacheSet.load`` snapshot) so
        warm-up datasets, distilled rows and embeddings survive between
        service runs; ``None`` builds a fresh set for this service.
        """
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.pretrained = pretrained
        self.backend = backend
        self.max_workers = max_workers or min(8, (os.cpu_count() or 1) * 2)
        self.scheduler = BackpressureScheduler() if prioritize_backpressure else FifoScheduler()
        self.fit_dedup = fit_dedup
        self._manager = manager
        if share_ged_cache and pretrained is not None:
            self._install_shared_ged_cache()
        self.caches = caches if caches is not None else self._make_cache_set()

    # -- construction helpers ------------------------------------------

    def _make_cache_set(self) -> TuningCacheSet:
        if self.backend == "process" and self._manager is not None:
            # Only the tiny cross-worker-profitable sections go through the
            # manager (IPC per access); bulky numpy-laden sections stay
            # worker-local via _init_worker.
            return TuningCacheSet(
                sections={"assign": 65536},
                mapping_factory=self._manager.dict,
                lock_factory=self._manager.RLock,
            )
        return TuningCacheSet()

    def _install_shared_ged_cache(self) -> None:
        clustering = self.pretrained.clustering
        old = getattr(clustering, "cache", None)
        if isinstance(old, SharedGEDCache):
            return
        if self.backend == "process" and self._manager is not None:
            from repro.service.cache import ConcurrentLRUCache

            shared = SharedGEDCache(
                costs=old.costs,
                exact_store=ConcurrentLRUCache(
                    mapping=self._manager.dict(), lock=self._manager.RLock()
                ),
                bound_store=ConcurrentLRUCache(
                    mapping=self._manager.dict(), lock=self._manager.RLock()
                ),
            )
        else:
            shared = SharedGEDCache(costs=old.costs)
        # Exact migration: seed the shared store with every distance the
        # clustering phase already paid for.
        for key, value in getattr(old, "_exact", {}).items():
            shared._exact.put(key, value)
        clustering.cache = shared

    # -- execution ------------------------------------------------------

    def _plan_units(
        self, specs: list[CampaignSpec], trace_shards: int
    ) -> list[_Unit]:
        """Work units in dispatch order: scheduler order over campaigns,
        shard order within a campaign."""
        order = self.scheduler.order(list(specs))
        units = []
        for spec_index in order:
            bounds = shard_bounds(len(specs[spec_index].multipliers), trace_shards)
            for shard_index, (keep_from, stop_at) in enumerate(bounds):
                units.append(
                    _Unit(
                        spec_index=spec_index,
                        shard_index=shard_index,
                        n_shards=len(bounds),
                        keep_from=keep_from,
                        stop_at=stop_at,
                    )
                )
        return units

    def _started_event(self, spec, index, n_shards) -> CampaignStarted:
        return CampaignStarted(
            campaign=spec.name,
            index=index,
            engine=spec.engine,
            tuner=spec.tuner,
            backend=self.backend,
            n_steps=len(spec.multipliers),
            shards=n_shards,
        )

    def _finished_event(self, spec, index, outcome) -> CampaignFinished:
        outcome.backend = self.backend
        return CampaignFinished(
            campaign=spec.name,
            index=index,
            backend=self.backend,
            n_steps=len(outcome.result.processes),
            converged_steps=sum(
                1 for process in outcome.result.processes if process.converged
            ),
            wall_seconds=outcome.wall_seconds,
            outcome=outcome,
        )

    def _replay_campaign(self, spec, index, outcome, n_shards):
        """The full event block of a completed campaign (steps re-derived
        from the recorded result — identical to live emission)."""
        yield self._started_event(spec, index, n_shards)
        for step_index, (multiplier, process) in enumerate(
            zip(outcome.result.multipliers, outcome.result.processes)
        ):
            yield from _step_events(
                spec.name, len(spec.multipliers), step_index, multiplier, process
            )
        yield self._finished_event(spec, index, outcome)

    @staticmethod
    def _check_specs(specs: list[CampaignSpec]) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"campaign names must be unique, got {sorted(names)}")

    def run(
        self, specs: list[CampaignSpec], trace_shards: int = 1
    ) -> list[CampaignOutcome]:
        """Execute every campaign; outcomes are returned in *input* order.

        A thin wrapper that drains :meth:`stream` — dispatch order follows
        the scheduler (backpressured queries first), which matters for
        time-to-first-recommendation under limited workers but never
        changes any campaign's result.
        """
        outcomes: dict[int, CampaignOutcome] = {}
        for event in self.stream(specs, trace_shards=trace_shards):
            if isinstance(event, CampaignFinished):
                outcomes[event.index] = event.outcome
        return [outcomes[index] for index in range(len(specs))]

    def stream(self, specs: list[CampaignSpec], trace_shards: int = 1):
        """Execute every campaign, yielding typed events as work completes.

        The stream contains exactly one :class:`CampaignStarted` /
        :class:`CampaignFinished` pair per campaign (completion order
        across campaigns), every campaign's :class:`StepCompleted` events
        in monotonically increasing ``step_index`` order between its pair,
        and one final :class:`CacheStats`.  On the thread backend,
        unsharded campaigns emit their step events live as each tuning
        process completes; sharded campaigns and the sequential/process
        backends emit a campaign's block when it completes.
        """
        if not isinstance(trace_shards, int) or trace_shards < 1:
            raise ValueError(f"trace_shards must be a positive integer, got {trace_shards!r}")
        self._check_specs(specs)
        seq = 0

        def stamped(event):
            nonlocal seq
            event = dataclasses.replace(event, seq=seq)
            seq += 1
            return event

        if specs:
            units = self._plan_units(specs, trace_shards)
            if self.backend == "sequential":
                emitter = self._stream_sequential(specs, units)
            elif self.backend == "thread":
                emitter = self._stream_threaded(specs, units)
            else:
                emitter = self._stream_processes(specs, units)
            for event in emitter:
                yield stamped(event)
        yield stamped(CacheStats(stats=self.cache_stats()))

    # -- backend-specific emitters -------------------------------------

    def _stream_sequential(self, specs, units):
        parts: dict[int, dict[int, CampaignOutcome]] = {}
        for unit in units:
            spec = specs[unit.spec_index]
            outcome = execute_campaign(
                spec,
                self.pretrained,
                self.caches,
                self.fit_dedup,
                keep_from=unit.keep_from,
                stop_at=unit.stop_at,
            )
            shard_parts = parts.setdefault(unit.spec_index, {})
            shard_parts[unit.shard_index] = outcome
            if len(shard_parts) == unit.n_shards:
                merged = _merge_outcomes(spec, shard_parts, self.backend)
                yield from self._replay_campaign(
                    spec, unit.spec_index, merged, unit.n_shards
                )

    def _stream_threaded(self, specs, units):
        events: queue.SimpleQueue = queue.SimpleQueue()
        parts: dict[int, dict[int, CampaignOutcome]] = {}

        def run_unit(unit: _Unit):
            spec = specs[unit.spec_index]
            if unit.live:
                events.put(("event", self._started_event(spec, unit.spec_index, 1)))
            sink = (lambda event: events.put(("event", event))) if unit.live else None
            try:
                outcome = execute_campaign(
                    spec,
                    self.pretrained,
                    self.caches,
                    self.fit_dedup,
                    sink=sink,
                    keep_from=unit.keep_from,
                    stop_at=unit.stop_at,
                )
            except BaseException as error:  # noqa: BLE001 — repropagated below
                events.put(("error", unit, error))
                raise
            events.put(("done", unit, outcome))

        pool = ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            for unit in units:
                pool.submit(run_unit, unit)
            pending = len(units)
            while pending:
                item = events.get()
                if item[0] == "event":
                    yield item[1]
                    continue
                pending -= 1
                if item[0] == "error":
                    raise item[2]
                _, unit, outcome = item
                spec = specs[unit.spec_index]
                shard_parts = parts.setdefault(unit.spec_index, {})
                shard_parts[unit.shard_index] = outcome
                if len(shard_parts) < unit.n_shards:
                    continue
                merged = _merge_outcomes(spec, shard_parts, self.backend)
                if unit.live:
                    # Started and steps were emitted live by the worker.
                    yield self._finished_event(spec, unit.spec_index, merged)
                else:
                    yield from self._replay_campaign(
                        spec, unit.spec_index, merged, unit.n_shards
                    )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def _stream_processes(self, specs, units):
        shared_sections = None
        if self._manager is not None:
            # Manager-backed sections are proxy objects and pickle
            # cleanly to workers; thread-local sections would not.
            shared_sections = {"assign": self.caches.section("assign")}
        parts: dict[int, dict[int, CampaignOutcome]] = {}
        pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_worker,
            initargs=(self.pretrained, self.fit_dedup, shared_sections),
        )
        try:
            futures = {
                pool.submit(
                    _run_in_worker,
                    specs[unit.spec_index],
                    unit.keep_from,
                    unit.stop_at,
                ): unit
                for unit in units
            }
            for future in as_completed(futures):
                unit = futures[future]
                spec = specs[unit.spec_index]
                shard_parts = parts.setdefault(unit.spec_index, {})
                shard_parts[unit.shard_index] = future.result()
                if len(shard_parts) < unit.n_shards:
                    continue
                merged = _merge_outcomes(spec, shard_parts, self.backend)
                yield from self._replay_campaign(
                    spec, unit.spec_index, merged, unit.n_shards
                )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss counters of the in-process cache sections."""
        stats = self.caches.stats()
        if self.pretrained is not None:
            ged = getattr(self.pretrained.clustering, "cache", None)
            if isinstance(ged, SharedGEDCache):
                stats["ged"] = {"hits": ged.hits, "misses": ged.misses}
        return stats
