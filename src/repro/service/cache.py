"""Concurrency-safe lookaside caches for the tuning service.

Three layers:

* :class:`ConcurrentLRUCache` — a bounded ``get_or_compute`` cache safe
  under threads (a plain lock + ordered dict) or processes (pass a
  ``multiprocessing.Manager`` dict/lock pair as backing store; eviction is
  then insertion-ordered rather than strictly least-recently-used, since a
  proxied mapping cannot be reordered cheaply).
* :class:`TuningCacheSet` — the kind-routed facade the tuner consults
  (``assign`` / ``warmup`` / ``distill`` / ``embed`` sections, one cache
  each) via ``get_or_compute(kind, key, builder)``.
* :class:`SharedGEDCache` — a :class:`repro.ged.search.GEDCache`-compatible
  wrapper that funnels pairwise GED distances and threshold verifications
  through a concurrency-safe store, so one service run never computes the
  same graph pair twice even across campaigns (and, with manager-backed
  storage, across worker processes).

All cached values are pure functions of their key, so a cache hit is
*bit-identical* to a recomputation — concurrent campaigns stay exactly
reproducible no matter which worker populated an entry first.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from collections.abc import MutableMapping
from pathlib import Path

from repro.ged.astar_lsa import astar_lsa_ged
from repro.ged.bounds import combined_bound
from repro.ged.costs import DEFAULT_COSTS, EditCosts
from repro.ged.search import BOUND_SLACK, nearest_center
from repro.ged.view import as_view

_LOCAL_RLOCK_TYPE = type(threading.RLock())


class SnapshotError(ValueError):
    """A :meth:`TuningCacheSet.load` snapshot is unreadable or incompatible.

    A ``ValueError`` subclass so existing ``except ValueError`` callers
    keep working; the message always names the file and — for version
    mismatches — both the snapshot's version and the version this build
    reads.
    """


class ConcurrentLRUCache:
    """A bounded key/value cache with ``get_or_compute`` semantics.

    With the default backing (``OrderedDict`` + ``threading.RLock``) the
    cache is a classic thread-safe LRU.  For cross-process sharing pass a
    manager-proxied ``mapping`` and ``lock``; entries are then evicted in
    insertion order (proxies cannot move keys) which is close enough for
    the service's access patterns, where hot keys are written once and
    read many times.

    Builders run *outside* the lock: two racing workers may both compute a
    missing entry, but builders are pure functions of the key, so both
    compute the same value and either write is correct.  That trade keeps
    an expensive miss from serialising every other worker's hits.
    """

    def __init__(
        self,
        maxsize: int = 65536,
        mapping: MutableMapping | None = None,
        lock=None,
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: MutableMapping = OrderedDict() if mapping is None else mapping
        self._reorderable = mapping is None
        self._lock = threading.RLock() if lock is None else lock
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    # A process-local RLock cannot be pickled; manager proxies can.  When a
    # cache with local backing travels to a worker (e.g. inside a pickled
    # pretrained artifact on spawn-based platforms), the worker receives a
    # snapshot of the data under a fresh lock of its own.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if isinstance(self._lock, _LOCAL_RLOCK_TYPE):
            state["_lock"] = None
        if isinstance(self._data, OrderedDict):
            state["_data"] = OrderedDict(self._data)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._lock is None:
            self._lock = threading.RLock()

    def get(self, key, default=None):
        # Lookup via KeyError rather than an identity sentinel: a
        # manager-proxied mapping round-trips ``get``'s default through
        # pickle, so a sentinel would come back as a *different* object and
        # misses would masquerade as hits.
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                return default
            if self._reorderable:
                self._data.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            if self._reorderable:
                self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._evict_one()

    def _evict_one(self) -> None:
        if self._reorderable:
            self._data.popitem(last=False)
            return
        # Proxied mapping: drop the oldest inserted key.
        for key in self._data.keys():
            del self._data[key]
            return

    def get_or_compute(self, key, builder):
        """Return the cached value for ``key``, computing it on a miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
            else:
                self.hits += 1
                if self._reorderable:
                    self._data.move_to_end(key)
                return value
        value = builder()
        self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"size": len(self._data), "hits": self.hits, "misses": self.misses}


#: Cache sections the tuner consults, with per-section capacity defaults.
#: ``assign`` entries are a handful of bytes; ``warmup`` datasets are the
#: largest (hundreds of rows), so their section is kept deliberately small.
CACHE_SECTIONS: dict[str, int] = {
    "assign": 65536,
    "warmup": 64,
    "distill": 4096,
    "embed": 4096,
}


class TuningCacheSet:
    """Kind-routed cache facade shared by every campaign of a service run."""

    def __init__(
        self,
        sections: dict[str, int] | None = None,
        mapping_factory=None,
        lock_factory=None,
    ) -> None:
        """``mapping_factory``/``lock_factory`` create the backing store per
        section — pass ``manager.dict`` / ``manager.RLock`` for a
        process-shared cache set, or leave ``None`` for thread-local ones.
        """
        sections = dict(CACHE_SECTIONS if sections is None else sections)
        self._caches = {
            kind: ConcurrentLRUCache(
                maxsize=size,
                mapping=mapping_factory() if mapping_factory is not None else None,
                lock=lock_factory() if lock_factory is not None else None,
            )
            for kind, size in sections.items()
        }

    def get_or_compute(self, kind: str, key, builder):
        cache = self._caches.get(kind)
        if cache is None:
            # Unknown section: compute without caching rather than failing —
            # the tuner may grow new sections before every deployment of the
            # service learns about them.
            return builder()
        return cache.get_or_compute(key, builder)

    def section(self, kind: str) -> ConcurrentLRUCache:
        return self._caches[kind]

    def stats(self) -> dict[str, dict[str, int]]:
        return {kind: cache.stats() for kind, cache in self._caches.items()}

    def clear(self) -> None:
        for cache in self._caches.values():
            cache.clear()

    # -- persistence ----------------------------------------------------
    #
    # Every cached value is a pure function of its key, so a snapshot
    # taken after one service run warms the next run *exactly*: a loaded
    # entry returns bit-identically what a recomputation would.

    #: On-disk snapshot format version; bump on incompatible layout change.
    #: v2: ``distill``/``embed`` sections are keyed by the cross-query
    #: structure signature and ``embed`` stores the embedding matrix alone.
    SNAPSHOT_VERSION = 2
    _SNAPSHOT_FORMAT = "repro.service.TuningCacheSet"

    def save(self, path: str | Path) -> None:
        """Write a versioned snapshot of every section's entries.

        The write is atomic (temp file + rename), so a crash mid-save
        never corrupts an existing snapshot.  Hit/miss counters are
        service-run accounting and are deliberately not persisted.
        """
        sections = {}
        for kind, cache in self._caches.items():
            with cache._lock:
                entries = list(cache._data.items())
            sections[kind] = {"maxsize": cache.maxsize, "entries": entries}
        payload = {
            "format": self._SNAPSHOT_FORMAT,
            "version": self.SNAPSHOT_VERSION,
            "sections": sections,
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temp.replace(path)

    @classmethod
    def load(cls, path: str | Path) -> "TuningCacheSet":
        """Rebuild a cache set from a :meth:`save` snapshot.

        Raises :class:`SnapshotError` (a ``ValueError``) with the file
        named when the bytes are not a snapshot at all, and — on a
        version mismatch — a message naming *both* the snapshot's version
        and the version this build reads, checked before any section
        entry is touched so an incompatible layout never fails deep in
        unpickling.
        """
        path = Path(path)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError,
                IndexError) as error:
            # Everything the pickle machinery throws on corrupt/foreign
            # bytes, surfaced as one clear error naming the file.
            raise SnapshotError(
                f"{path} is not a TuningCacheSet snapshot (unreadable "
                f"pickle: {error})"
            ) from None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != cls._SNAPSHOT_FORMAT
        ):
            raise SnapshotError(f"{path} is not a TuningCacheSet snapshot")
        version = payload.get("version")
        if version != cls.SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path} has snapshot version {version!r}; this build reads "
                f"version {cls.SNAPSHOT_VERSION} — regenerate the cache file"
            )
        sections = payload["sections"]
        caches = cls(
            sections={kind: meta["maxsize"] for kind, meta in sections.items()}
        )
        for kind, meta in sections.items():
            section = caches._caches[kind]
            for key, value in meta["entries"]:
                section.put(key, value)
        return caches


class SharedGEDCache:
    """Drop-in replacement for :class:`repro.ged.search.GEDCache`.

    Same public surface (``distance`` / ``within`` / ``hits`` / ``misses``)
    but both the exact-distance table and the threshold lower bounds live in
    :class:`ConcurrentLRUCache` stores, so cluster assignment — which calls
    ``distance`` against every cluster center — is safe from concurrent
    campaigns and never repeats a pairwise computation.  A cache hit
    returns exactly the float the first computation produced.
    """

    def __init__(
        self,
        costs: EditCosts = DEFAULT_COSTS,
        exact_store: ConcurrentLRUCache | None = None,
        bound_store: ConcurrentLRUCache | None = None,
    ) -> None:
        self.costs = costs
        self._exact = exact_store if exact_store is not None else ConcurrentLRUCache()
        self._bounds = bound_store if bound_store is not None else ConcurrentLRUCache()

    @property
    def hits(self) -> int:
        return self._exact.hits + self._bounds.hits

    @property
    def misses(self) -> int:
        return self._exact.misses + self._bounds.misses

    @staticmethod
    def _key(a, b) -> tuple[str, str]:
        return (a.signature, b.signature) if a.signature <= b.signature else (
            b.signature,
            a.signature,
        )

    def distance(self, graph1, graph2) -> float:
        a, b = as_view(graph1), as_view(graph2)
        key = self._key(a, b)

        def compute() -> float:
            value = astar_lsa_ged(a, b, costs=self.costs)
            assert value is not None
            return value

        return self._exact.get_or_compute(key, compute)

    def within(self, graph1, graph2, threshold: float) -> bool:
        a, b = as_view(graph1), as_view(graph2)
        key = self._key(a, b)
        known = self._exact.get(key, None)
        if known is not None:
            self._exact.hits += 1
            return known <= threshold + 1e-9
        bound = self._bounds.get(key, None)
        if bound is not None and bound > threshold:
            self._bounds.hits += 1
            return False
        self._bounds.misses += 1
        # Cheap admissible pre-filter (see GEDCache.within): a lower bound
        # beyond the threshold settles the predicate without any search.
        cheap = combined_bound(a, b, self.costs)
        if cheap > threshold + BOUND_SLACK:
            self._bounds.put(key, max(bound or 0.0, cheap))
            return False
        value = astar_lsa_ged(a, b, costs=self.costs, threshold=threshold)
        if value is None:
            previous = self._bounds.get(key, 0.0)
            self._bounds.put(key, max(previous, threshold + 1.0))
            return False
        self._exact.put(key, value)
        return True

    def nearest(self, graph, centers) -> int:
        """Bound-pruned nearest-center index, bit-identical to the
        exhaustive argmin (see :func:`repro.ged.search.nearest_center`);
        the hot path of concurrent cluster assignment."""
        return nearest_center(self, graph, centers)
