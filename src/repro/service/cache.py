"""Concurrency-safe lookaside caches for the tuning service.

Three layers:

* :class:`ConcurrentLRUCache` — a bounded ``get_or_compute`` cache safe
  under threads (a plain lock + ordered dict) or processes (pass a
  ``multiprocessing.Manager`` dict/lock pair as backing store; eviction is
  then insertion-ordered rather than strictly least-recently-used, since a
  proxied mapping cannot be reordered cheaply).
* :class:`TuningCacheSet` — the kind-routed facade the tuner consults
  (``assign`` / ``warmup`` / ``distill`` / ``embed`` sections, one cache
  each) via ``get_or_compute(kind, key, builder)``.
* :class:`SharedGEDCache` — a :class:`repro.ged.search.GEDCache`-compatible
  wrapper that funnels pairwise GED distances and threshold verifications
  through a concurrency-safe store, so one service run never computes the
  same graph pair twice even across campaigns (and, with manager-backed
  storage, across worker processes).

All cached values are pure functions of their key, so a cache hit is
*bit-identical* to a recomputation — concurrent campaigns stay exactly
reproducible no matter which worker populated an entry first.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from collections.abc import MutableMapping
from pathlib import Path

import numpy as np

from repro.ged.astar_lsa import astar_lsa_ged
from repro.ged.bounds import combined_bound
from repro.ged.costs import DEFAULT_COSTS, EditCosts
from repro.ged.search import BOUND_SLACK, nearest_center
from repro.ged.view import as_view

_LOCAL_RLOCK_TYPE = type(threading.RLock())

#: Reserved mapping slot holding the insertion counter of proxy-backed
#: caches (a manager dict cannot be reordered, so entries carry explicit
#: insertion sequence numbers and this key carries the next one).
_SEQ_KEY = "\x00__lru_seq__"


class SnapshotError(ValueError):
    """A :meth:`TuningCacheSet.load` snapshot is unreadable or incompatible.

    A ``ValueError`` subclass so existing ``except ValueError`` callers
    keep working; the message always names the file and — for version
    mismatches — both the snapshot's version and the version this build
    reads.
    """


class ConcurrentLRUCache:
    """A bounded key/value cache with ``get_or_compute`` semantics.

    With the default backing (``OrderedDict`` + ``threading.RLock``) the
    cache is a classic thread-safe LRU.  For cross-process sharing pass a
    manager-proxied ``mapping`` and ``lock``; entries are then evicted in
    insertion order (proxies cannot move keys) which is close enough for
    the service's access patterns, where hot keys are written once and
    read many times.

    Builders run *outside* the lock: two racing workers may both compute a
    missing entry, but builders are pure functions of the key, so both
    compute the same value and either write is correct.  That trade keeps
    an expensive miss from serialising every other worker's hits.
    """

    def __init__(
        self,
        maxsize: int = 65536,
        mapping: MutableMapping | None = None,
        lock=None,
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: MutableMapping = OrderedDict() if mapping is None else mapping
        self._reorderable = mapping is None
        self._lock = threading.RLock() if lock is None else lock
        self.hits = 0
        self.misses = 0

    def _size(self) -> int:
        """Entry count, excluding the proxy branch's counter slot."""
        if self._reorderable:
            return len(self._data)
        return len(self._data) - (1 if _SEQ_KEY in self._data else 0)

    def __len__(self) -> int:
        with self._lock:
            return self._size()

    # A process-local RLock cannot be pickled; manager proxies can.  When a
    # cache with local backing travels to a worker (e.g. inside a pickled
    # pretrained artifact on spawn-based platforms), the worker receives a
    # snapshot of the data under a fresh lock of its own.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if isinstance(self._lock, _LOCAL_RLOCK_TYPE):
            state["_lock"] = None
        if isinstance(self._data, OrderedDict):
            state["_data"] = OrderedDict(self._data)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._lock is None:
            self._lock = threading.RLock()
        # A pickled copy starts its own accounting: carrying the parent's
        # hit/miss counters into a worker would double-count the parent's
        # warm-up traffic in every worker-emitted CacheStats event (fold
        # worker counters back with :func:`merge_cache_stats` instead).
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        # Lookup via KeyError rather than an identity sentinel: a
        # manager-proxied mapping round-trips ``get``'s default through
        # pickle, so a sentinel would come back as a *different* object and
        # misses would masquerade as hits.
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                return default
            if self._reorderable:
                self._data.move_to_end(key)
                return value
            return value[1]

    def put(self, key, value) -> None:
        with self._lock:
            if self._reorderable:
                self._data[key] = value
                self._data.move_to_end(key)
            else:
                # Proxied entries carry explicit insertion sequence numbers
                # (the proxy cannot be reordered); the counter lives in the
                # shared mapping itself, so workers sharing the mapping and
                # its lock agree on insertion order.
                counter = self._data.get(_SEQ_KEY, 0) + 1
                self._data[_SEQ_KEY] = counter
                self._data[key] = (counter, value)
            while self._size() > self.maxsize:
                self._evict_one()

    def _evict_one(self) -> None:
        if self._reorderable:
            self._data.popitem(last=False)
            return
        # Proxied mapping: evict the entry with the smallest insertion
        # sequence — the true oldest insertion, deterministically, instead
        # of whatever key the proxy's iteration order surfaced first.
        # Runs under the shared lock, so it cannot race a concurrent put.
        oldest_key, oldest_seq = None, None
        for key, entry in self._data.items():
            if key == _SEQ_KEY:
                continue
            if oldest_seq is None or entry[0] < oldest_seq:
                oldest_key, oldest_seq = key, entry[0]
        if oldest_key is not None:
            del self._data[oldest_key]

    def get_or_compute(self, key, builder):
        """Return the cached value for ``key``, computing it on a miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
            else:
                self.hits += 1
                if self._reorderable:
                    self._data.move_to_end(key)
                    return value
                return value[1]
        value = builder()
        self.put(key, value)
        return value

    def items_snapshot(self) -> list[tuple]:
        """Every ``(key, value)`` pair, oldest insertion first.

        The one sanctioned way to iterate a cache's entries: proxy-backed
        caches store wrapped ``(seq, value)`` entries plus a counter slot,
        and this unwraps both, so snapshot persistence and worker shipping
        see identical shapes on every backing."""
        with self._lock:
            if self._reorderable:
                return list(self._data.items())
            entries = [
                (key, entry)
                for key, entry in self._data.items()
                if key != _SEQ_KEY
            ]
        entries.sort(key=lambda pair: pair[1][0])
        return [(key, entry[1]) for key, entry in entries]

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"size": self._size(), "hits": self.hits, "misses": self.misses}


def merge_cache_stats(*stats: "dict[str, dict[str, int]]") -> dict:
    """Fold per-process cache stats into one fleet-wide view.

    Worker-emitted :class:`~repro.api.events.CacheStats` payloads count
    only the worker's own traffic (pickled caches zero their counters on
    arrival); the fleet totals are therefore a *sum* of hits and misses
    across the parent and every worker.  Sizes do not add — workers hold
    copies (or views) of the same entries, not partitions — so the merged
    size is the largest observed.
    """
    merged: dict[str, dict[str, int]] = {}
    for stat in stats:
        for section, counters in stat.items():
            into = merged.setdefault(
                section, {"size": 0, "hits": 0, "misses": 0}
            )
            for field, value in counters.items():
                if field == "size":
                    into["size"] = max(into["size"], value)
                else:
                    into[field] = into.get(field, 0) + value
    return merged


#: Cache sections the tuner consults, with per-section capacity defaults.
#: ``assign`` entries are a handful of bytes; ``warmup`` datasets are the
#: largest (hundreds of rows), so their section is kept deliberately small.
CACHE_SECTIONS: dict[str, int] = {
    "assign": 65536,
    "warmup": 64,
    "distill": 4096,
    "embed": 4096,
}


class TuningCacheSet:
    """Kind-routed cache facade shared by every campaign of a service run."""

    def __init__(
        self,
        sections: dict[str, int] | None = None,
        mapping_factory=None,
        lock_factory=None,
    ) -> None:
        """``mapping_factory``/``lock_factory`` create the backing store per
        section — pass ``manager.dict`` / ``manager.RLock`` for a
        process-shared cache set, or leave ``None`` for thread-local ones.
        """
        sections = dict(CACHE_SECTIONS if sections is None else sections)
        self._caches = {
            kind: ConcurrentLRUCache(
                maxsize=size,
                mapping=mapping_factory() if mapping_factory is not None else None,
                lock=lock_factory() if lock_factory is not None else None,
            )
            for kind, size in sections.items()
        }
        #: v2-snapshot warm-up entries awaiting re-keying — see
        #: :meth:`adopt_legacy_warmup`.
        self._legacy_warmup: list[tuple] = []

    def get_or_compute(self, kind: str, key, builder):
        cache = self._caches.get(kind)
        if cache is None:
            # Unknown section: compute without caching rather than failing —
            # the tuner may grow new sections before every deployment of the
            # service learns about them.
            return builder()
        return cache.get_or_compute(key, builder)

    def section(self, kind: str) -> ConcurrentLRUCache:
        return self._caches[kind]

    def stats(self) -> dict[str, dict[str, int]]:
        return {kind: cache.stats() for kind, cache in self._caches.items()}

    def clear(self) -> None:
        for cache in self._caches.values():
            cache.clear()

    # -- persistence ----------------------------------------------------
    #
    # Every cached value is a pure function of its key, so a snapshot
    # taken after one service run warms the next run *exactly*: a loaded
    # entry returns bit-identically what a recomputation would.

    #: On-disk snapshot format version; bump on incompatible layout change.
    #: v2: ``distill``/``embed`` sections are keyed by the cross-query
    #: structure signature and ``embed`` stores the embedding matrix alone.
    #: v3: numpy payloads are stored as ``(dtype, shape, bytes)`` records —
    #: loadable straight into shared-memory segments — and the ``warmup``
    #: section is keyed by the cluster *history signature* rather than the
    #: pretrain-run-local cluster id.  v2 snapshots migrate in place on
    #: load (see :meth:`adopt_legacy_warmup`); v1 snapshots predate the
    #: cross-query keying and cannot be migrated.
    SNAPSHOT_VERSION = 3
    #: Oldest version :meth:`load` can migrate to the current layout.
    SNAPSHOT_MIGRATABLE_FROM = 2
    _SNAPSHOT_FORMAT = "repro.service.TuningCacheSet"

    @staticmethod
    def _encode_snapshot_value(value):
        """One cache value -> a self-describing snapshot record.

        Numpy payloads become ``(dtype, shape, bytes)`` so the loader can
        land them directly in shared-memory segments; anything else is
        kept as-is (the surrounding pickle handles it).
        """
        from repro.core.finetune import PredictionDataset

        if isinstance(value, np.ndarray):
            source = np.ascontiguousarray(value)
            return ("array", str(source.dtype), tuple(source.shape),
                    source.tobytes())
        if isinstance(value, PredictionDataset) and value.labels:
            try:
                features = np.ascontiguousarray(np.stack(value.features))
            except ValueError:
                return ("pickled", value)
            return (
                "dataset",
                str(features.dtype),
                tuple(features.shape),
                features.tobytes(),
                [int(label) for label in value.labels],
            )
        return ("pickled", value)

    @staticmethod
    def _decode_snapshot_value(record, matrix=None):
        """Inverse of :meth:`_encode_snapshot_value`.

        ``matrix`` injects a pre-materialized array for the record's
        numpy payload (the shared-memory load path batches a snapshot's
        payloads into one arena via ``SharedArrayStore.materialize_all``
        and hands each view back here); ``None`` decodes from the
        record's own bytes.
        """
        from repro.core.finetune import PredictionDataset

        kind = record[0]
        if kind == "array":
            _, dtype, shape, data = record
            if matrix is not None:
                return matrix
            return np.frombuffer(data, dtype=np.dtype(dtype)).reshape(shape).copy()
        if kind == "dataset":
            _, dtype, shape, data, labels = record
            if matrix is None:
                matrix = np.frombuffer(
                    data, dtype=np.dtype(dtype)
                ).reshape(shape).copy()
            dataset = PredictionDataset()
            dataset.features = [matrix[index] for index in range(len(labels))]
            dataset.labels = [int(label) for label in labels]
            return dataset
        if kind == "pickled":
            return record[1]
        raise SnapshotError(f"unknown snapshot value record {kind!r}")

    def save(self, path: str | Path) -> None:
        """Write a versioned snapshot of every section's entries.

        The write is atomic (temp file + rename), so a crash mid-save
        never corrupts an existing snapshot.  Hit/miss counters are
        service-run accounting and are deliberately not persisted.
        """
        sections = {}
        for kind, cache in self._caches.items():
            entries = [
                (key, self._encode_snapshot_value(value))
                for key, value in cache.items_snapshot()
            ]
            sections[kind] = {"maxsize": cache.maxsize, "entries": entries}
        payload = {
            "format": self._SNAPSHOT_FORMAT,
            "version": self.SNAPSHOT_VERSION,
            "sections": sections,
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temp.replace(path)

    @classmethod
    def load(cls, path: str | Path, shared=None) -> "TuningCacheSet":
        """Rebuild a cache set from a :meth:`save` snapshot.

        ``shared`` (a :class:`repro.service.shm.SharedArrayStore`) routes
        the numpy payloads straight into shared-memory segments as they
        are decoded, so a process fleet warmed from a snapshot publishes
        descriptors without ever holding a second copy.

        Version-2 snapshots are migrated in place: their ``warmup``
        entries were keyed by the pretrain-run-local cluster id, which
        only the pretrained artifact can translate to the v3 history
        signature — they are staged and re-keyed when the service calls
        :meth:`adopt_legacy_warmup`.  Everything else loads directly.

        Raises :class:`SnapshotError` (a ``ValueError``) with the file
        named when the bytes are not a snapshot at all, a targeted
        "cannot be migrated" error for pre-v2 layouts, and — for unknown
        versions — a message naming *both* the snapshot's version and the
        version this build reads, checked before any section entry is
        touched so an incompatible layout never fails deep in unpickling.
        """
        path = Path(path)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError,
                IndexError) as error:
            # Everything the pickle machinery throws on corrupt/foreign
            # bytes, surfaced as one clear error naming the file.
            raise SnapshotError(
                f"{path} is not a TuningCacheSet snapshot (unreadable "
                f"pickle: {error})"
            ) from None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != cls._SNAPSHOT_FORMAT
        ):
            raise SnapshotError(f"{path} is not a TuningCacheSet snapshot")
        version = payload.get("version")
        if not isinstance(version, int) or version > cls.SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path} has snapshot version {version!r}; this build reads "
                f"version {cls.SNAPSHOT_VERSION} — regenerate the cache file"
            )
        if version < cls.SNAPSHOT_MIGRATABLE_FROM:
            raise SnapshotError(
                f"{path} has snapshot version {version!r}, which predates "
                f"the cross-query cache keying and cannot be migrated to "
                f"version {cls.SNAPSHOT_VERSION} — regenerate the cache file"
            )
        sections = payload["sections"]
        caches = cls(
            sections={kind: meta["maxsize"] for kind, meta in sections.items()}
        )
        # With a shared store, every numpy payload of the snapshot lands
        # in one arena segment (one disk->shm copy, one worker mapping).
        views: dict[int, object] = {}
        if shared is not None and version >= 3:
            records = []
            positions = []
            for kind, meta in sections.items():
                for key, record in meta["entries"]:
                    if record[0] in ("array", "dataset"):
                        positions.append(id(record))
                        records.append((record[3], record[1], record[2]))
            for position, view in zip(
                positions, shared.materialize_all(records)
            ):
                views[position] = view
        for kind, meta in sections.items():
            section = caches._caches[kind]
            for key, value in meta["entries"]:
                if version >= 3:
                    value = cls._decode_snapshot_value(
                        value, matrix=views.get(id(value))
                    )
                elif kind == "warmup":
                    # v2 warmup keys carry a cluster id this process
                    # cannot interpret; stage for adopt_legacy_warmup.
                    caches._legacy_warmup.append((key, value))
                    continue
                section.put(key, value)
        return caches

    def adopt_legacy_warmup(self, signature_of) -> int:
        """Re-key staged v2 ``warmup`` entries into the live section.

        ``signature_of(cluster_id) -> signature`` is the translation only
        a pretrained artifact can provide (v2 keyed warm-up datasets by
        the pretrain-run-local cluster id; v3 keys them by the cluster's
        history signature so any run with the same history hits).  Entries
        whose cluster no longer exists are dropped — a stale entry served
        under a wrong key would be worse than a cache miss.  Returns the
        number of entries adopted.
        """
        staged, self._legacy_warmup = self._legacy_warmup, []
        adopted = 0
        section = self._caches.get("warmup")
        for key, value in staged:
            try:
                cluster, rows, seed, batch = key
                new_key = (signature_of(cluster), rows, seed, batch)
            except Exception:  # noqa: BLE001 — unknown cluster/odd key: drop
                continue
            if section is not None:
                section.put(new_key, value)
                adopted += 1
        return adopted


class SharedGEDCache:
    """Drop-in replacement for :class:`repro.ged.search.GEDCache`.

    Same public surface (``distance`` / ``within`` / ``hits`` / ``misses``)
    but both the exact-distance table and the threshold lower bounds live in
    :class:`ConcurrentLRUCache` stores, so cluster assignment — which calls
    ``distance`` against every cluster center — is safe from concurrent
    campaigns and never repeats a pairwise computation.  A cache hit
    returns exactly the float the first computation produced.
    """

    def __init__(
        self,
        costs: EditCosts = DEFAULT_COSTS,
        exact_store: ConcurrentLRUCache | None = None,
        bound_store: ConcurrentLRUCache | None = None,
    ) -> None:
        self.costs = costs
        self._exact = exact_store if exact_store is not None else ConcurrentLRUCache()
        self._bounds = bound_store if bound_store is not None else ConcurrentLRUCache()

    @property
    def hits(self) -> int:
        return self._exact.hits + self._bounds.hits

    @property
    def misses(self) -> int:
        return self._exact.misses + self._bounds.misses

    @staticmethod
    def _key(a, b) -> tuple[str, str]:
        return (a.signature, b.signature) if a.signature <= b.signature else (
            b.signature,
            a.signature,
        )

    def distance(self, graph1, graph2) -> float:
        a, b = as_view(graph1), as_view(graph2)
        key = self._key(a, b)

        def compute() -> float:
            value = astar_lsa_ged(a, b, costs=self.costs)
            assert value is not None
            return value

        return self._exact.get_or_compute(key, compute)

    def within(self, graph1, graph2, threshold: float) -> bool:
        a, b = as_view(graph1), as_view(graph2)
        key = self._key(a, b)
        known = self._exact.get(key, None)
        if known is not None:
            self._exact.hits += 1
            return known <= threshold + 1e-9
        bound = self._bounds.get(key, None)
        if bound is not None and bound > threshold:
            self._bounds.hits += 1
            return False
        self._bounds.misses += 1
        # Cheap admissible pre-filter (see GEDCache.within): a lower bound
        # beyond the threshold settles the predicate without any search.
        cheap = combined_bound(a, b, self.costs)
        if cheap > threshold + BOUND_SLACK:
            self._bounds.put(key, max(bound or 0.0, cheap))
            return False
        value = astar_lsa_ged(a, b, costs=self.costs, threshold=threshold)
        if value is None:
            previous = self._bounds.get(key, 0.0)
            self._bounds.put(key, max(previous, threshold + 1.0))
            return False
        self._exact.put(key, value)
        return True

    def nearest(self, graph, centers) -> int:
        """Bound-pruned nearest-center index, bit-identical to the
        exhaustive argmin (see :func:`repro.ged.search.nearest_center`);
        the hot path of concurrent cluster assignment."""
        return nearest_center(self, graph, centers)
