"""Service-level cache pre-warming: pay for shared pure work exactly once.

Before a fleet dispatches, the service can compute every pure cache entry
its campaigns will consult — cluster assignments (bound-pruned GED),
warm-up datasets (whose record encodings coalesce through the
block-diagonal batching of :mod:`repro.gnn.batch` inside
:func:`~repro.core.finetune.build_warmup_dataset`), distilled operating
points and parallelism-agnostic embeddings — in one pass in the parent,
instead of letting each campaign (or, on the ``process`` backend, each
*worker process*) dispatch the same requests independently.

Every entry is produced by the exact builder the tuner itself would call
on a cache miss, so a pre-warmed run is bit-identical to a cold one; only
the wall-clock changes.  Three situations profit:

* **process backend** — worker-local cache sections mean each worker
  would otherwise recompute every entry it touches; pre-warmed sections
  ship to workers once, in the pool initializer;
* **thread backend** — builders run outside the cache lock (so an
  expensive miss never serialises hits), which lets two workers racing on
  the same cold key both pay for it; pre-warming keys demanded by more
  than one work unit removes the duplicated work;
* **resume** — a resumed fleet's completed cells never re-execute, but
  their pure entries are exactly what the missing cells (and the
  ``cache_path`` snapshot written afterwards) want warm; pre-warming from
  the completed cells' specs restores them without re-running campaigns.

``min_demand`` encodes the backend policy: an entry is only pre-warmed
when the number of work units that will consult it reaches the threshold
(resume-covered campaigns count as :data:`RESUME_DEMAND`, i.e. always).
"""

from __future__ import annotations

from repro.core.finetune import (
    agnostic_embeddings,
    build_warmup_dataset,
    distill_rows,
    shared_structure_key,
    warmup_cache_key,
)

#: Effective demand of a resume-covered campaign's entries: always worth
#: warming (the next snapshot must reflect completed cells), regardless of
#: the backend's duplication threshold.
RESUME_DEMAND = 1_000_000


def prewarm_caches(
    pretrained,
    caches,
    specs,
    fit_dedup: bool = True,
    demands=None,
    min_demand: int = 1,
) -> dict[str, int]:
    """Populate ``caches`` with the pure entries ``specs`` will consult.

    ``demands`` carries one weight per spec (how many work units will
    consult its entries; defaults to 1 each); an expensive entry is
    computed only when the demand summed over the specs sharing it reaches
    ``min_demand``.  Cluster assignments are always resolved (they are
    cheap, bound-pruned, and prerequisites for every other key).  Returns
    the number of *newly computed* entries per section.
    """
    stats = {"assign": 0, "warmup": 0, "distill": 0, "embed": 0}
    if pretrained is None or caches is None:
        return stats
    specs = list(specs)
    demands = [1] * len(specs) if demands is None else list(demands)
    if len(demands) != len(specs):
        raise ValueError(
            f"demands must match specs ({len(specs)}), got {len(demands)}"
        )
    if sum(demands) < min_demand:
        # No key can possibly reach the threshold (e.g. the sequential
        # backend with nothing resume-covered): touch nothing at all.
        return stats
    sections = getattr(caches, "_caches", {})

    def compute(kind, key, builder):
        if kind not in sections:
            # The cache set does not carry this section: computing the
            # value would warm nothing, so skip it.
            return None
        fresh = False

        def counted():
            nonlocal fresh
            fresh = True
            return builder()

        value = caches.get_or_compute(kind, key, counted)
        if fresh:
            stats[kind] += 1
        return value

    # -- cluster assignment per unique structure (always) ---------------
    cluster_of: dict[int, int] = {}          # spec position -> cluster id
    by_signature: dict[str, int] = {}
    for position, spec in enumerate(specs):
        if not spec.is_streamtune:
            continue
        flow = spec.query.flow
        signature = flow.structural_signature()
        cluster = by_signature.get(signature)
        if cluster is None:
            cluster = compute(
                "assign",
                (signature,),
                lambda flow=flow: pretrained.assign_cluster(flow),
            )
            if cluster is None:              # no 'assign' section configured
                cluster = pretrained.assign_cluster(flow)
            by_signature[signature] = cluster
        cluster_of[position] = cluster

    # -- demand accounting over the expensive sections ------------------
    warmup_demand: dict[tuple, int] = {}
    warmup_cluster: dict[tuple, int] = {}    # warmup key -> builder cluster id
    shared_demand: dict[tuple, int] = {}
    exemplar: dict[tuple, tuple] = {}        # shared key -> (flow, rates)
    for position, spec in enumerate(specs):
        cluster = cluster_of.get(position)
        if cluster is None:
            continue
        demand = demands[position]
        # Same signature-based key the tuner consults (the cluster *id*
        # stays out of the key — it is a pretrain-run-local artifact — but
        # the builder still needs it to reach the right encoder/history).
        warmup_key = warmup_cache_key(
            pretrained, cluster, spec.warmup_rows, spec.seed, fit_dedup
        )
        warmup_demand[warmup_key] = warmup_demand.get(warmup_key, 0) + demand
        warmup_cluster[warmup_key] = cluster
        seen: set = set()
        for multiplier in spec.multipliers:
            rates = spec.query.rates_at(multiplier)
            key = shared_structure_key(spec.query.flow, cluster, rates)
            if key in seen:
                continue                     # intra-campaign repeats hit anyway
            seen.add(key)
            shared_demand[key] = shared_demand.get(key, 0) + demand
            exemplar.setdefault(key, (spec.query.flow, rates))

    # -- warm-up datasets (bulk record encoding via repro.gnn.batch) ----
    for warmup_key, demand in warmup_demand.items():
        if demand < min_demand:
            continue
        _, max_rows, seed, batch_encode = warmup_key
        cluster = warmup_cluster[warmup_key]
        compute(
            "warmup",
            warmup_key,
            lambda c=cluster, r=max_rows, s=seed, b=batch_encode: (
                build_warmup_dataset(
                    pretrained, c, max_rows=r, seed=s, batch_encode=b
                )
            ),
        )

    # -- distilled operating points + agnostic embeddings ---------------
    for key, demand in shared_demand.items():
        if demand < min_demand:
            continue
        flow, rates = exemplar[key]
        encoder = pretrained.encoders[key[0]]
        compute(
            "distill",
            key,
            lambda e=encoder, f=flow, r=rates: distill_rows(pretrained, e, f, r),
        )
        compute(
            "embed",
            key,
            lambda e=encoder, f=flow, r=rates: (
                agnostic_embeddings(pretrained, e, f, r)
            ),
        )
    return stats
