"""Campaign scheduling for the tuning service.

A service run receives many ``(query, rate-trace)`` campaigns at once.
Workers are a scarce resource, so ordering matters: a query already
drowning in backpressure bleeds SLO for every second it waits, while an
over-provisioned query merely wastes cores.  The scheduler probes each
campaign's *initial* deployment at its first target rates (on a throwaway
engine, so campaign execution RNG streams are untouched) and dispatches
backpressured campaigns first, hottest ones leading.

Priorities only reorder dispatch — per-campaign results are independent of
execution order (each campaign owns its engine and tuner; shared caches
return bit-identical values regardless of which worker filled them), so
scheduling stays a pure latency decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.base import EngineCluster
from repro.workloads.query import StreamingQuery


@dataclass(frozen=True)
class CampaignSpec:
    """One tuning campaign: a query driven through a source-rate trace."""

    query: StreamingQuery
    multipliers: tuple[float, ...]
    engine: str = "flink"
    engine_seed: int = 20250711
    seed: int = 17
    #: Tuning method by registry name.  ``streamtune`` (the default) runs
    #: the paper's system through the shared caches; any other registered
    #: method that needs no execution history (ds2, conttune, oracle) is
    #: built per campaign from the registry.
    tuner: str = "streamtune"
    model_kind: str = "svm"
    max_iterations: int = 8
    warmup_rows: int = 300
    tuner_overrides: dict = field(default_factory=dict, hash=False, compare=False)
    #: Optional :class:`~repro.scenarios.ChaosSpec` executed alongside
    #: the campaign (``None`` = clean run).  Frozen and hashable, so it
    #: participates in spec identity and pickles into workers.
    chaos: object = None

    def __post_init__(self) -> None:
        if not self.multipliers:
            raise ValueError(f"{self.query.name}: campaign needs >= 1 multiplier")

    @property
    def is_streamtune(self) -> bool:
        # Resolved through the shared spelling parser (imported lazily,
        # like make_engine, so pickled specs never import at unpickle time).
        from repro.api.components import streamtune_variant

        return streamtune_variant(self.tuner)[0]

    @property
    def name(self) -> str:
        return self.query.name

    @property
    def cell_key(self) -> str:
        """Deterministic campaign identity stamped on this campaign's
        events; a resumed run matches recorded campaigns by this key."""
        from repro.api.components import streamtune_variant
        from repro.api.events import campaign_cell_key

        is_streamtune, model_suffix = streamtune_variant(self.tuner)
        return campaign_cell_key(
            self.query.name,
            self.engine,
            self.tuner,
            self.multipliers,
            self.seed,
            # The prediction layer changes streamtune results; baselines
            # carry no model, so their keys stay layer-free.
            layer=(model_suffix or self.model_kind) if is_streamtune else None,
            engine_seed=self.engine_seed,
            chaos=self.chaos.label() if self.chaos is not None else None,
        )

    def make_engine(self) -> EngineCluster:
        # Resolved through the engine registry (imported lazily: specs are
        # pickled into worker processes, and the registry population should
        # happen on first use, not at unpickle time).
        from repro.api.components import build_engine

        return build_engine(self.engine, seed=self.engine_seed)


@dataclass(frozen=True)
class CampaignPriority:
    """Probe outcome for one campaign (larger sorts earlier)."""

    backpressured: bool
    severity: float          # peak operator busy share at the initial deployment
    name: str                # deterministic tie-break

    @property
    def sort_key(self) -> tuple:
        return (self.backpressured, self.severity, self.name)


class BackpressureScheduler:
    """Order campaigns so backpressured queries are tuned first."""

    def probe(self, spec: CampaignSpec) -> CampaignPriority:
        """Deploy the campaign's starting point once and observe it.

        Uses a dedicated engine instance seeded like the campaign's, so the
        campaign's own measurement noise stream is not consumed; the single
        probe measurement costs milliseconds against a campaign of many
        model fits.
        """
        engine = spec.make_engine()
        flow = spec.query.flow
        deployment = engine.deploy(
            flow,
            dict.fromkeys(flow.operator_names, 1),
            spec.query.rates_at(spec.multipliers[0]),
        )
        telemetry = engine.measure(deployment)
        severity = max(
            (m.busy_ms_per_second / 1000.0 for m in telemetry.operators.values()),
            default=0.0,
        )
        engine.stop(deployment)
        return CampaignPriority(
            backpressured=telemetry.has_backpressure,
            severity=float(severity),
            name=spec.name,
        )

    def order(self, specs: list[CampaignSpec]) -> list[int]:
        """Indices of ``specs`` in dispatch order (most urgent first)."""
        priorities = [self.probe(spec) for spec in specs]
        return sorted(
            range(len(specs)),
            key=lambda index: priorities[index].sort_key,
            reverse=True,
        )


class FifoScheduler:
    """Submission-order dispatch (the no-prioritisation baseline)."""

    def order(self, specs: list[CampaignSpec]) -> list[int]:
        return list(range(len(specs)))
