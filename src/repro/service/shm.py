"""Shared-memory cache plane: one copy of the warm numpy state, N readers.

The process backend used to ship every warm cache section into every
worker by pickling it through the pool initializer — per-worker copies of
numpy-heavy embedding matrices, warm-up datasets and distilled rows,
which caps multi-core scaling exactly where the GNN+SVM pipeline should
parallelize best.  This module replaces those per-worker copies with
``multiprocessing.shared_memory``:

* :class:`SharedArrayStore` owns the segments.  The **parent** publishes
  each hot numpy payload into one segment (``share`` /
  ``publish_sections``); what crosses the process border is a
  :class:`SharedArrayRef` — ``(segment name, dtype, shape)``, a few dozen
  bytes — instead of the payload itself.  **Workers** attach
  (``attach`` / ``attach_sections``) and get read-only ``np.ndarray``
  views over the very same pages, zero-copy.
* Lifecycle is parent-owned: the creating process (and only it) unlinks
  its segments — via the context manager, an explicit :meth:`close`, the
  ``finally`` of the service's process-backend stream (which runs even
  when the drain loop turned a killed worker into a ``CampaignFailed``),
  and an ``atexit`` hook as the last line of defence.  A fork-inherited
  copy of the store refuses to unlink (``os.getpid()`` guard), so a
  worker exiting can never tear segments out from under the fleet.
* Attaching never registers with the ``resource_tracker`` (the Python
  3.11 tracker would otherwise double-unlink segments the parent owns
  and warn about "leaked" blocks every worker exit).

Values stay *bit-identical*: a shared view contains exactly the bytes
the parent computed, so campaign results cannot differ between the
pickled path, the shared plane, and a cold recomputation.
"""

from __future__ import annotations

import atexit
import gc
import os
import pickle
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: Every segment this module creates carries this prefix, so operators
#: (and the CI leak check) can audit ``/dev/shm`` with one glob.
SEGMENT_PREFIX = "reprocache"


@dataclass(frozen=True)
class SharedArrayRef:
    """A pickle-cheap descriptor of one shared numpy payload.

    This — not the array — is what travels to workers: attaching by
    ``name`` reconstructs a read-only view with the exact ``dtype`` and
    ``shape`` the parent published at byte ``offset`` of the segment.
    Many payloads share one segment (:meth:`SharedArrayStore.share_all`
    packs a publication into a single arena), so a worker maps each
    segment once no matter how many arrays it carries.
    """

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int = 0

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


_ATTACH_LOCK = threading.Lock()


def _noop_register(name, rtype) -> None:
    """Stand-in for ``resource_tracker.register`` while attaching."""


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without resource-tracker registration.

    Python 3.11 registers every attach with the resource tracker, which
    then "cleans up" (unlinks) segments it never owned when the attaching
    process exits — exactly wrong for parent-owned lifecycle (and, when
    attacher and owner share one tracker, unregistering after the fact
    would strip the *owner's* registration instead).  3.13 grew
    ``track=False`` for this; on older interpreters registration is
    suppressed for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = _noop_register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedArrayStore:
    """Create, attach and deterministically clean up shared numpy segments.

    One store per role: the parent's store *owns* (creates and unlinks)
    segments; a worker's store only *attaches* (closes its mappings,
    never unlinks).  ``close()`` is idempotent and safe to call with
    views still outstanding — references the store handed out are dropped
    first, and a mapping that still has foreign exports is skipped rather
    than crashed on (its name is unlinked regardless, so the segment
    disappears from ``/dev/shm`` the moment the last process exits).
    """

    def __init__(self) -> None:
        self._owned: dict[str, shared_memory.SharedMemory] = {}
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        #: id(array) -> ref for arrays this store already backs, so
        #: publishing a snapshot-materialized value is free (no second
        #: copy, same segment).  Holds strong references deliberately:
        #: the arrays' buffers live in our segments.
        self._ref_of: dict[int, SharedArrayRef] = {}
        self._keepalive: dict[int, np.ndarray] = {}
        self._owner_pid = os.getpid()
        self._closed = False
        atexit.register(self.close)

    # -- parent side ----------------------------------------------------

    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        name = f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(6)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, nbytes)
        )
        self._owned[segment.name.lstrip("/")] = segment
        return segment

    #: Arena alignment of packed payloads (cache-line sized).
    _ALIGN = 64

    def share(self, array: np.ndarray) -> SharedArrayRef:
        """Publish ``array`` into shared memory; returns its descriptor.

        An array this store already backs (a previous ``share`` or a
        snapshot ``materialize``) is returned by reference — same
        segment, no copy.
        """
        return self.share_all([array])[0]

    def share_all(self, arrays: "list[np.ndarray]") -> "list[SharedArrayRef]":
        """Publish many arrays, packed into one arena segment.

        The per-segment cost (``shm_open`` + ``ftruncate`` + ``mmap``,
        and one attach syscall per worker) is paid once per *publication*
        rather than once per array — a fleet's whole warm payload rides
        in a single segment.  Arrays the store already backs keep their
        existing descriptors; only the rest are copied.
        """
        if self._closed:
            raise ValueError("cannot share through a closed SharedArrayStore")
        refs: list = [None] * len(arrays)
        pending: list[tuple[int, np.ndarray]] = []
        for position, array in enumerate(arrays):
            known = self._ref_of.get(id(array))
            if known is not None:
                refs[position] = known
            else:
                pending.append((position, np.ascontiguousarray(array)))
        if pending:
            offsets = []
            total = 0
            for _, source in pending:
                total = -(-total // self._ALIGN) * self._ALIGN
                offsets.append(total)
                total += source.nbytes
            segment = self._new_segment(total)
            name = segment.name.lstrip("/")
            for (position, source), offset in zip(pending, offsets):
                view = np.ndarray(
                    source.shape,
                    dtype=source.dtype,
                    buffer=segment.buf,
                    offset=offset,
                )
                view[...] = source
                del view  # no exported buffers left on our mapping
                ref = SharedArrayRef(
                    name=name,
                    dtype=str(source.dtype),
                    shape=tuple(source.shape),
                    offset=offset,
                )
                self._remember(arrays[position], ref)
                refs[position] = ref
        return refs

    def materialize(self, data: bytes, dtype: str, shape: tuple) -> np.ndarray:
        """Build a read-only shared array directly from raw bytes.

        The snapshot loader uses this to land cache payloads straight in
        shared segments — one copy from disk to ``/dev/shm``, and the
        returned view is already publishable (``share`` dedupes it).
        """
        return self.materialize_all([(data, dtype, shape)])[0]

    def materialize_all(
        self, records: "list[tuple[bytes, str, tuple]]"
    ) -> "list[np.ndarray]":
        """Materialize many ``(data, dtype, shape)`` records into one arena.

        The bulk form of :meth:`materialize`: a whole snapshot's payloads
        land in a single segment, so the fleet that later publishes them
        attaches one mapping per worker.
        """
        if self._closed:
            raise ValueError("cannot materialize into a closed SharedArrayStore")
        if not records:
            return []
        offsets = []
        total = 0
        for data, _, _ in records:
            total = -(-total // self._ALIGN) * self._ALIGN
            offsets.append(total)
            total += len(data)
        segment = self._new_segment(total)
        name = segment.name.lstrip("/")
        views = []
        for (data, dtype, shape), offset in zip(records, offsets):
            source = np.frombuffer(data, dtype=np.dtype(dtype)).reshape(shape)
            view = np.ndarray(
                source.shape, dtype=source.dtype, buffer=segment.buf, offset=offset
            )
            view[...] = source
            view.flags.writeable = False
            ref = SharedArrayRef(
                name=name,
                dtype=str(source.dtype),
                shape=tuple(source.shape),
                offset=offset,
            )
            self._remember(view, ref)
            views.append(view)
        return views

    def _remember(self, array: np.ndarray, ref: SharedArrayRef) -> None:
        self._ref_of[id(array)] = ref
        self._keepalive[id(array)] = array

    # -- worker side ----------------------------------------------------

    def attach(self, ref: SharedArrayRef) -> np.ndarray:
        """A read-only zero-copy view of the segment ``ref`` names."""
        if self._closed:
            raise ValueError("cannot attach through a closed SharedArrayStore")
        segment = self._owned.get(ref.name) or self._attached.get(ref.name)
        if segment is None:
            segment = _attach_segment(ref.name)
            self._attached[ref.name] = segment
        view = np.ndarray(
            ref.shape,
            dtype=np.dtype(ref.dtype),
            buffer=segment.buf,
            offset=ref.offset,
        )
        view.flags.writeable = False
        self._remember(view, ref)
        return view

    # -- lifecycle ------------------------------------------------------

    @property
    def segment_names(self) -> list[str]:
        return sorted(self._owned) + sorted(self._attached)

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release every view and mapping; unlink what this process owns.

        Idempotent.  Unlinking happens first (the name disappears even if
        some mapping still has live exports elsewhere in this process),
        and only in the creating process — a fork-inherited store closes
        its mappings but leaves the parent's segments alone.

        Views handed out by :meth:`materialize`/:meth:`attach` are
        INVALID after close — numpy releases its buffer export eagerly,
        so nothing pins the mapping and reading a stale view is
        undefined behaviour (the same contract as ``SharedMemory``
        itself).  Close only once every consumer is done.
        """
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        self._ref_of.clear()
        self._keepalive.clear()
        collected = False

        def close_segment(segment) -> None:
            # A collection pass is only worth its cost when a mapping
            # actually still has exported buffers (a view the caller let
            # go of but the GC has not reaped yet).
            nonlocal collected
            try:
                segment.close()
                return
            except BufferError:
                pass
            if not collected:
                collected = True
                gc.collect()
            try:
                segment.close()
            except BufferError:
                # A cache entry still references the view; the mapping
                # dies with the process, and the name is already gone.
                pass

        owner = os.getpid() == self._owner_pid
        for segment in self._owned.values():
            if owner:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
            close_segment(segment)
        self._owned.clear()
        for segment in self._attached.values():
            close_segment(segment)
        self._attached.clear()


# ----------------------------------------------------------------------
# cache-section codec: live values <-> descriptor payloads
# ----------------------------------------------------------------------
#
# Cache sections hold three shapes of value: bare embedding matrices
# (``embed``), PredictionDatasets (``warmup``/``distill`` — a list of
# equal-width float64 rows plus int labels), and small scalars
# (``assign`` cluster ids).  The first two are the numpy-heavy payloads
# the shared plane exists for; anything else rides along pickled.

def encode_value(value, store: SharedArrayStore) -> tuple:
    """One cache value -> a descriptor tuple that pickles in O(bytes of
    the descriptor), not O(bytes of the value)."""
    from repro.core.finetune import PredictionDataset

    if isinstance(value, np.ndarray):
        return ("array", store.share(value))
    if isinstance(value, PredictionDataset) and value.labels:
        try:
            features = np.stack(value.features)
        except ValueError:
            return ("pickled", pickle.dumps(value, pickle.HIGHEST_PROTOCOL))
        labels = np.asarray(value.labels, dtype=np.int64)
        return ("dataset", store.share(features), store.share(labels))
    return ("pickled", pickle.dumps(value, pickle.HIGHEST_PROTOCOL))


def decode_value(encoded: tuple, store: SharedArrayStore):
    """The worker-side inverse of :func:`encode_value` (zero-copy)."""
    from repro.core.finetune import PredictionDataset

    kind = encoded[0]
    if kind == "array":
        return store.attach(encoded[1])
    if kind == "dataset":
        features = store.attach(encoded[1])
        labels = store.attach(encoded[2])
        dataset = PredictionDataset()
        # Row views into the one shared matrix: the dataset is read-only
        # by contract (cached pure values are never mutated), and every
        # row carries exactly the parent's bytes.
        dataset.features = [features[index] for index in range(len(labels))]
        dataset.labels = [int(label) for label in labels]
        return dataset
    if kind == "pickled":
        return pickle.loads(encoded[1])
    raise ValueError(f"unknown shared-cache encoding {kind!r}")


def publish_sections(entries: dict, store: SharedArrayStore) -> dict:
    """``kind -> [(key, value)]`` -> ``kind -> [(key, encoded)]``.

    The result is what crosses the pool initializer: descriptors for the
    numpy payloads, pickled bytes for the rest.  Every numpy payload of
    the publication is packed into one arena segment
    (:meth:`SharedArrayStore.share_all`), so each worker attaches a
    single mapping regardless of entry count.
    """
    from repro.core.finetune import PredictionDataset

    arrays: list[np.ndarray] = []

    def enlist(array: np.ndarray) -> int:
        arrays.append(array)
        return len(arrays) - 1

    plans: dict = {}
    for kind, items in entries.items():
        kind_plans = []
        for key, value in items:
            if isinstance(value, np.ndarray):
                plan = ("array", enlist(value))
            elif isinstance(value, PredictionDataset) and value.labels:
                try:
                    features = np.stack(value.features)
                except ValueError:
                    plan = ("pickled", pickle.dumps(value, pickle.HIGHEST_PROTOCOL))
                else:
                    labels = np.asarray(value.labels, dtype=np.int64)
                    plan = ("dataset", enlist(features), enlist(labels))
            else:
                plan = ("pickled", pickle.dumps(value, pickle.HIGHEST_PROTOCOL))
            kind_plans.append((key, plan))
        plans[kind] = kind_plans

    refs = store.share_all(arrays)
    payload: dict = {}
    for kind, kind_plans in plans.items():
        encoded = []
        for key, plan in kind_plans:
            if plan[0] == "array":
                encoded.append((key, ("array", refs[plan[1]])))
            elif plan[0] == "dataset":
                encoded.append((key, ("dataset", refs[plan[1]], refs[plan[2]])))
            else:
                encoded.append((key, plan))
        payload[kind] = encoded
    return payload


def attach_sections(payload: dict, store: SharedArrayStore) -> dict:
    """The worker-side inverse of :func:`publish_sections`."""
    return {
        kind: [(key, decode_value(encoded, store)) for key, encoded in items]
        for kind, items in payload.items()
    }
