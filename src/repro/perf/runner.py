"""Named hot-path benchmarks and the timing harness that runs them.

Each :class:`Benchmark` times one of the fleet's real hot paths against
the frozen fixtures of :mod:`repro.perf.fixtures`.  Optimised paths are
benchmarked *next to the path they replaced* — every claimed speedup
ships with the measurement that backs it — and
:data:`RATIO_DEFINITIONS` names those pairs, so the report carries
dimensionless speedup ratios that survive hardware changes (the
regression gate in :mod:`repro.perf.report` compares ratios, not raw
seconds, against the committed baseline).

The hot paths:

* ``ged_assign_*`` — GED cluster assignment (Algorithm 2 line 1) with
  admissible-bound pruning vs the exhaustive per-center A*-LSa search;
* ``warmup_dataset_*`` — warm-up dataset construction (Algorithm 2
  line 3) with block-diagonal batched GNN encoding vs per-record passes;
* ``svm_fit_*`` — the monotone prediction layer's fit on weighted unique
  rows vs the materialised duplicate-row multiset;
* ``gnn_encode_*`` — bulk operator-embedding requests through
  :mod:`repro.gnn.batch` vs one encoder pass per sample;
* ``campaign_*`` — the end-to-end smoke service campaign (the
  ``bench_service.py --smoke`` workload): the seed repository's
  sequential per-query path vs the concurrent service with shared
  caches, pre-warming, bound-pruned assignment and weighted fitting —
  plus ``campaign_service_fullcore``, the same fleet on the process
  backend over every available core;
* ``shared_cache_fanout_*`` — shipping the warm cache sections to
  :data:`FANOUT_WORKERS` workers: the legacy plane (one pickled copy of
  every numpy payload per worker) vs the shared-memory plane (one
  published copy, per-worker descriptor pickling + attach);
* ``daemon_*`` — :data:`DAEMON_JOBS` tiny ds2 jobs through the ``repro
  serve`` control plane (HTTP submission, queue, fsynced ledgers,
  followed event streams) vs the same jobs inline through one session —
  the pair prices the daemon's dispatch overhead;
* ``failpoint_fire_*`` — the failpoint plane's ``fire()`` on a spool
  hot-path site with no plane active (the production fast path) vs an
  armed never-triggering rule; the pair prices carrying injection
  sites on every ledger write and spool claim;
* ``distributed_fleet_*`` — a 100-campaign paced smoke sweep through
  the spool-based distributed executor with one vs two local worker
  agents: the paced engine's telemetry waits overlap across workers, so
  the pair measures genuine fleet scale-out (claims, leases, ledger
  merging included) rather than single-host core contention.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.perf.fixtures import PerfFixtures


@dataclass(frozen=True)
class Benchmark:
    """One named, timed hot path.

    ``run`` receives the fixtures and performs the full computation —
    including any per-call state (fresh caches, engines, tuners), so
    every repeat is cold where the hot path would be cold in production.
    """

    name: str
    hot_path: str
    description: str
    run: Callable[[PerfFixtures], object]
    repeats: int = 5
    smoke_repeats: int = 3


# ----------------------------------------------------------------------
# GED cluster assignment
# ----------------------------------------------------------------------

def _bench_ged_assign_pruned(fixtures: PerfFixtures):
    from repro.ged.search import GEDCache

    cache = GEDCache()
    return [
        cache.nearest(flow, fixtures.centers) for flow in fixtures.assign_flows
    ]


def _bench_ged_assign_exhaustive(fixtures: PerfFixtures):
    from repro.ged.search import GEDCache

    cache = GEDCache()
    assignments = []
    for flow in fixtures.assign_flows:
        distances = [cache.distance(flow, center) for center in fixtures.centers]
        assignments.append(min(range(len(distances)), key=distances.__getitem__))
    return assignments


# ----------------------------------------------------------------------
# warm-up dataset construction
# ----------------------------------------------------------------------

def _bench_warmup_batched(fixtures: PerfFixtures):
    from repro.core.finetune import build_warmup_dataset

    return build_warmup_dataset(
        fixtures.pretrained,
        fixtures.warmup_cluster,
        max_rows=fixtures.warmup_rows,
        seed=17,
        batch_encode=True,
    )


def _bench_warmup_per_record(fixtures: PerfFixtures):
    from repro.core.finetune import build_warmup_dataset

    return build_warmup_dataset(
        fixtures.pretrained,
        fixtures.warmup_cluster,
        max_rows=fixtures.warmup_rows,
        seed=17,
        batch_encode=False,
    )


# ----------------------------------------------------------------------
# weighted SVM fitting
# ----------------------------------------------------------------------

def _bench_svm_weighted(fixtures: PerfFixtures):
    from repro.models import make_prediction_model

    model = make_prediction_model("svm", seed=17)
    return model.fit(
        fixtures.fit_features,
        fixtures.fit_labels,
        sample_weight=fixtures.fit_weights,
    )


def _bench_svm_duplicated(fixtures: PerfFixtures):
    from repro.models import make_prediction_model

    model = make_prediction_model("svm", seed=17)
    return model.fit(fixtures.fit_features_dup, fixtures.fit_labels_dup)


# ----------------------------------------------------------------------
# batched GNN encoding
# ----------------------------------------------------------------------

#: Inner iterations of the (sub-millisecond) encoding benchmarks: each
#: timed repeat encodes the batch this many times, so one repeat lasts
#: milliseconds and scheduler jitter cannot dominate the measurement.
GNN_INNER_ITERATIONS = 20


def _bench_gnn_batched(fixtures: PerfFixtures):
    from repro.gnn.batch import encode_samples

    for _ in range(GNN_INNER_ITERATIONS):
        result = encode_samples(
            fixtures.encoder, fixtures.samples, parallelism_aware=False
        )
    return result


def _bench_gnn_per_sample(fixtures: PerfFixtures):
    for _ in range(GNN_INNER_ITERATIONS):
        result = [
            fixtures.encoder.encode(sample, parallelism_aware=False)
            for sample in fixtures.samples
        ]
    return result


# ----------------------------------------------------------------------
# end-to-end smoke campaign (the bench_service.py --smoke workload)
# ----------------------------------------------------------------------

def _bench_campaign_baseline(fixtures: PerfFixtures):
    from repro.experiments import context
    from repro.experiments.campaigns import run_campaign

    results = []
    for query in fixtures.queries:
        engine = context.make_engine("flink", fixtures.scale)
        tuner = context.make_tuner("StreamTune", engine, fixtures.scale)
        results.append(
            run_campaign(engine, tuner, query, list(fixtures.multipliers))
        )
    return results


def _bench_campaign_service(fixtures: PerfFixtures):
    from repro.service import CampaignSpec, TuningService

    specs = [
        CampaignSpec(
            query=query,
            multipliers=tuple(fixtures.multipliers),
            engine="flink",
            engine_seed=fixtures.scale.seed,
            seed=fixtures.scale.seed + 4,
        )
        for query in fixtures.queries
    ]
    service = TuningService(fixtures.pretrained, backend="thread")
    return service.run(specs)


def _bench_campaign_service_fullcore(fixtures: PerfFixtures):
    import os

    from repro.service import CampaignSpec, TuningService

    specs = [
        CampaignSpec(
            query=query,
            multipliers=tuple(fixtures.multipliers),
            engine="flink",
            engine_seed=fixtures.scale.seed,
            seed=fixtures.scale.seed + 4,
        )
        for query in fixtures.queries
    ]
    service = TuningService(
        fixtures.pretrained,
        backend="process",
        max_workers=os.cpu_count() or 1,
    )
    return service.run(specs)


# ----------------------------------------------------------------------
# daemon job throughput: submit -> dispatch -> stream -> finish
# ----------------------------------------------------------------------

#: Jobs per daemon-throughput repeat; fixed so the per-job dispatch cost
#: (HTTP round-trips, queue admission, manifest + ledger writes) is
#: comparable across hosts.
DAEMON_JOBS = 4

#: The job fleet: tiny history-free ds2 tuning plans — no pre-trained
#: artifact resolution, so the timing is dominated by the machinery the
#: pair differs in, not model work.
_DAEMON_PLAN_QUERIES = ("q1", "q3", "q5", "q8")


def _daemon_plan_dicts(fixtures: PerfFixtures) -> list[dict]:
    return [
        {
            "kind": "tuning",
            "query": _DAEMON_PLAN_QUERIES[index % len(_DAEMON_PLAN_QUERIES)],
            "rates": [float(rate) for rate in fixtures.multipliers],
            "tuner": "ds2",
            "scale": fixtures.scale.name,
            "seed": 17 + index,
        }
        for index in range(DAEMON_JOBS)
    ]


def _bench_daemon_inline_baseline(fixtures: PerfFixtures):
    import shutil
    import tempfile
    from pathlib import Path

    from repro.api import EventBus, JsonlRecorder, plan_from_dict
    from repro.api.session import TuningSession

    # The dispatch-free reference: the same jobs, the same per-event
    # fsynced ledgers, one session — minus HTTP, queue and manifest.
    workdir = Path(tempfile.mkdtemp(prefix="repro-perf-inline-"))
    try:
        session = TuningSession()
        results = []
        for index, data in enumerate(_daemon_plan_dicts(fixtures)):
            recorder = JsonlRecorder(
                workdir / f"job{index}.jsonl", fsync=True
            )
            try:
                results.append(
                    session.run(plan_from_dict(data), bus=EventBus(recorder))
                )
            finally:
                recorder.close()
        return results
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _bench_daemon_jobs_throughput(fixtures: PerfFixtures):
    import shutil
    import tempfile
    from pathlib import Path

    from repro.daemon import DaemonClient, TuningDaemon

    # The real thing: submissions over a live socket, per-tenant queue
    # admission, a dispatcher thread, fsynced manifest + ledgers, events
    # followed back over chunked HTTP until every job finishes.
    workdir = Path(tempfile.mkdtemp(prefix="repro-perf-daemon-"))
    daemon = TuningDaemon(
        port=0, ledger_dir=workdir / "ledger", use_shm=False
    )
    daemon.start()
    try:
        client = DaemonClient(daemon.url)
        jobs = [
            client.submit_plan(data)
            for data in _daemon_plan_dicts(fixtures)
        ]
        return [list(client.follow(job["job"])) for job in jobs]
    finally:
        daemon.stop()
        shutil.rmtree(workdir, ignore_errors=True)


# ----------------------------------------------------------------------
# distributed fleet scale-out: 1 vs N worker agents on one spool
# ----------------------------------------------------------------------

#: Worker agents on the scaled side of the ``distributed_fleet_*`` pair.
#: Fixed at two (not ``cpu_count``): the paced engine makes the fleet
#: wait-bound, so two agents demonstrate scale-out even on one core and
#: the resulting ratio is comparable across hosts.
FLEET_WORKERS = 2

#: The fleet: every distinct smoke query under two rate traces — 100
#: campaign cells of a few hundred milliseconds each, long enough that
#: worker-agent spawn cost does not dominate the scaling measurement.
_FLEET_NEXMARK = ("q1", "q2", "q3", "q5", "q8")
_FLEET_PQP = (
    tuple(f"linear/{index}" for index in range(8))
    + tuple(f"2-way-join/{index}" for index in range(16))
    + tuple(f"3-way-join/{index}" for index in range(21))
)
_FLEET_TRACES = ((3.0, 5.0, 4.0, 2.0), (5.0, 3.0, 6.0, 4.0))


def _run_fleet(fixtures: PerfFixtures, workers: int):
    from repro.api.plans import SweepPlan
    from repro.distributed import DistributedSession

    plan = SweepPlan(
        queries=_FLEET_NEXMARK + _FLEET_PQP,
        tuners=("ds2",),
        engines=("flink-paced",),
        rate_traces=_FLEET_TRACES,
        backend="distributed",
        scale=fixtures.scale.name,
    )
    session = DistributedSession(local_workers=workers, fsync=False)
    return session.run(plan)


def _bench_fleet_1worker(fixtures: PerfFixtures):
    return _run_fleet(fixtures, workers=1)


def _bench_fleet_2workers(fixtures: PerfFixtures):
    return _run_fleet(fixtures, workers=FLEET_WORKERS)


# ----------------------------------------------------------------------
# failpoint plane: fire() on the spool/ledger hot paths
# ----------------------------------------------------------------------

#: fire() calls per repeat — roughly the order of magnitude a large
#: soak episode's claim/heartbeat/ledger hot paths see in total.
FAILPOINT_CALLS = 200_000


def _bench_failpoint_inactive(fixtures: PerfFixtures):
    from repro.faults import deactivate, fire

    # The production steady state: no plane active, every call must be
    # a near-free early return (these sit on the ledger write path).
    deactivate()
    for _ in range(FAILPOINT_CALLS):
        fire("spool.claim.race-delay")
    return FAILPOINT_CALLS


def _bench_failpoint_active(fixtures: PerfFixtures):
    from repro.faults import FaultPlan, activate, deactivate, fire

    # A plane armed with a never-triggering rule on the fired site: the
    # full match path (lock, counter, trigger check) with no effect.
    activate(FaultPlan(
        rules=[{
            "site": "spool.claim.race-delay",
            "effect": "delay",
            "hits": [FAILPOINT_CALLS + 1],
        }],
        seed=1,
    ))
    try:
        for _ in range(FAILPOINT_CALLS):
            fire("spool.claim.race-delay")
    finally:
        deactivate()
    return FAILPOINT_CALLS


# ----------------------------------------------------------------------
# shared-cache fan-out: warm sections -> N workers
# ----------------------------------------------------------------------

#: Simulated fleet width of the fan-out pair.  Fixed (not ``cpu_count``)
#: so the measured per-worker cost — and the resulting speedup ratio —
#: is comparable across hosts.
FANOUT_WORKERS = 8


def _bench_fanout_pickled(fixtures: PerfFixtures):
    import pickle

    # The legacy plane: the pool initializer pickled every warm section
    # into every worker — per-worker deep copies of the numpy payloads.
    results = []
    for _ in range(FANOUT_WORKERS):
        payload = pickle.dumps(
            fixtures.fanout_entries, protocol=pickle.HIGHEST_PROTOCOL
        )
        results.append(pickle.loads(payload))
    return results


def _bench_fanout_shm(fixtures: PerfFixtures):
    import pickle

    from repro.service.shm import (
        SharedArrayStore,
        attach_sections,
        publish_sections,
    )

    # The shared plane: publish once in the parent, then each worker
    # pickles only descriptors and attaches read-only views (measured
    # here in-process: descriptor round-trip + segment attach is exactly
    # the per-worker cost, wherever the worker lives).
    results = []
    with SharedArrayStore() as parent_store:
        shipped = pickle.dumps(
            publish_sections(fixtures.fanout_entries, parent_store),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        worker_stores = []
        try:
            for _ in range(FANOUT_WORKERS):
                store = SharedArrayStore()
                worker_stores.append(store)
                results.append(attach_sections(pickle.loads(shipped), store))
        finally:
            results = [
                {kind: len(entries) for kind, entries in sections.items()}
                for sections in results
            ]
            for store in worker_stores:
                store.close()
    return results


#: The registry, in execution order (micro paths first, campaigns last so
#: their artifact warm-up cannot skew the micro timings).
BENCHMARKS: tuple[Benchmark, ...] = (
    Benchmark(
        name="ged_assign_pruned",
        hot_path="ged-cluster-assignment",
        description="bound-pruned nearest-center assignment (cold cache)",
        run=_bench_ged_assign_pruned,
        repeats=5,
        smoke_repeats=3,
    ),
    Benchmark(
        name="ged_assign_exhaustive",
        hot_path="ged-cluster-assignment",
        description="exhaustive per-center A*-LSa assignment (cold cache)",
        run=_bench_ged_assign_exhaustive,
        repeats=5,
        smoke_repeats=3,
    ),
    Benchmark(
        name="warmup_dataset_batched",
        hot_path="warmup-dataset",
        description="warm-up dataset with block-diagonal batched encoding",
        run=_bench_warmup_batched,
        repeats=5,
        smoke_repeats=4,
    ),
    Benchmark(
        name="warmup_dataset_per_record",
        hot_path="warmup-dataset",
        description="warm-up dataset with one encoder pass per record",
        run=_bench_warmup_per_record,
        repeats=5,
        smoke_repeats=4,
    ),
    Benchmark(
        name="svm_fit_weighted",
        hot_path="svm-fit",
        description="monotone SVM fit on weighted unique rows",
        run=_bench_svm_weighted,
        repeats=5,
        smoke_repeats=3,
    ),
    Benchmark(
        name="svm_fit_duplicated",
        hot_path="svm-fit",
        description="monotone SVM fit on the materialised row multiset",
        run=_bench_svm_duplicated,
        repeats=5,
        smoke_repeats=3,
    ),
    Benchmark(
        name="gnn_encode_batched",
        hot_path="gnn-encoding",
        description="bulk embeddings through repro.gnn.batch",
        run=_bench_gnn_batched,
        repeats=7,
        smoke_repeats=5,
    ),
    Benchmark(
        name="gnn_encode_per_sample",
        hot_path="gnn-encoding",
        description="one encoder pass per sample",
        run=_bench_gnn_per_sample,
        repeats=7,
        smoke_repeats=5,
    ),
    Benchmark(
        name="shared_cache_fanout_pickled",
        hot_path="shared-cache-fanout",
        description=(
            f"warm sections to {FANOUT_WORKERS} workers via per-worker "
            "pickled copies"
        ),
        run=_bench_fanout_pickled,
        repeats=5,
        smoke_repeats=3,
    ),
    Benchmark(
        name="shared_cache_fanout_shm",
        hot_path="shared-cache-fanout",
        description=(
            f"warm sections to {FANOUT_WORKERS} workers via shared-memory "
            "descriptors + attach"
        ),
        run=_bench_fanout_shm,
        repeats=5,
        smoke_repeats=3,
    ),
    Benchmark(
        name="daemon_inline_baseline",
        hot_path="daemon-dispatch",
        description=(
            f"{DAEMON_JOBS} ds2 jobs inline through one session "
            "(fsynced ledgers, no daemon)"
        ),
        run=_bench_daemon_inline_baseline,
        repeats=3,
        smoke_repeats=2,
    ),
    Benchmark(
        name="daemon_jobs_throughput",
        hot_path="daemon-dispatch",
        description=(
            f"{DAEMON_JOBS} ds2 jobs submitted and followed over the "
            "daemon's HTTP control plane"
        ),
        run=_bench_daemon_jobs_throughput,
        repeats=3,
        smoke_repeats=2,
    ),
    Benchmark(
        name="campaign_sequential_baseline",
        hot_path="service-campaign",
        description="seed-path sequential per-query campaign (no caches)",
        run=_bench_campaign_baseline,
        repeats=2,
        smoke_repeats=1,
    ),
    Benchmark(
        name="campaign_service",
        hot_path="service-campaign",
        description="concurrent tuning service (shared caches + pre-warm)",
        run=_bench_campaign_service,
        repeats=2,
        smoke_repeats=1,
    ),
    Benchmark(
        name="campaign_service_fullcore",
        hot_path="service-campaign",
        description=(
            "process-backend fleet on all cores (shared-memory cache plane)"
        ),
        run=_bench_campaign_service_fullcore,
        repeats=2,
        smoke_repeats=1,
    ),
    Benchmark(
        name="failpoint_fire_inactive",
        hot_path="failpoint-plane",
        description=(
            f"{FAILPOINT_CALLS} fire() calls with no fault plane active "
            "(the production fast path)"
        ),
        run=_bench_failpoint_inactive,
        repeats=5,
        smoke_repeats=3,
    ),
    Benchmark(
        name="failpoint_fire_active",
        hot_path="failpoint-plane",
        description=(
            f"{FAILPOINT_CALLS} fire() calls against an armed, "
            "never-triggering rule (full match path)"
        ),
        run=_bench_failpoint_active,
        repeats=5,
        smoke_repeats=3,
    ),
    Benchmark(
        name="distributed_fleet_1worker",
        hot_path="distributed-fleet",
        description=(
            "100-campaign paced sweep through the spool with one worker "
            "agent"
        ),
        run=_bench_fleet_1worker,
        repeats=2,
        smoke_repeats=2,
    ),
    Benchmark(
        name="distributed_fleet_2workers",
        hot_path="distributed-fleet",
        description=(
            f"the same fleet claimed by {FLEET_WORKERS} competing worker "
            "agents"
        ),
        run=_bench_fleet_2workers,
        repeats=2,
        smoke_repeats=2,
    ),
)

#: Speedup ratios the regression gate checks: ``slow / fast`` over the
#: named benchmark pair's best observed times (see :func:`compute_ratios`).
#: >1 means the optimisation pays off.
RATIO_DEFINITIONS: dict[str, tuple[str, str]] = {
    "ged_assign_speedup": ("ged_assign_exhaustive", "ged_assign_pruned"),
    "warmup_batch_speedup": ("warmup_dataset_per_record", "warmup_dataset_batched"),
    "svm_dedup_speedup": ("svm_fit_duplicated", "svm_fit_weighted"),
    "gnn_batch_speedup": ("gnn_encode_per_sample", "gnn_encode_batched"),
    "service_speedup": ("campaign_sequential_baseline", "campaign_service"),
    "service_fullcore_speedup": (
        "campaign_sequential_baseline", "campaign_service_fullcore"
    ),
    "shared_fanout_speedup": (
        "shared_cache_fanout_pickled", "shared_cache_fanout_shm"
    ),
    # slow/fast with the daemon as the "slow" side: the ratio is the
    # multiplicative cost of the control plane (HTTP + queue + manifest)
    # over inline execution of the same jobs — ~1.0 means the daemon
    # dispatch is effectively free at job granularity.
    "daemon_dispatch_overhead": (
        "daemon_jobs_throughput", "daemon_inline_baseline"
    ),
    # 1 -> N worker agents on the same spool; the paced engine's waits
    # are the parallelisable resource, so the ratio approaches the
    # worker count as campaigns get longer (spawn cost amortises out).
    "distributed_fleet_speedup": (
        "distributed_fleet_1worker", "distributed_fleet_2workers"
    ),
    # slow/fast with the armed plane as the "slow" side: the
    # multiplicative cost of *carrying* failpoints on the hot paths —
    # large means the inactive fast path is effectively free, which is
    # the property that lets fire() sit on every ledger write.
    "failpoint_overhead": (
        "failpoint_fire_active", "failpoint_fire_inactive"
    ),
}


def benchmark_names() -> list[str]:
    return [bench.name for bench in BENCHMARKS]


def time_benchmark(
    bench: Benchmark, fixtures: PerfFixtures, smoke: bool
) -> dict:
    """Run ``bench`` for its configured repeats and report the timings."""
    repeats = bench.smoke_repeats if smoke else bench.repeats
    times: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        bench.run(fixtures)
        times.append(time.perf_counter() - started)
    return {
        "hot_path": bench.hot_path,
        "description": bench.description,
        "seconds": statistics.median(times),
        "min_seconds": min(times),
        "max_seconds": max(times),
        "repeats": repeats,
    }


def run_benchmarks(
    fixtures: PerfFixtures,
    smoke: bool,
    only: "list[str] | None" = None,
    echo=None,
) -> dict:
    """Time every (selected) benchmark; returns ``name -> result``."""
    selected = list(BENCHMARKS)
    if only is not None:
        known = {bench.name for bench in BENCHMARKS}
        unknown = sorted(set(only) - known)
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        wanted = set(only)
        selected = [bench for bench in BENCHMARKS if bench.name in wanted]
    results: dict = {}
    for bench in selected:
        result = time_benchmark(bench, fixtures, smoke)
        results[bench.name] = result
        if echo is not None:
            echo(
                f"  {bench.name:<30} {result['seconds'] * 1000:9.1f} ms "
                f"(x{result['repeats']})"
            )
    return results


def compute_ratios(results: dict) -> dict:
    """Speedup ratios for every pair whose two benchmarks both ran.

    Ratios are built from each side's *best* observed time: the minimum
    is the classic microbenchmark statistic — scheduler noise only ever
    adds time — which keeps the regression gate stable run to run.
    """
    ratios: dict = {}
    for name, (slow, fast) in RATIO_DEFINITIONS.items():
        if slow in results and fast in results:
            best = lambda result: result.get("min_seconds", result["seconds"])  # noqa: E731
            denominator = best(results[fast])
            if denominator > 0:
                ratios[name] = best(results[slow]) / denominator
    return ratios
