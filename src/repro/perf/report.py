"""Machine-readable perf reports and the baseline regression gate.

A perf run emits one JSON document (``BENCH_PR8.json`` at the repo root
by default) holding per-hot-path timings plus the dimensionless speedup
ratios of :data:`repro.perf.runner.RATIO_DEFINITIONS` — the repository's
performance trajectory, one file per PR.

The regression gate compares the *ratios* of a fresh run against the
committed baseline (``benchmarks/perf_baseline.json``): a ratio that
fell more than ``tolerance`` (default 25%) below its baseline value
fails the gate.  Ratios rather than raw seconds, deliberately — absolute
wall-clock moves with the host (laptop vs CI runner), while "pruned
assignment is N× the exhaustive search" is a property of the code.  Raw
seconds are still recorded for trend reading, and ``gate_absolute=True``
additionally gates them for same-host comparisons.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

#: Default report target, at the repository root (the perf trajectory).
BENCH_FILENAME = "BENCH_PR8.json"
#: Default committed baseline the gate compares against.
BASELINE_PATH = "benchmarks/perf_baseline.json"
#: Report schema marker.
REPORT_FORMAT = "repro.perf"
REPORT_VERSION = 1


class PerfError(ValueError):
    """A perf report or baseline is unusable; the message says why."""


def build_report(results: dict, ratios: dict, smoke: bool) -> dict:
    """The JSON document for one perf run."""
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "bench": "PR8",
        "smoke": smoke,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "benchmarks": results,
        "ratios": ratios,
    }


def write_report(report: dict, path: "str | Path") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: "str | Path") -> dict:
    path = Path(path)
    if not path.exists():
        raise PerfError(f"perf report {path} does not exist")
    try:
        report = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise PerfError(f"{path} is not valid JSON: {error}") from None
    if not isinstance(report, dict) or report.get("format") != REPORT_FORMAT:
        raise PerfError(f"{path} is not a repro.perf report")
    return report


def compare_reports(
    current: dict,
    baseline: dict,
    tolerance: float = 0.25,
    gate_absolute: bool = False,
) -> list[str]:
    """Regression messages (empty when the gate passes).

    Every speedup ratio present in both reports must stay within
    ``tolerance`` of its baseline value (a drop beyond it is a
    regression; improvements always pass).  With ``gate_absolute`` the
    per-benchmark median seconds are gated the same way — only
    meaningful when both reports come from comparable hosts.
    """
    if not 0 <= tolerance < 1:
        raise PerfError(f"tolerance must be in [0, 1), got {tolerance!r}")
    violations: list[str] = []
    base_ratios = baseline.get("ratios", {})
    for name, base_value in sorted(base_ratios.items()):
        value = current.get("ratios", {}).get(name)
        if value is None:
            violations.append(
                f"ratio {name} is missing from the current run "
                f"(baseline: {base_value:.2f}x)"
            )
            continue
        floor = base_value * (1.0 - tolerance)
        if value < floor:
            violations.append(
                f"ratio {name} regressed: {value:.2f}x < {floor:.2f}x "
                f"(baseline {base_value:.2f}x - {tolerance:.0%})"
            )
    if gate_absolute:
        base_benches = baseline.get("benchmarks", {})
        for name, base_result in sorted(base_benches.items()):
            result = current.get("benchmarks", {}).get(name)
            if result is None:
                continue
            ceiling = base_result["seconds"] * (1.0 + tolerance)
            if result["seconds"] > ceiling:
                violations.append(
                    f"benchmark {name} regressed: {result['seconds'] * 1000:.1f} ms "
                    f"> {ceiling * 1000:.1f} ms "
                    f"(baseline {base_result['seconds'] * 1000:.1f} ms "
                    f"+ {tolerance:.0%})"
                )
    return violations
