"""Frozen deterministic fixtures for the hot-path benchmarks.

Every benchmark in :mod:`repro.perf.runner` times a computation over the
fixtures built here, and everything is pinned — seeds, query sets, rate
traces, row counts — so two perf runs (on the same machine and build)
time the *same* computation.  The expensive artifacts (the smoke-scale
pre-trained model and its history) come from
:mod:`repro.experiments.context`'s process-wide memo, exactly like the
benchmarks under ``benchmarks/``, so a perf session pays for pre-training
once no matter how many benchmarks run.

``smoke=True`` shrinks the workload (fewer queries, shorter traces, fewer
rows) to CI scale; the benchmark *names* stay identical, so smoke and
full reports compare against the same baseline schema.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Evaluation groups driven end to end by the campaign benchmarks —
#: the same workload ``benchmarks/bench_service.py`` runs.
SMOKE_GROUPS = ("q1", "q3", "linear", "2-way-join")
FULL_GROUPS = ("q1", "q2", "q3", "q5", "q8", "linear", "2-way-join", "3-way-join")

#: Weight each unique training row carries in the duplicated-vs-weighted
#: SVM fit comparison (the duplicated path materialises the multiset).
FIT_MULTIPLICITY = 8


@dataclass
class PerfFixtures:
    """Everything the benchmark suite times against."""

    smoke: bool
    scale: object                       # ExperimentScale
    pretrained: object                  # PretrainedStreamTune
    queries: list                       # smoke-campaign StreamingQuery fleet
    multipliers: list                   # campaign rate trace
    assign_flows: list                  # dataflows to cluster-assign
    centers: list                       # the clustering's center graphs
    encoder: object                     # cluster-0 BottleneckGNN
    samples: list                       # GraphSample batch for encoding
    warmup_cluster: int
    #: Row budget of the warm-up *benchmark* (large enough that the
    #: encoding share is visible next to the distillation cost).
    warmup_rows: int
    fit_features: np.ndarray            # unique rows (weighted fit)
    fit_labels: np.ndarray
    fit_weights: np.ndarray
    fit_features_dup: np.ndarray        # materialised multiset (seed-path fit)
    fit_labels_dup: np.ndarray
    #: Warm cache sections (``kind -> [(key, value)]``) a process fleet
    #: ships to workers — the payload of the shared-cache fan-out pair.
    fanout_entries: dict


def build_fixtures(smoke: bool = True) -> PerfFixtures:
    """Assemble the fixture set (deterministic; memoised artifacts)."""
    from repro.core.finetune import build_warmup_dataset
    from repro.experiments import context
    from repro.experiments.scale import resolve_scale
    from repro.workloads.rates import periodic_multipliers

    scale = resolve_scale("smoke")
    pretrained = context.pretrained_model("flink", scale)

    evaluation = context.evaluation_queries("flink", scale)
    groups = SMOKE_GROUPS if smoke else FULL_GROUPS
    queries = [evaluation[group][0] for group in groups]
    n_rate_changes = 2 if smoke else 8
    multipliers = list(
        periodic_multipliers(n_permutations=1, seed=scale.seed)[:n_rate_changes]
    )

    corpus = context.corpus("flink")
    assign_flows = [query.flow for query in corpus[: 16 if smoke else 48]]
    centers = list(pretrained.clustering.center_graphs)

    records = pretrained.records_by_cluster[0][: 16 if smoke else 48]
    samples = [pretrained.sample_for(record) for record in records]
    encoder = pretrained.encoders[0]

    warmup_rows = 400 if smoke else 600
    warmup = build_warmup_dataset(
        pretrained, 0, max_rows=150, seed=17, batch_encode=True
    )
    if not warmup.has_both_classes():
        raise RuntimeError(
            "perf fixture warm-up dataset is single-class; the SVM fit "
            "benchmarks need both labels — regenerate at a larger scale"
        )
    features, labels = warmup.matrices()
    weights = np.full(len(labels), float(FIT_MULTIPLICITY))
    features_dup = np.tile(features, (FIT_MULTIPLICITY, 1))
    labels_dup = np.tile(labels, FIT_MULTIPLICITY)

    # The fan-out payload: real warm sections of the shape a pre-warmed
    # process fleet ships — embedding matrices keyed per sample, plus the
    # warm-up dataset (rows + labels) in the warmup section.
    embed_entries = [
        (("bench-embed", index), encoder.encode(sample, parallelism_aware=False))
        for index, sample in enumerate(samples)
    ]
    fanout_entries = {
        "embed": embed_entries,
        "warmup": [(("bench-warmup", 0), warmup)],
    }

    return PerfFixtures(
        smoke=smoke,
        scale=scale,
        pretrained=pretrained,
        queries=queries,
        multipliers=multipliers,
        assign_flows=assign_flows,
        centers=centers,
        encoder=encoder,
        samples=samples,
        warmup_cluster=0,
        warmup_rows=warmup_rows,
        fit_features=features,
        fit_labels=labels,
        fit_weights=weights,
        fit_features_dup=features_dup,
        fit_labels_dup=labels_dup,
        fanout_entries=fanout_entries,
    )
