"""``repro.perf`` — named hot-path microbenchmarks with a regression gate.

The fleet's performance claims are measured, recorded and guarded here:

* :mod:`repro.perf.fixtures` freezes the deterministic inputs;
* :mod:`repro.perf.runner` names the hot paths — GED cluster assignment,
  warm-up dataset construction, weighted SVM fits, batched GNN encoding,
  the end-to-end smoke service campaign — and times each optimised path
  next to the path it replaced;
* :mod:`repro.perf.report` emits the machine-readable ``BENCH_PR8.json``
  and compares its speedup *ratios* against the committed baseline
  (``benchmarks/perf_baseline.json``), failing on regressions beyond the
  tolerance.

Run it via the CLI::

    python -m repro.cli perf --smoke                 # CI-sized, gated
    python -m repro.cli perf --update-baseline       # refresh the baseline
    python -m repro.cli perf --list                  # what gets timed
"""

from __future__ import annotations

from pathlib import Path

from repro.perf.fixtures import PerfFixtures, build_fixtures
from repro.perf.report import (
    BASELINE_PATH,
    BENCH_FILENAME,
    PerfError,
    build_report,
    compare_reports,
    load_report,
    write_report,
)
from repro.perf.runner import (
    BENCHMARKS,
    RATIO_DEFINITIONS,
    Benchmark,
    benchmark_names,
    compute_ratios,
    run_benchmarks,
    time_benchmark,
)

__all__ = [
    "BASELINE_PATH",
    "BENCHMARKS",
    "BENCH_FILENAME",
    "Benchmark",
    "PerfError",
    "PerfFixtures",
    "RATIO_DEFINITIONS",
    "benchmark_names",
    "build_fixtures",
    "build_report",
    "compare_reports",
    "compute_ratios",
    "load_report",
    "run_benchmarks",
    "run_perf",
    "time_benchmark",
    "write_report",
]


def run_perf(
    smoke: bool = False,
    only: "list[str] | None" = None,
    output: str = BENCH_FILENAME,
    baseline_path: "str | None" = None,
    tolerance: float = 0.25,
    gate_absolute: bool = False,
    update_baseline: bool = False,
    echo=print,
) -> int:
    """The full perf session the ``repro perf`` subcommand drives.

    Times the (selected) hot paths, writes the report to ``output``, and
    gates the speedup ratios against the committed baseline; returns the
    process exit code (0 ok, 1 regression).  ``--update-baseline``
    rewrites the baseline from this run instead of gating against it.
    Raises :class:`PerfError` on operator mistakes (unknown benchmark
    names, unreadable baseline, bad tolerance).
    """
    if not 0 <= tolerance < 1:
        raise PerfError(f"tolerance must be in [0, 1), got {tolerance!r}")
    if only is not None:
        if update_baseline:
            # A partial baseline would contain only the selected pair's
            # ratios, and the gate iterates the baseline's ratios — every
            # unselected hot path would silently stop being gated.
            raise PerfError(
                "--update-baseline cannot be combined with --only: the "
                "baseline must cover every gated ratio"
            )
        unknown = sorted(set(only) - set(benchmark_names()))
        if unknown:
            raise PerfError(
                f"unknown benchmark(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(benchmark_names()))})"
            )
    # Resolve the gate's baseline before any (expensive) timing happens,
    # so operator mistakes fail in milliseconds, not after a full run.
    resolved_baseline = Path(
        baseline_path if baseline_path is not None else BASELINE_PATH
    )
    gating = not update_baseline and only is None
    baseline = None
    if gating:
        if resolved_baseline.exists():
            baseline = load_report(resolved_baseline)
            if bool(baseline.get("smoke")) != smoke:
                # Smoke and full fixtures are different workloads; their
                # ratios are not comparable, so gating across them would
                # produce spurious passes/failures.
                raise PerfError(
                    f"{resolved_baseline} is a "
                    f"{'smoke' if baseline.get('smoke') else 'full'} baseline "
                    f"but this is a {'smoke' if smoke else 'full'} run — "
                    "match --smoke, point --baseline at a matching report, "
                    "or refresh it with --update-baseline"
                )
        elif baseline_path is not None:
            raise PerfError(f"perf baseline {resolved_baseline} does not exist")

    try:
        echo(f"building perf fixtures ({'smoke' if smoke else 'full'}) ...")
        fixtures = build_fixtures(smoke=smoke)
        echo("timing hot paths:")
        results = run_benchmarks(fixtures, smoke=smoke, only=only, echo=echo)
    except ValueError as error:
        raise PerfError(str(error)) from None
    ratios = compute_ratios(results)
    for name, value in sorted(ratios.items()):
        echo(f"  {name:<30} {value:9.2f}x")
    report = build_report(results, ratios, smoke=smoke)
    written = write_report(report, output)
    echo(f"wrote {written}")

    if update_baseline:
        write_report(report, resolved_baseline)
        echo(f"updated baseline {resolved_baseline}")
        return 0
    if only is not None:
        # A partial run cannot be gated: pairs that did not run would
        # read as regressions.  The report is still written.
        echo("--only selects a subset; regression gate skipped")
        return 0
    if baseline is None:
        echo(f"no baseline at {resolved_baseline}; regression gate skipped")
        return 0
    violations = compare_reports(
        report, baseline, tolerance=tolerance, gate_absolute=gate_absolute
    )
    if violations:
        for violation in violations:
            echo(f"REGRESSION: {violation}")
        echo(
            f"perf gate FAILED: {len(violations)} regression(s) beyond "
            f"{tolerance:.0%} of {resolved_baseline}"
        )
        return 1
    echo(
        f"perf gate ok: {len(baseline.get('ratios', {}))} ratio(s) within "
        f"{tolerance:.0%} of {resolved_baseline}"
    )
    return 0
