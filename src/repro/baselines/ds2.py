"""DS2 (Kalavri et al., OSDI'18) — the linear scaling baseline (§V-A).

DS2 instruments each operator's *useful time* and computes its "true
processing rate": the rate the operator would sustain if it were busy 100%
of the time.  Assuming processing ability scales linearly with parallelism,
the optimal degree for a target workload is

    p_o = ceil( target demand at o  /  true rate per instance at o ),

where the demand propagates target source rates through the observed
selectivities.  We use the original DS2 policy faithfully; its two known
failure modes — both discussed in the paper — emerge from the observation
channel, not from this code:

* useful time is noisy, so the rate estimate over/under-shoots (§V-E:
  overestimates yield under-provisioning and backpressure);
* true scaling is mildly sub-linear, so scale-ups repeatedly fall a bit
  short and DS2 takes several reconfigurations to converge (§V-D).
"""

from __future__ import annotations

from repro.baselines._demand import propagate_target_demand
from repro.baselines.api import ParallelismTuner, TuningResult, TuningStep
from repro.engines.base import Deployment, EngineCluster
from repro.engines.metrics import JobTelemetry
from repro.utils.timer import Timer


class DS2Tuner(ParallelismTuner):
    """Measure -> estimate true rates -> rescale linearly -> repeat."""

    name = "DS2"

    def __init__(self, engine: EngineCluster, max_iterations: int = 6) -> None:
        super().__init__(engine)
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations

    def tune(self, deployment: Deployment, target_rates: dict[str, float]) -> TuningResult:
        self.engine.set_source_rates(deployment, target_rates)
        result = TuningResult(query_name=deployment.flow.name, tuner_name=self.name)

        telemetry = self.engine.measure(deployment)
        for _ in range(self.max_iterations):
            with Timer() as timer:
                # The controller applies its recommendation as computed;
                # useful-time noise keeps perturbing the estimate between
                # measurements, which is why DS2 averages several
                # reconfigurations per rate change in the paper (Fig. 7a).
                # The only damping is DS2's own convergence check: a change
                # within measurement accuracy (+-1 instance) of the current
                # degree is considered converged, not re-deployed.
                recommendation = self._recommend(deployment, telemetry, target_rates)
                recommendation = self.stabilize(
                    recommendation,
                    deployment.parallelisms,
                    telemetry.has_backpressure,
                    deadband_fraction=0.0,
                )
            changed = self.apply(deployment, recommendation)
            telemetry = self.engine.measure(deployment)
            result.steps.append(
                TuningStep(
                    parallelisms=dict(deployment.parallelisms),
                    reconfigured=changed,
                    backpressure_after=telemetry.has_backpressure,
                    recommendation_seconds=timer.elapsed,
                    mean_cpu_utilisation=self.observe_cpu(telemetry),
                )
            )
            if not changed and not telemetry.has_backpressure:
                result.converged = True
                break
        return result

    # ------------------------------------------------------------------
    # the DS2 policy
    # ------------------------------------------------------------------

    def _recommend(
        self,
        deployment: Deployment,
        telemetry: JobTelemetry,
        target_rates: dict[str, float],
    ) -> dict[str, int]:
        flow = deployment.flow
        demand = propagate_target_demand(deployment, telemetry, target_rates)
        recommendation: dict[str, int] = {}
        for name in flow.topological_order():
            metrics = telemetry[name]
            current_p = deployment.parallelisms[name]
            true_rate = metrics.true_processing_rate     # aggregate records/s
            if true_rate <= 0:
                # Operator processed nothing in the window; keep its degree.
                recommendation[name] = current_p
                continue
            rate_per_instance = true_rate / current_p
            recommendation[name] = self.clamp(demand[name] / rate_per_instance)
        return recommendation
