"""Oracle tuner: reads the simulator's ground truth.

Not a paper baseline — a testing instrument.  It computes the provably
minimal backpressure-free parallelism from the hidden performance model in
one shot, giving tests and experiments a reference point: no real tuner
should beat it, and a good tuner should approach it.
"""

from __future__ import annotations

from repro.baselines.api import ParallelismTuner, TuningResult, TuningStep
from repro.engines.base import Deployment
from repro.engines.flow import solve_flow
from repro.utils.timer import Timer


class OracleTuner(ParallelismTuner):
    """One-shot optimal recommendation from ground truth."""

    name = "Oracle"

    def tune(self, deployment: Deployment, target_rates: dict[str, float]) -> TuningResult:
        self.engine.set_source_rates(deployment, target_rates)
        result = TuningResult(query_name=deployment.flow.name, tuner_name=self.name)
        with Timer() as timer:
            recommendation = self.optimal_parallelisms(deployment, target_rates)
        changed = self.apply(deployment, recommendation)
        telemetry = self.engine.measure(deployment)
        result.steps.append(
            TuningStep(
                parallelisms=dict(deployment.parallelisms),
                reconfigured=changed,
                backpressure_after=telemetry.has_backpressure,
                recommendation_seconds=timer.elapsed,
                mean_cpu_utilisation=self.observe_cpu(telemetry),
            )
        )
        result.converged = not telemetry.has_backpressure
        return result

    def optimal_parallelisms(
        self, deployment: Deployment, target_rates: dict[str, float]
    ) -> dict[str, int]:
        """Minimum per-operator degrees sustaining ``target_rates``."""
        flow = deployment.flow
        perf = self.engine.perf
        # True demand: solve at maximal parallelism (no saturation anywhere).
        generous = dict.fromkeys(flow.operator_names, self.engine.max_parallelism)
        truth = solve_flow(flow, generous, target_rates, perf)
        recommendation = {}
        for name in flow.operator_names:
            spec = flow.operator(name)
            demand = truth[name].demand_in
            recommendation[name] = perf.min_parallelism_for(
                spec, demand, self.engine.max_parallelism
            )
        return recommendation
