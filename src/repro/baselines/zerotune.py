"""ZeroTune (Agnihotri et al., ICDE'24) — zero-shot job-level cost model.

ZeroTune pre-trains a GNN on execution histories to predict a *job-level*
performance metric from the dataflow DAG, operator features, and the
candidate parallelism degrees.  It is zero-shot: the same model serves
unseen queries without fine-tuning.  The paper notes it "does not specify a
parallelism tuning strategy", so — as in the paper's evaluation — the
recommendation samples candidate parallelism assignments and picks the one
with the lowest predicted cost (end-to-end latency here).

Because the objective is performance only, with no resource term, lower
latency almost always means more parallelism; ZeroTune therefore recommends
by far the largest degrees of all methods (Fig. 6) while never causing
backpressure (Table III).  It reconfigures exactly once per rate change.

Architecturally the cost model reuses the bottleneck encoder (parallelism-
aware path, so FUSE injects the candidate degrees) with a mean-pooled
regression head — precisely the "aggregate operator embeddings into a
summary vector, regress a job-level metric" design §IV-A contrasts
StreamTune against.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.api import ParallelismTuner, TuningResult, TuningStep
from repro.dataflow.features import FeatureEncoder
from repro.engines.base import Deployment, EngineCluster
from repro.gnn.data import GraphSample, build_sample
from repro.gnn.layers import Linear, ReLU
from repro.gnn.model import BottleneckEncoder, EncoderConfig
from repro.gnn.optim import Adam
from repro.utils.rng import seeded_rng
from repro.utils.timer import Timer


class PooledRegressionGNN:
    """Encoder + mean-pool + MLP regressor for a job-level metric."""

    def __init__(self, config: EncoderConfig) -> None:
        rng = seeded_rng(config.seed + 2)
        self.encoder = BottleneckEncoder(config)
        self.fc1 = Linear(rng, config.embedding_dim, config.head_hidden_dim)
        self.act = ReLU()
        self.fc2 = Linear(rng, config.head_hidden_dim, 1)

    def forward(self, sample: GraphSample) -> float:
        h = self.encoder.forward(sample, parallelism_aware=True)
        pooled = h.mean(axis=0, keepdims=True)
        self._n_nodes = h.shape[0]
        return float(self.fc2.forward(self.act.forward(self.fc1.forward(pooled)))[0, 0])

    def backward(self, grad_output: float) -> None:
        grad = np.array([[grad_output]])
        grad_pooled = self.fc1.backward(self.act.backward(self.fc2.backward(grad)))
        grad_h = np.repeat(grad_pooled / self._n_nodes, self._n_nodes, axis=0)
        self.encoder.backward(grad_h)

    def parameters(self):
        return (
            self.encoder.parameters()
            + self.fc1.parameters()
            + self.fc2.parameters()
        )


class ZeroTuneTuner(ParallelismTuner):
    """Zero-shot cost model + candidate sampling."""

    name = "ZeroTune"

    def __init__(
        self,
        engine: EngineCluster,
        records: list,
        feature_encoder: FeatureEncoder | None = None,
        hidden_dim: int = 32,
        epochs: int = 30,
        n_candidates: int = 96,
        max_sampled_parallelism: int = 16,
        seed: int = 23,
    ) -> None:
        super().__init__(engine)
        if not records:
            raise ValueError("ZeroTune needs a non-empty execution history")
        self.records = records
        self.feature_encoder = feature_encoder or FeatureEncoder()
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.n_candidates = n_candidates
        self.max_sampled_parallelism = min(max_sampled_parallelism, engine.max_parallelism)
        self.seed = seed
        self._rng = seeded_rng(seed)
        self._model: PooledRegressionGNN | None = None

    # ------------------------------------------------------------------
    # offline training (zero-shot: once, on the global history)
    # ------------------------------------------------------------------

    def fit(self) -> None:
        """Train the cost model on the execution history (idempotent)."""
        if self._model is not None:
            return
        samples, targets = self._training_set()
        config = EncoderConfig(
            input_dim=samples[0].features.shape[1],
            hidden_dim=self.hidden_dim,
            seed=self.seed,
        )
        model = PooledRegressionGNN(config)
        optimizer = Adam(model.parameters(), learning_rate=5e-3, weight_decay=1e-4)
        rng = seeded_rng(self.seed + 5)
        for _ in range(self.epochs):
            for index in rng.permutation(len(samples)):
                optimizer.zero_grad()
                prediction = model.forward(samples[index])
                error = prediction - targets[index]
                model.backward(2.0 * error)
                optimizer.step()
        self._model = model

    def _training_set(self) -> tuple[list[GraphSample], np.ndarray]:
        samples = []
        targets = []
        for record in self.records:
            samples.append(
                build_sample(
                    record.flow,
                    record.source_rates,
                    record.parallelisms,
                    labels={},
                    encoder=self.feature_encoder,
                    max_parallelism=self.engine.max_parallelism,
                )
            )
            targets.append(np.log1p(record.job_latency_seconds))
        return samples, np.asarray(targets)

    def prepare(self, query) -> None:
        self.fit()

    # ------------------------------------------------------------------
    # online recommendation: sample configs, pick the cheapest
    # ------------------------------------------------------------------

    def tune(self, deployment: Deployment, target_rates: dict[str, float]) -> TuningResult:
        self.fit()
        self.engine.set_source_rates(deployment, target_rates)
        result = TuningResult(query_name=deployment.flow.name, tuner_name=self.name)
        with Timer() as timer:
            recommendation = self._recommend(deployment, target_rates)
        changed = self.apply(deployment, recommendation)
        telemetry = self.engine.measure(deployment)
        result.steps.append(
            TuningStep(
                parallelisms=dict(deployment.parallelisms),
                reconfigured=changed,
                backpressure_after=telemetry.has_backpressure,
                recommendation_seconds=timer.elapsed,
                mean_cpu_utilisation=self.observe_cpu(telemetry),
            )
        )
        result.converged = not telemetry.has_backpressure
        return result

    def _recommend(
        self, deployment: Deployment, target_rates: dict[str, float]
    ) -> dict[str, int]:
        assert self._model is not None
        flow = deployment.flow
        names = flow.operator_names
        best_config = dict(deployment.parallelisms)
        best_cost = np.inf
        for _ in range(self.n_candidates):
            candidate = {
                name: int(self._rng.integers(1, self.max_sampled_parallelism + 1))
                for name in names
            }
            sample = build_sample(
                flow,
                target_rates,
                candidate,
                labels={},
                encoder=self.feature_encoder,
                max_parallelism=self.engine.max_parallelism,
            )
            cost = self._model.forward(sample)
            if cost < best_cost:
                best_cost = cost
                best_config = candidate
        return best_config
