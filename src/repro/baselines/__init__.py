"""Competitor parallelism tuners (paper §V-A "Competitors").

* :class:`~repro.baselines.ds2.DS2Tuner` — OSDI'18 DS2: useful-time rate
  estimation under a linearity assumption.
* :class:`~repro.baselines.conttune.ContTuneTuner` — VLDB'23 ContTune:
  per-operator conservative Bayesian optimisation with the Big-Small
  algorithm.
* :class:`~repro.baselines.zerotune.ZeroTuneTuner` — ICDE'24 ZeroTune:
  zero-shot GNN job-level cost model + configuration sampling.
* :class:`~repro.baselines.oracle.OracleTuner` — ground-truth reference
  (not in the paper; used by tests to sanity-check the simulator).
"""

from repro.baselines.api import ParallelismTuner, TuningResult, TuningStep
from repro.baselines.ds2 import DS2Tuner
from repro.baselines.conttune import ContTuneTuner
from repro.baselines.zerotune import ZeroTuneTuner
from repro.baselines.oracle import OracleTuner

__all__ = [
    "ContTuneTuner",
    "DS2Tuner",
    "OracleTuner",
    "ParallelismTuner",
    "TuningResult",
    "TuningStep",
    "ZeroTuneTuner",
]
