"""ContTune (Lian et al., VLDB'23) — conservative Bayesian optimisation.

ContTune tunes each operator independently using *the target job's own
tuning history*: a Gaussian-process surrogate over (parallelism ->
per-instance processing rate), acted on through the **Big-Small**
algorithm:

* **Big** — when the operator cannot sustain its demand and the surrogate
  has no trustworthy posterior yet, jump to a generously padded linear
  estimate (get out of backpressure fast);
* **Small** — otherwise pick the *smallest* degree whose conservative
  aggregate-capacity score ``p * (mu(p) - alpha * sigma(p))`` covers the
  demand (shrink carefully; §V-A fixes alpha = 3).

The per-job history persists across rate changes, which is why ContTune
needs fewer reconfigurations than DS2 once a query has been tuned a few
times — and also why it struggles on structurally complex queries, where
single-operator GPs ignore inter-operator effects (paper §V-D).
"""

from __future__ import annotations

import numpy as np

from repro.baselines._demand import propagate_target_demand
from repro.baselines.api import ParallelismTuner, TuningResult, TuningStep
from repro.core.labeling import label_operators
from repro.engines.base import Deployment, EngineCluster
from repro.engines.metrics import JobTelemetry
from repro.models.gp import GaussianProcess1D
from repro.utils.timer import Timer

#: Safety padding of the Big jump over the plain linear estimate.
BIG_STEP_PADDING = 1.25


class ContTuneTuner(ParallelismTuner):
    """Per-operator GP surrogate + Big-Small tuning."""

    name = "ContTune"

    def __init__(
        self,
        engine: EngineCluster,
        alpha: float = 3.0,
        max_iterations: int = 6,
        min_observations: int = 2,
    ) -> None:
        super().__init__(engine)
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.max_iterations = max_iterations
        self.min_observations = min_observations
        # (job name, operator name) -> list of (parallelism, per-instance rate)
        self._history: dict[tuple[str, str], list[tuple[int, float]]] = {}

    def prepare(self, query) -> None:
        """ContTune starts every *job* from scratch (local history only)."""
        stale = [key for key in self._history if key[0] == query.flow.name]
        for key in stale:
            del self._history[key]

    def tune(self, deployment: Deployment, target_rates: dict[str, float]) -> TuningResult:
        self.engine.set_source_rates(deployment, target_rates)
        result = TuningResult(query_name=deployment.flow.name, tuner_name=self.name)

        # Conservative memory for this tuning process: once a degree has
        # demonstrably backpressured under the *current* demand, never
        # recommend that operator at or below it again (the Big-Small
        # algorithm shrinks carefully, it does not re-test failures).
        floors: dict[str, int] = {}

        telemetry = self.engine.measure(deployment)
        self._record_observations(deployment, telemetry)
        for _ in range(self.max_iterations):
            with Timer() as timer:
                recommendation = self._recommend(deployment, telemetry, target_rates)
                for name, floor in floors.items():
                    recommendation[name] = max(recommendation[name], floor)
                recommendation = self.stabilize(
                    recommendation,
                    deployment.parallelisms,
                    telemetry.has_backpressure,
                )
            changed = self.apply(deployment, recommendation)
            telemetry = self.engine.measure(deployment)
            self._record_observations(deployment, telemetry)
            if telemetry.has_backpressure:
                labels = label_operators(
                    deployment.flow, telemetry, self.engine.name
                )
                for name, label in labels.items():
                    if label == 1:
                        current = deployment.parallelisms[name]
                        floors[name] = max(
                            floors.get(name, 1),
                            min(current + 1, self.engine.max_parallelism),
                        )
            result.steps.append(
                TuningStep(
                    parallelisms=dict(deployment.parallelisms),
                    reconfigured=changed,
                    backpressure_after=telemetry.has_backpressure,
                    recommendation_seconds=timer.elapsed,
                    mean_cpu_utilisation=self.observe_cpu(telemetry),
                )
            )
            if not changed and not telemetry.has_backpressure:
                result.converged = True
                break
        return result

    # ------------------------------------------------------------------
    # surrogate bookkeeping
    # ------------------------------------------------------------------

    def _record_observations(self, deployment: Deployment, telemetry: JobTelemetry) -> None:
        job = deployment.flow.name
        for name, metrics in telemetry.operators.items():
            if metrics.true_processing_rate <= 0:
                continue
            rate_per_instance = metrics.true_processing_rate / metrics.parallelism
            self._history.setdefault((job, name), []).append(
                (metrics.parallelism, rate_per_instance)
            )

    def observation_count(self, job: str, operator: str) -> int:
        return len(self._history.get((job, operator), []))

    # ------------------------------------------------------------------
    # Big-Small recommendation
    # ------------------------------------------------------------------

    def _recommend(
        self,
        deployment: Deployment,
        telemetry: JobTelemetry,
        target_rates: dict[str, float],
    ) -> dict[str, int]:
        job = deployment.flow.name
        demand = propagate_target_demand(deployment, telemetry, target_rates)
        recommendation: dict[str, int] = {}
        for name in deployment.flow.topological_order():
            current_p = deployment.parallelisms[name]
            observations = self._history.get((job, name), [])
            recommendation[name] = self._tune_operator(
                demand[name], current_p, observations, telemetry[name]
            )
        return recommendation

    def _tune_operator(
        self,
        demand: float,
        current_p: int,
        observations: list[tuple[int, float]],
        metrics,
    ) -> int:
        if demand <= 0:
            return 1
        if len(observations) < self.min_observations:
            return self._big_step(demand, current_p, metrics)

        ps = np.array([p for p, _ in observations], dtype=float)
        rates = np.array([r for _, r in observations], dtype=float)
        surrogate = GaussianProcess1D(length_scale=max(4.0, float(np.ptp(ps)) + 1.0)).fit(ps, rates)
        candidates = np.arange(1, self.engine.max_parallelism + 1, dtype=float)
        conservative_rate = surrogate.lower_confidence_bound(candidates, self.alpha)
        aggregate = candidates * np.maximum(conservative_rate, 0.0)
        feasible = np.nonzero(aggregate >= demand)[0]
        if len(feasible) == 0:
            return self._big_step(demand, current_p, metrics)
        return int(candidates[feasible[0]])

    def _big_step(self, demand: float, current_p: int, metrics) -> int:
        """Generously padded linear estimate (the Big move)."""
        if metrics.true_processing_rate > 0:
            rate_per_instance = metrics.true_processing_rate / max(1, metrics.parallelism)
            return self.clamp(BIG_STEP_PADDING * demand / rate_per_instance)
        return self.clamp(current_p * 2)
