"""Common tuner interface and result records.

A *tuning process* (paper terminology) is one invocation of
:meth:`ParallelismTuner.tune` in response to a source-rate change; it may
perform several *reconfigurations* (stop-and-restart redeployments).  The
records here carry everything the experiment harness aggregates: per-step
parallelism maps, recommendation wall time, backpressure observations after
each reconfiguration, and simulated stabilisation time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.engines.base import Deployment, EngineCluster
from repro.workloads.query import StreamingQuery


@dataclass(frozen=True)
class TuningStep:
    """One iteration of a tuning process."""

    parallelisms: dict[str, int]
    reconfigured: bool                 # did this step stop-and-restart the job
    backpressure_after: bool           # observed after (re)deployment
    recommendation_seconds: float      # wall time spent deciding
    mean_cpu_utilisation: float        # capacity-weighted busy share

    @property
    def total_parallelism(self) -> int:
        return sum(self.parallelisms.values())


@dataclass
class TuningResult:
    """Outcome of one tuning process (one source-rate change)."""

    query_name: str
    tuner_name: str
    steps: list[TuningStep] = field(default_factory=list)
    converged: bool = False

    @property
    def n_reconfigurations(self) -> int:
        return sum(1 for step in self.steps if step.reconfigured)

    @property
    def n_backpressure_events(self) -> int:
        """Backpressure observed after one of *this tuner's* redeployments."""
        return sum(
            1 for step in self.steps if step.reconfigured and step.backpressure_after
        )

    @property
    def final_parallelisms(self) -> dict[str, int]:
        if not self.steps:
            raise ValueError("tuning result has no steps")
        return dict(self.steps[-1].parallelisms)

    @property
    def final_total_parallelism(self) -> int:
        return self.steps[-1].total_parallelism

    @property
    def recommendation_seconds(self) -> float:
        return sum(step.recommendation_seconds for step in self.steps)

    def tuning_minutes(self, stabilization_minutes: float) -> float:
        """Paper Fig. 7b accounting: inference time + stabilisation waits."""
        return (
            self.recommendation_seconds / 60.0
            + self.n_reconfigurations * stabilization_minutes
        )

    def cpu_trace(self) -> list[float]:
        return [step.mean_cpu_utilisation for step in self.steps]


class ParallelismTuner(abc.ABC):
    """Base class of all tuning methods."""

    #: Display name used in experiment tables.
    name: str = "abstract"

    def __init__(self, engine: EngineCluster) -> None:
        self.engine = engine

    def prepare(self, query: StreamingQuery) -> None:
        """One-time per-query setup (model retrieval, history reset, ...)."""

    @abc.abstractmethod
    def tune(self, deployment: Deployment, target_rates: dict[str, float]) -> TuningResult:
        """Adapt ``deployment`` to ``target_rates``; returns the process log."""

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def observe_cpu(self, telemetry) -> float:
        """Capacity-weighted mean busy share across operators (Fig. 10)."""
        total_cores = 0
        busy_cores = 0.0
        for metrics in telemetry.operators.values():
            total_cores += metrics.parallelism
            busy_cores += metrics.parallelism * metrics.busy_ms_per_second / 1000.0
        if total_cores == 0:
            return 0.0
        return busy_cores / total_cores

    def apply(self, deployment: Deployment, parallelisms: dict[str, int]) -> bool:
        """Reconfigure if the map changed; returns True when it did."""
        if parallelisms == deployment.parallelisms:
            return False
        self.engine.reconfigure(deployment, parallelisms)
        return True

    def clamp(self, parallelism: float) -> int:
        """Round a raw recommendation into the engine's valid range."""
        import math

        return int(min(self.engine.max_parallelism, max(1, math.ceil(parallelism))))

    def stabilize(
        self,
        recommendation: dict[str, int],
        current: dict[str, int],
        has_backpressure: bool,
        deadband_fraction: float = 0.08,
    ) -> dict[str, int]:
        """Suppress noise-driven churn in rate-based recommendations.

        Measurement noise perturbs useful-time estimates by a few percent,
        which flips ``ceil`` recommendations by +-1 forever.  Real
        deployments of DS2-style controllers damp this with a significance
        test: without backpressure, a change within ``max(1, fraction * p)``
        of the current degree is not worth a restart.  Under backpressure
        every raise is applied (and guaranteed to make progress).
        """
        stable: dict[str, int] = {}
        for name, proposed in recommendation.items():
            existing = current[name]
            if has_backpressure:
                stable[name] = proposed if proposed != existing else existing
                continue
            deadband = max(1, int(round(deadband_fraction * existing)))
            if abs(proposed - existing) <= deadband:
                stable[name] = existing
            else:
                stable[name] = proposed
        return stable
