"""Shared demand propagation for rate-based tuners (DS2, ContTune).

Both baselines need the *target* input rate of every operator: the target
source rates pushed through the DAG using selectivities observed in the
latest measurement.  Kept in one place so the two tuners cannot drift.
"""

from __future__ import annotations

from repro.engines.base import Deployment
from repro.engines.metrics import JobTelemetry


def propagate_target_demand(
    deployment: Deployment,
    telemetry: JobTelemetry,
    target_rates: dict[str, float],
) -> dict[str, float]:
    """Target input rate per operator under observed selectivities."""
    flow = deployment.flow
    demand_in: dict[str, float] = {}
    demand_out: dict[str, float] = {}
    for name in flow.topological_order():
        metrics = telemetry[name]
        upstream = flow.upstream(name)
        if not upstream:
            demand_in[name] = target_rates.get(name, 0.0)
        else:
            demand_in[name] = sum(demand_out[u] for u in upstream)
        if metrics.input_rate > 0:
            selectivity = metrics.output_rate / metrics.input_rate
        else:
            selectivity = 1.0
        demand_out[name] = selectivity * demand_in[name]
    return demand_in
