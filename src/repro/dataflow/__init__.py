"""Logical dataflow model: operators, DAGs, and feature encoding.

This subpackage implements the paper's §II-A abstractions: the *logical*
dataflow DAG whose nodes are streaming operators and whose edges are data
dependencies.  Parallelism tuning (the paper's problem statement, §II-B)
always refers to operators of this logical graph.
"""

from repro.dataflow.operators import (
    AggregateFunction,
    DataType,
    KeyClass,
    OperatorSpec,
    OperatorType,
    WindowPolicy,
    WindowType,
)
from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.features import FeatureEncoder

__all__ = [
    "AggregateFunction",
    "DataType",
    "FeatureEncoder",
    "KeyClass",
    "LogicalDataflow",
    "OperatorSpec",
    "OperatorType",
    "WindowPolicy",
    "WindowType",
]
