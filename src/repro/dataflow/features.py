"""Initial feature vector construction (paper §IV-A, Table I).

Categorical features are one-hot encoded over fixed vocabularies derived
from the enums in :mod:`repro.dataflow.operators`, so the encoding dimension
is deterministic and transferable across workloads.  Numeric features are
squashed to [0, 1]; because rates span five orders of magnitude between PQP
(hundreds of records/s) and Timely Nexmark (millions of records/s) we use a
log-scaled min-max rather than a linear one — a monotone normalisation that
preserves the paper's intent while keeping small-rate workloads away from
the representational floor.

Per the paper, the initial vector h^(0) contains all static features plus
one dynamic feature, the source rate; *operator parallelism is deliberately
excluded* here and injected later through the FUSE layer (Eq. 3).

The source rate is additionally expanded into multi-frequency sinusoids of
its logarithm (a positional encoding).  A single squashed scalar cannot
separate 3 Wu from 10 Wu once rates span five orders of magnitude across
workloads, yet that 1-10x band is exactly where parallelism thresholds
move; the sinusoids give the models high resolution inside every band
while remaining smooth and bounded.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dataflow.graph import LogicalDataflow
from repro.dataflow.operators import (
    AggregateFunction,
    DataType,
    KeyClass,
    OperatorSpec,
    OperatorType,
    WindowPolicy,
    WindowType,
)

#: Normalisation ceilings for numeric features (log-scaled).
DEFAULT_MAX_WINDOW_LENGTH = 3600.0      # seconds or records
DEFAULT_MAX_TUPLE_WIDTH = 4096.0        # bytes
DEFAULT_MAX_SOURCE_RATE = 2.0e7         # records/s (covers Timely Nexmark)

#: Frequencies of the sinusoidal log-rate expansion.
RATE_ENCODING_FREQUENCIES = (0.5, 1.0, 2.0, 4.0)


def _one_hot(value: object, vocabulary: list) -> list[float]:
    return [1.0 if value is item else 0.0 for item in vocabulary]


def _log_scale(value: float, ceiling: float) -> float:
    """Monotone map of [0, ceiling] to [0, 1] via log1p; clips above ceiling."""
    if value <= 0:
        return 0.0
    return min(1.0, math.log1p(value) / math.log1p(ceiling))


class FeatureEncoder:
    """Encodes operators of a dataflow into initial GNN feature vectors.

    The encoder is stateless apart from its normalisation ceilings, so the
    same instance can encode any dataflow and the feature layout is stable
    across training and tuning.
    """

    _OPERATOR_TYPES = list(OperatorType)
    _WINDOW_TYPES = list(WindowType)
    _WINDOW_POLICIES = list(WindowPolicy)
    _KEY_CLASSES = list(KeyClass)
    _AGG_FUNCTIONS = list(AggregateFunction)
    _DATA_TYPES = list(DataType)

    def __init__(
        self,
        max_window_length: float = DEFAULT_MAX_WINDOW_LENGTH,
        max_tuple_width: float = DEFAULT_MAX_TUPLE_WIDTH,
        max_source_rate: float = DEFAULT_MAX_SOURCE_RATE,
    ) -> None:
        if min(max_window_length, max_tuple_width, max_source_rate) <= 0:
            raise ValueError("normalisation ceilings must be positive")
        self.max_window_length = max_window_length
        self.max_tuple_width = max_tuple_width
        self.max_source_rate = max_source_rate

    @property
    def dimension(self) -> int:
        """Length of the encoded feature vector."""
        categorical = (
            len(self._OPERATOR_TYPES)
            + len(self._WINDOW_TYPES)
            + len(self._WINDOW_POLICIES)
            + 3 * len(self._KEY_CLASSES)     # join key, aggregate class, aggregate key
            + len(self._AGG_FUNCTIONS)
            + len(self._DATA_TYPES)
        )
        numeric = 4                           # window len, slide len, width in, width out
        dynamic = 1 + 2 * len(RATE_ENCODING_FREQUENCIES)   # source rate + sinusoids
        return categorical + numeric + dynamic

    def encode_operator(self, spec: OperatorSpec, source_rate: float = 0.0) -> np.ndarray:
        """Encode a single operator; ``source_rate`` is the dynamic feature."""
        parts: list[float] = []
        parts += _one_hot(spec.op_type, self._OPERATOR_TYPES)
        parts += _one_hot(spec.window_type, self._WINDOW_TYPES)
        parts += _one_hot(spec.window_policy, self._WINDOW_POLICIES)
        parts += _one_hot(spec.join_key_class, self._KEY_CLASSES)
        parts += _one_hot(spec.aggregate_class, self._KEY_CLASSES)
        parts += _one_hot(spec.aggregate_key_class, self._KEY_CLASSES)
        parts += _one_hot(spec.aggregate_function, self._AGG_FUNCTIONS)
        parts += _one_hot(spec.tuple_data_type, self._DATA_TYPES)
        parts.append(_log_scale(spec.window_length, self.max_window_length))
        parts.append(_log_scale(spec.sliding_length, self.max_window_length))
        parts.append(_log_scale(spec.tuple_width_in, self.max_tuple_width))
        parts.append(_log_scale(spec.tuple_width_out, self.max_tuple_width))
        parts.append(_log_scale(source_rate, self.max_source_rate))
        parts.extend(self._rate_sinusoids(source_rate))
        return np.asarray(parts, dtype=np.float64)

    @staticmethod
    def _rate_sinusoids(source_rate: float) -> list[float]:
        """Positional encoding of log(rate): fine-grained demand resolution."""
        if source_rate <= 0:
            return [0.0] * (2 * len(RATE_ENCODING_FREQUENCIES))
        log_rate = math.log1p(source_rate)
        values: list[float] = []
        for frequency in RATE_ENCODING_FREQUENCIES:
            values.append(math.sin(frequency * log_rate))
            values.append(math.cos(frequency * log_rate))
        return values

    def encode_dataflow(
        self,
        flow: LogicalDataflow,
        source_rates: dict[str, float],
    ) -> tuple[np.ndarray, list[str]]:
        """Encode every operator of ``flow``.

        Returns the feature matrix (n_operators x dimension) and the operator
        name order (topological), which downstream GNN code uses as the node
        index.  The dynamic source-rate feature is set on source operators
        (their configured rate) and on first-level downstream operators (the
        total rate arriving from their sources, per §IV-A: "only the
        first-level downstream operators have non-zero source rates").
        """
        order = flow.topological_order()
        rate_feature = dict.fromkeys(order, 0.0)
        for src in flow.sources():
            rate = source_rates.get(src, 0.0)
            rate_feature[src] = rate
            for succ in flow.downstream(src):
                rate_feature[succ] += rate
        matrix = np.stack(
            [
                self.encode_operator(flow.operator(name), rate_feature[name])
                for name in order
            ]
        )
        return matrix, order

    def normalize_parallelism(self, parallelism: int, max_parallelism: int) -> float:
        """Monotone map of a parallelism degree to [0, 1] (FUSE / M_f input).

        Log-scaled: processing ability grows as ``p^alpha``, so the true
        bottleneck boundary is ``log(demand) - alpha * log(p) = const`` —
        presenting ``log p`` makes that boundary near-linear in feature
        space, which both the GNN and the monotone models learn from far
        fewer bottleneck examples.  Any strictly monotone encoding keeps
        the binary search of Algorithm 2 sound.
        """
        if max_parallelism <= 0:
            raise ValueError("max_parallelism must be positive")
        parallelism = max(0, parallelism)
        return min(1.0, math.log1p(parallelism) / math.log1p(max_parallelism))
