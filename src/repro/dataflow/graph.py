"""The logical dataflow DAG (paper §II-A, Fig. 1).

Nodes are :class:`~repro.dataflow.operators.OperatorSpec` instances, edges
are directed data dependencies.  The class validates acyclicity and weak
connectivity, exposes topological traversal (used by Algorithm 2, which
recommends parallelism in topological order), and serialises to plain
dictionaries for history persistence.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

import networkx as nx

from repro.dataflow.operators import OperatorSpec, OperatorType


class DataflowError(ValueError):
    """Raised when a dataflow graph violates a structural invariant."""


class LogicalDataflow:
    """A directed acyclic graph of streaming operators.

    Construction is incremental (:meth:`add_operator` / :meth:`connect`) and
    :meth:`validate` checks the invariants:

    * the graph is a non-empty DAG,
    * it is weakly connected,
    * sources have no in-edges, sinks no out-edges,
    * every non-source operator is reachable from some source.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise DataflowError("dataflow name must be non-empty")
        self.name = name
        self._operators: dict[str, OperatorSpec] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_operator(self, spec: OperatorSpec) -> OperatorSpec:
        """Register ``spec`` as a node; returns it for chaining."""
        if spec.name in self._operators:
            raise DataflowError(f"duplicate operator name: {spec.name!r}")
        self._operators[spec.name] = spec
        self._succ[spec.name] = []
        self._pred[spec.name] = []
        return spec

    def connect(self, upstream: str | OperatorSpec, downstream: str | OperatorSpec) -> None:
        """Add a directed edge upstream -> downstream."""
        u = upstream.name if isinstance(upstream, OperatorSpec) else upstream
        v = downstream.name if isinstance(downstream, OperatorSpec) else downstream
        for node in (u, v):
            if node not in self._operators:
                raise DataflowError(f"unknown operator: {node!r}")
        if u == v:
            raise DataflowError(f"self-loop on {u!r}")
        if v in self._succ[u]:
            raise DataflowError(f"duplicate edge {u!r} -> {v!r}")
        self._succ[u].append(v)
        self._pred[v].append(u)

    def chain(self, *specs: OperatorSpec) -> None:
        """Add ``specs`` (if new) and connect them in a linear pipeline."""
        for spec in specs:
            if spec.name not in self._operators:
                self.add_operator(spec)
        for upstream, downstream in zip(specs, specs[1:]):
            self.connect(upstream, downstream)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._operators)

    def __contains__(self, name: str) -> bool:
        return name in self._operators

    def __iter__(self) -> Iterator[OperatorSpec]:
        return iter(self._operators.values())

    def operator(self, name: str) -> OperatorSpec:
        try:
            return self._operators[name]
        except KeyError:
            raise DataflowError(f"unknown operator: {name!r}") from None

    @property
    def operator_names(self) -> list[str]:
        return list(self._operators)

    @property
    def edges(self) -> list[tuple[str, str]]:
        return [(u, v) for u, succ in self._succ.items() for v in succ]

    @property
    def n_edges(self) -> int:
        return sum(len(succ) for succ in self._succ.values())

    def upstream(self, name: str) -> list[str]:
        """Direct upstream operator names of ``name``."""
        self.operator(name)
        return list(self._pred[name])

    def downstream(self, name: str) -> list[str]:
        """Direct downstream operator names of ``name``."""
        self.operator(name)
        return list(self._succ[name])

    def sources(self) -> list[str]:
        """Names of source operators."""
        return [s.name for s in self if s.op_type is OperatorType.SOURCE]

    def sinks(self) -> list[str]:
        """Names of sink operators."""
        return [s.name for s in self if s.op_type is OperatorType.SINK]

    def first_level_downstream(self) -> list[str]:
        """Operators directly fed by a source (paper §II-A)."""
        seen: list[str] = []
        for src in self.sources():
            for succ in self._succ[src]:
                if succ not in seen:
                    seen.append(succ)
        return seen

    def ancestors(self, name: str) -> set[str]:
        """All strict upstream ancestors of ``name``."""
        result: set[str] = set()
        frontier = deque(self._pred[name])
        while frontier:
            node = frontier.popleft()
            if node in result:
                continue
            result.add(node)
            frontier.extend(self._pred[node])
        return result

    def descendants(self, name: str) -> set[str]:
        """All strict downstream descendants of ``name``."""
        result: set[str] = set()
        frontier = deque(self._succ[name])
        while frontier:
            node = frontier.popleft()
            if node in result:
                continue
            result.add(node)
            frontier.extend(self._succ[node])
        return result

    def topological_order(self) -> list[str]:
        """Kahn topological order; raises if the graph has a cycle."""
        indegree = {name: len(pred) for name, pred in self._pred.items()}
        frontier = deque(sorted(name for name, deg in indegree.items() if deg == 0))
        order: list[str] = []
        while frontier:
            node = frontier.popleft()
            order.append(node)
            for succ in self._succ[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self._operators):
            raise DataflowError(f"dataflow {self.name!r} contains a cycle")
        return order

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check all structural invariants; raises :class:`DataflowError`."""
        if not self._operators:
            raise DataflowError(f"dataflow {self.name!r} is empty")
        self.topological_order()  # raises on cycles
        if len(self._operators) > 1 and not self._weakly_connected():
            raise DataflowError(f"dataflow {self.name!r} is not weakly connected")
        sources = set(self.sources())
        if not sources:
            raise DataflowError(f"dataflow {self.name!r} has no source operator")
        for spec in self:
            if spec.is_source and self._pred[spec.name]:
                raise DataflowError(f"source {spec.name!r} has upstream operators")
            if spec.is_sink and self._succ[spec.name]:
                raise DataflowError(f"sink {spec.name!r} has downstream operators")
        reachable = set(sources)
        for src in sources:
            reachable |= self.descendants(src)
        unreachable = set(self._operators) - reachable
        if unreachable:
            raise DataflowError(
                f"operators unreachable from sources: {sorted(unreachable)}"
            )

    def _weakly_connected(self) -> bool:
        start = next(iter(self._operators))
        seen = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbour in self._succ[node] + self._pred[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self._operators)

    # ------------------------------------------------------------------
    # structure / serde
    # ------------------------------------------------------------------

    def structural_signature(self) -> str:
        """A canonical string identifying the labelled structure of the DAG.

        Two dataflows with the same signature are structurally identical up
        to node renaming *in topological position*; used as a cache key for
        GED computations and for deduplicating history graphs.
        """
        order = self.topological_order()
        index = {name: i for i, name in enumerate(order)}
        node_part = ",".join(self.operator(name).structural_label() for name in order)
        edge_part = ",".join(
            sorted(f"{index[u]}>{index[v]}" for u, v in self.edges)
        )
        return f"{node_part}|{edge_part}"

    def tuning_signature(self) -> str:
        """Canonical *full-fidelity* structure identity for cache sharing.

        :meth:`structural_signature` captures only what GED sees (operator
        types and edges); this signature additionally captures every other
        operator field (windows, widths, selectivity, cost factor, ...), so
        two dataflows with equal tuning signatures encode to bit-identical
        GNN inputs given the same topologically-indexed source rates.  That
        is the contract behind cross-query sharing of distilled operating
        points and parallelism-agnostic embeddings: a cache entry computed
        for one query is exactly what a structurally identical query
        (however named) would have computed.

        The result is memoised per (node count, edge count) — dataflows are
        effectively immutable once validated, and recomputing on growth
        keeps a stale memo from surviving incremental construction.
        """
        shape = (len(self._operators), len(self.edges))
        memo = getattr(self, "_tuning_signature", None)
        if memo is not None and memo[0] == shape:
            return memo[1]
        order = self.topological_order()
        index = {name: i for i, name in enumerate(order)}
        nodes = []
        for name in order:
            fields = self.operator(name).to_dict()
            del fields["name"]      # structure up to node renaming
            nodes.append(repr(sorted(fields.items())))
        edge_part = ",".join(
            sorted(f"{index[u]}>{index[v]}" for u, v in self.edges)
        )
        signature = ";".join(nodes) + "|" + edge_part
        self._tuning_signature = (shape, signature)
        return signature

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` with ``label`` node attrs."""
        graph = nx.DiGraph(name=self.name)
        for spec in self:
            graph.add_node(spec.name, label=spec.structural_label(), spec=spec)
        graph.add_edges_from(self.edges)
        return graph

    def copy(self, name: str | None = None) -> "LogicalDataflow":
        """Deep-enough copy (specs are frozen, so sharing them is safe)."""
        clone = LogicalDataflow(name or self.name)
        for spec in self:
            clone.add_operator(spec)
        for u, v in self.edges:
            clone.connect(u, v)
        return clone

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "operators": [spec.to_dict() for spec in self],
            "edges": self.edges,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogicalDataflow":
        flow = cls(data["name"])
        for spec_data in data["operators"]:
            flow.add_operator(OperatorSpec.from_dict(spec_data))
        for u, v in data["edges"]:
            flow.connect(u, v)
        return flow

    @classmethod
    def from_specs(
        cls,
        name: str,
        specs: Iterable[OperatorSpec],
        edges: Iterable[tuple[str, str]],
    ) -> "LogicalDataflow":
        """Build and validate a dataflow in one call."""
        flow = cls(name)
        for spec in specs:
            flow.add_operator(spec)
        for u, v in edges:
            flow.connect(u, v)
        flow.validate()
        return flow

    def __repr__(self) -> str:
        return (
            f"LogicalDataflow({self.name!r}, operators={len(self)}, "
            f"edges={self.n_edges})"
        )
