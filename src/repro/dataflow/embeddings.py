"""Embedding-based operator representations (paper §VII, future work).

The paper's feature scheme (Table I + one-hot operator types) "requires
retraining when entirely new operators are introduced" and its §VII
suggests "embedding-based representations that capture semantic
relationships between operators, improving generalization to unseen
operators".  This module implements that extension:

* :class:`OperatorProperties` — a compact, human-interpretable property
  vector per operator kind (statefulness, windowing, fan-in, amplification
  tendency, relative per-record cost class).  Two operator kinds that
  behave alike (e.g. ``map`` and ``flat_map``) sit close in property
  space, so knowledge learned on one transfers to the other.
* :class:`OperatorTaxonomy` — a registry from operator-kind labels to
  property vectors.  New operator kinds are *registered*, not retrained:
  downstream models consume only the property vector.
* :class:`SemanticFeatureEncoder` — drop-in replacement for
  :class:`~repro.dataflow.features.FeatureEncoder` that swaps the one-hot
  operator-type block for the taxonomy's property vector.  Everything else
  (window/key/aggregate one-hots, numeric scaling, rate sinusoids, the
  FUSE parallelism handling) is inherited unchanged, so pre-training and
  fine-tuning work with either encoder.

The generalisation claim is testable: hold one operator kind out of the
pre-training histories and tune a query that uses it.  Under one-hot
encoding the held-out column is untrained dead weight; under the semantic
encoder the unseen kind lands between its behavioural neighbours and the
encoder's bottleneck surface extends to it (see
``examples/unseen_operators.py`` and ``tests/test_embeddings.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dataflow.features import FeatureEncoder
from repro.dataflow.operators import OperatorSpec, OperatorType

#: Cost classes: rough per-record CPU expense tiers, normalised to [0, 1].
_COST_CLASS = {"trivial": 0.0, "light": 0.25, "moderate": 0.5, "heavy": 0.75, "extreme": 1.0}


@dataclass(frozen=True)
class OperatorProperties:
    """Semantic coordinates of an operator kind.

    Every field is in [0, 1] so the vector is directly consumable as model
    input.  The fields are *behavioural*, not nominal: they describe what
    the operator does to data and state, which is what determines its
    processing-ability curve — the quantity parallelism tuning cares about.

    Parameters
    ----------
    emits:
        1.0 if the operator produces records into the dataflow (everything
        except sinks).
    consumes:
        1.0 if the operator receives records from upstream (everything
        except sources).
    stateful:
        1.0 for operators keeping per-key state (joins, aggregates).
    windowed:
        1.0 for operators that buffer window contents.
    keyed:
        1.0 for operators that partition their input by key.
    fan_in:
        Normalised upstream fan-in: 0.0 for one input, 1.0 for two-input
        operators (joins).  Multi-way joins are composed from binary ones
        in both Nexmark and PQP, so the scale is binary in practice.
    amplification:
        Tendency of output rate relative to input rate: 0.0 contracts
        (filters, window aggregates), 0.5 preserves (maps), 1.0 expands
        (flat-maps, joins on hot keys).
    cost_class:
        Relative per-record CPU cost tier (see ``_COST_CLASS``).
    """

    emits: float
    consumes: float
    stateful: float
    windowed: float
    keyed: float
    fan_in: float
    amplification: float
    cost_class: float

    def __post_init__(self) -> None:
        for field_name, value in self.as_dict().items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")

    def as_dict(self) -> dict[str, float]:
        return {
            "emits": self.emits,
            "consumes": self.consumes,
            "stateful": self.stateful,
            "windowed": self.windowed,
            "keyed": self.keyed,
            "fan_in": self.fan_in,
            "amplification": self.amplification,
            "cost_class": self.cost_class,
        }

    def vector(self) -> np.ndarray:
        """The property vector in a fixed field order."""
        return np.asarray(list(self.as_dict().values()), dtype=np.float64)


#: Dimensionality of a property vector.
PROPERTY_DIMENSION = 8


def _props(
    emits: float = 1.0,
    consumes: float = 1.0,
    stateful: float = 0.0,
    windowed: float = 0.0,
    keyed: float = 0.0,
    fan_in: float = 0.0,
    amplification: float = 0.5,
    cost: str = "light",
) -> OperatorProperties:
    return OperatorProperties(
        emits=emits,
        consumes=consumes,
        stateful=stateful,
        windowed=windowed,
        keyed=keyed,
        fan_in=fan_in,
        amplification=amplification,
        cost_class=_COST_CLASS[cost],
    )


#: Built-in semantics for the Table I operator kinds.
BUILTIN_PROPERTIES: dict[str, OperatorProperties] = {
    OperatorType.SOURCE.value: _props(consumes=0.0, cost="trivial"),
    OperatorType.SINK.value: _props(emits=0.0, cost="trivial"),
    OperatorType.MAP.value: _props(cost="light"),
    OperatorType.FLAT_MAP.value: _props(amplification=1.0, cost="light"),
    OperatorType.FILTER.value: _props(amplification=0.0, cost="trivial"),
    OperatorType.JOIN.value: _props(
        stateful=1.0, keyed=1.0, fan_in=1.0, amplification=1.0, cost="heavy"
    ),
    OperatorType.WINDOW_JOIN.value: _props(
        stateful=1.0, windowed=1.0, keyed=1.0, fan_in=1.0, amplification=1.0, cost="extreme"
    ),
    OperatorType.AGGREGATE.value: _props(
        stateful=1.0, keyed=1.0, amplification=0.0, cost="moderate"
    ),
    OperatorType.WINDOW_AGGREGATE.value: _props(
        stateful=1.0, windowed=1.0, keyed=1.0, amplification=0.0, cost="heavy"
    ),
}


class OperatorTaxonomy:
    """Registry of operator kinds and their semantic property vectors.

    The taxonomy starts from :data:`BUILTIN_PROPERTIES` and accepts new
    kinds at runtime through :meth:`register` — the §VII path for
    introducing operators unseen at pre-training time without touching the
    trained models.
    """

    def __init__(self, properties: dict[str, OperatorProperties] | None = None) -> None:
        self._properties = dict(BUILTIN_PROPERTIES)
        if properties:
            self._properties.update(properties)

    def __contains__(self, kind: str) -> bool:
        return kind in self._properties

    @property
    def kinds(self) -> list[str]:
        return sorted(self._properties)

    def register(self, kind: str, properties: OperatorProperties) -> None:
        """Add (or redefine) an operator kind.

        Registration is idempotent for identical properties and raises on
        a silent semantic change of an existing kind, which would corrupt
        models trained against the previous definition.
        """
        if not kind:
            raise ValueError("operator kind must be non-empty")
        existing = self._properties.get(kind)
        if existing is not None and existing != properties:
            raise ValueError(
                f"operator kind {kind!r} already registered with different "
                "properties; use a new kind name instead of redefining"
            )
        self._properties[kind] = properties

    def properties_for(self, kind: str) -> OperatorProperties:
        try:
            return self._properties[kind]
        except KeyError:
            raise KeyError(
                f"unknown operator kind {kind!r}; register() it first "
                f"(known kinds: {', '.join(self.kinds)})"
            ) from None

    def vector_for(self, kind: str) -> np.ndarray:
        return self.properties_for(kind).vector()

    def similarity(self, kind_a: str, kind_b: str) -> float:
        """Cosine similarity of two kinds' property vectors (in [0, 1])."""
        a = self.vector_for(kind_a)
        b = self.vector_for(kind_b)
        norm = float(np.linalg.norm(a) * np.linalg.norm(b))
        if norm == 0.0:
            return 1.0 if kind_a == kind_b else 0.0
        return float(np.dot(a, b) / norm)

    def nearest_known(self, kind: str, among: list[str] | None = None) -> str:
        """The behaviourally closest kind to ``kind`` among ``among``.

        Used for analysis and for explaining transfer: an unseen kind's
        predictions will look most like its nearest neighbour's.
        """
        candidates = [k for k in (among or self.kinds) if k != kind]
        if not candidates:
            raise ValueError("no candidate kinds to compare against")
        target = self.vector_for(kind)
        return min(
            candidates,
            key=lambda other: float(np.linalg.norm(self.vector_for(other) - target)),
        )


class SemanticFeatureEncoder(FeatureEncoder):
    """Feature encoder using semantic property vectors for operator kinds.

    Identical to :class:`~repro.dataflow.features.FeatureEncoder` except
    that the operator-type one-hot block (first ``len(OperatorType)``
    entries) is replaced by the taxonomy's :data:`PROPERTY_DIMENSION`-wide
    property vector.  The remaining blocks are produced by the parent
    class, so the two encoders stay in lock-step as Table I evolves.
    """

    def __init__(self, taxonomy: OperatorTaxonomy | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.taxonomy = taxonomy or OperatorTaxonomy()

    @property
    def dimension(self) -> int:
        one_hot_block = len(self._OPERATOR_TYPES)
        return super().dimension - one_hot_block + PROPERTY_DIMENSION

    def encode_operator(self, spec: OperatorSpec, source_rate: float = 0.0) -> np.ndarray:
        base = super().encode_operator(spec, source_rate)
        one_hot_block = len(self._OPERATOR_TYPES)
        semantic = self.taxonomy.vector_for(spec.structural_label())
        return np.concatenate([semantic, base[one_hot_block:]])


def property_distance_matrix(taxonomy: OperatorTaxonomy) -> tuple[np.ndarray, list[str]]:
    """Pairwise Euclidean distances between all registered kinds.

    Returns the symmetric distance matrix and the kind order — handy for
    inspecting the semantic layout (e.g. confirming ``flat_map`` sits next
    to ``map`` and far from ``window_join``).
    """
    kinds = taxonomy.kinds
    vectors = np.stack([taxonomy.vector_for(kind) for kind in kinds])
    deltas = vectors[:, None, :] - vectors[None, :, :]
    return np.sqrt((deltas**2).sum(axis=2)), kinds


def interpolate_properties(
    taxonomy: OperatorTaxonomy,
    weights: dict[str, float],
) -> OperatorProperties:
    """Blend known kinds into a new property vector.

    A convenience for registering operators that behave "like 70% map,
    30% aggregate": the blended vector is a convex combination, which keeps
    every field in [0, 1].
    """
    if not weights:
        raise ValueError("weights must name at least one kind")
    total = sum(weights.values())
    if total <= 0 or any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative and sum to > 0")
    blended = np.zeros(PROPERTY_DIMENSION)
    for kind, weight in weights.items():
        blended += (weight / total) * taxonomy.vector_for(kind)
    field_names = list(OperatorProperties(1, 1, 0, 0, 0, 0, 0.5, 0).as_dict())
    values = dict(zip(field_names, np.clip(blended, 0.0, 1.0)))
    return OperatorProperties(**values)


def embedding_generalisation_gap(
    one_hot_scores: np.ndarray,
    semantic_scores: np.ndarray,
    labels: np.ndarray,
) -> dict[str, float]:
    """Compare encoders on held-out-operator predictions.

    Scores are bottleneck probabilities for operators of a kind absent
    from pre-training; labels are Algorithm 1 ground truth.  Reports the
    binary cross-entropy of each encoder and the gap (positive = semantic
    encoder better), which the unseen-operator example prints.
    """
    if not (len(one_hot_scores) == len(semantic_scores) == len(labels)):
        raise ValueError("score and label arrays must have equal length")
    if len(labels) == 0:
        raise ValueError("need at least one held-out prediction")

    def bce(scores: np.ndarray) -> float:
        clipped = np.clip(scores, 1e-9, 1 - 1e-9)
        return float(
            -np.mean(labels * np.log(clipped) + (1 - labels) * np.log(1 - clipped))
        )

    one_hot_loss = bce(np.asarray(one_hot_scores, dtype=np.float64))
    semantic_loss = bce(np.asarray(semantic_scores, dtype=np.float64))
    return {
        "one_hot_bce": one_hot_loss,
        "semantic_bce": semantic_loss,
        "gap": one_hot_loss - semantic_loss,
        "n_heldout": float(len(labels)),
    }


def log_odds(probability: float) -> float:
    """Numerically safe logit, used by diagnostics in this module's tests."""
    clipped = min(max(probability, 1e-9), 1 - 1e-9)
    return math.log(clipped / (1 - clipped))
