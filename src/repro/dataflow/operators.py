"""Streaming operator taxonomy and static features (paper Table I).

An :class:`OperatorSpec` carries

* the *static* features of Table I (operator type, window configuration,
  join/aggregate key classes, tuple widths, tuple data type), which the
  paper treats as transferable, context-independent inputs to the GNN; and
* *ground-truth* execution parameters (selectivity, cost multiplier) that
  only the engine simulator reads.  Tuners and learned models never see
  these directly — they are the simulator's hidden truth, standing in for
  the physical behaviour of a real Flink/Timely operator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class OperatorType(enum.Enum):
    """Logical operator kinds appearing in Nexmark and PQP queries."""

    SOURCE = "source"
    MAP = "map"
    FLAT_MAP = "flat_map"
    FILTER = "filter"
    JOIN = "join"                       # incremental (record-at-a-time) join
    WINDOW_JOIN = "window_join"
    AGGREGATE = "aggregate"             # running (unwindowed) aggregate
    WINDOW_AGGREGATE = "window_aggregate"
    SINK = "sink"


class WindowType(enum.Enum):
    """Window shifting strategy (Table I: tumbling / sliding)."""

    NONE = "none"
    TUMBLING = "tumbling"
    SLIDING = "sliding"


class WindowPolicy(enum.Enum):
    """Windowing strategy (Table I: count-based / time-based)."""

    NONE = "none"
    COUNT = "count"
    TIME = "time"


class KeyClass(enum.Enum):
    """Data type of a join or aggregation key (Table I)."""

    NONE = "none"
    INT = "int"
    LONG = "long"
    STRING = "string"


class AggregateFunction(enum.Enum):
    """Aggregation function (Table I: e.g. min, avg)."""

    NONE = "none"
    MIN = "min"
    MAX = "max"
    AVG = "avg"
    SUM = "sum"
    COUNT = "count"


class DataType(enum.Enum):
    """Type of tuple flowing on the operator's output (Table I)."""

    GENERIC = "generic"
    BID = "bid"
    AUCTION = "auction"
    PERSON = "person"
    JOINED = "joined"
    AGGREGATED = "aggregated"


# Operator types that carry window configuration.
WINDOWED_TYPES = frozenset({OperatorType.WINDOW_JOIN, OperatorType.WINDOW_AGGREGATE})

# Operator types that carry aggregation configuration.
AGGREGATING_TYPES = frozenset({OperatorType.AGGREGATE, OperatorType.WINDOW_AGGREGATE})

# Operator types that carry a join key.
JOINING_TYPES = frozenset({OperatorType.JOIN, OperatorType.WINDOW_JOIN})


@dataclass(frozen=True)
class OperatorSpec:
    """A logical dataflow operator with Table I static features.

    Parameters
    ----------
    name:
        Unique operator name within its dataflow.
    op_type:
        Kind of computation (see :class:`OperatorType`).
    window_type / window_policy / window_length / sliding_length:
        Window configuration; only meaningful for windowed operator types.
    join_key_class:
        Join key data type for (window) joins.
    aggregate_class / aggregate_key_class / aggregate_function:
        Aggregation configuration for (window) aggregates.
    tuple_width_in / tuple_width_out:
        Input/output tuple widths in bytes.
    tuple_data_type:
        Type of tuple the operator emits.
    selectivity:
        Ground-truth output/input rate ratio (hidden from tuners).  Sources
        use 1.0; filters < 1.0; flat-maps may exceed 1.0; window aggregates
        compress heavily.
    cost_factor:
        Ground-truth multiplier on the per-record CPU cost of the operator
        type (hidden from tuners); models e.g. an expensive UDF.
    """

    name: str
    op_type: OperatorType
    window_type: WindowType = WindowType.NONE
    window_policy: WindowPolicy = WindowPolicy.NONE
    window_length: float = 0.0
    sliding_length: float = 0.0
    join_key_class: KeyClass = KeyClass.NONE
    aggregate_class: KeyClass = KeyClass.NONE
    aggregate_key_class: KeyClass = KeyClass.NONE
    aggregate_function: AggregateFunction = AggregateFunction.NONE
    tuple_width_in: float = 32.0
    tuple_width_out: float = 32.0
    tuple_data_type: DataType = DataType.GENERIC
    selectivity: float = 1.0
    cost_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operator name must be non-empty")
        if self.selectivity < 0:
            raise ValueError(f"{self.name}: selectivity must be >= 0")
        if self.cost_factor <= 0:
            raise ValueError(f"{self.name}: cost_factor must be > 0")
        if self.window_type is not WindowType.NONE and self.window_length <= 0:
            raise ValueError(f"{self.name}: windowed operator needs window_length > 0")
        if self.window_type is WindowType.SLIDING and self.sliding_length <= 0:
            raise ValueError(f"{self.name}: sliding window needs sliding_length > 0")
        if self.op_type in AGGREGATING_TYPES and self.aggregate_function is AggregateFunction.NONE:
            raise ValueError(f"{self.name}: aggregating operator needs aggregate_function")

    @property
    def is_source(self) -> bool:
        return self.op_type is OperatorType.SOURCE

    @property
    def is_sink(self) -> bool:
        return self.op_type is OperatorType.SINK

    @property
    def is_windowed(self) -> bool:
        return self.op_type in WINDOWED_TYPES

    @property
    def is_stateful(self) -> bool:
        """Stateful operators keep per-key state (joins, aggregates, windows)."""
        return self.op_type in (JOINING_TYPES | AGGREGATING_TYPES)

    def renamed(self, name: str) -> "OperatorSpec":
        """Return a copy of this spec under a different name."""
        return replace(self, name=name)

    def structural_label(self) -> str:
        """Label used by GED node-substitution costs (operator type)."""
        return self.op_type.value

    def to_dict(self) -> dict:
        """Serialise to plain types (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "op_type": self.op_type.value,
            "window_type": self.window_type.value,
            "window_policy": self.window_policy.value,
            "window_length": self.window_length,
            "sliding_length": self.sliding_length,
            "join_key_class": self.join_key_class.value,
            "aggregate_class": self.aggregate_class.value,
            "aggregate_key_class": self.aggregate_key_class.value,
            "aggregate_function": self.aggregate_function.value,
            "tuple_width_in": self.tuple_width_in,
            "tuple_width_out": self.tuple_width_out,
            "tuple_data_type": self.tuple_data_type.value,
            "selectivity": self.selectivity,
            "cost_factor": self.cost_factor,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OperatorSpec":
        return cls(
            name=data["name"],
            op_type=OperatorType(data["op_type"]),
            window_type=WindowType(data["window_type"]),
            window_policy=WindowPolicy(data["window_policy"]),
            window_length=data["window_length"],
            sliding_length=data["sliding_length"],
            join_key_class=KeyClass(data["join_key_class"]),
            aggregate_class=KeyClass(data["aggregate_class"]),
            aggregate_key_class=KeyClass(data["aggregate_key_class"]),
            aggregate_function=AggregateFunction(data["aggregate_function"]),
            tuple_width_in=data["tuple_width_in"],
            tuple_width_out=data["tuple_width_out"],
            tuple_data_type=DataType(data["tuple_data_type"]),
            selectivity=data["selectivity"],
            cost_factor=data["cost_factor"],
        )


def source(name: str, data_type: DataType = DataType.GENERIC, width: float = 64.0) -> OperatorSpec:
    """Convenience constructor for a source operator."""
    return OperatorSpec(
        name=name,
        op_type=OperatorType.SOURCE,
        tuple_width_in=width,
        tuple_width_out=width,
        tuple_data_type=data_type,
    )


def sink(name: str, width: float = 32.0) -> OperatorSpec:
    """Convenience constructor for a sink operator."""
    return OperatorSpec(
        name=name,
        op_type=OperatorType.SINK,
        tuple_width_in=width,
        tuple_width_out=width,
    )
