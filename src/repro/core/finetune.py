"""Warm-up dataset construction for the fine-tuned prediction layer.

Algorithm 2, line 3: before online tuning begins, a warm-up training set T
is assembled by sampling dataflows from the target job's cluster, encoding
their operators with the frozen cluster encoder (**parallelism-agnostic**
path — parallelism enters M_f as an explicit feature, not through FUSE),
and pairing each labelled operator's ``[h_v, p_v]`` with its Algorithm 1
label.  Online feedback (ΔT) extends the same dataset between iterations.

Beyond the recorded labels, T is densified by **distilling the pre-trained
GNN**: for sampled cluster dataflows the parallelism-aware GNN is probed
over a grid of candidate degrees and its predictions become soft training
rows for M_f.  This is the mechanism that actually transfers the encoder's
"coarse correlation between parallelism degree and operator-level
performance" (paper §I, S1) into the lightweight monotone layer — raw
histories alone contain only the operating points that happened to be
deployed, far too sparse along the parallelism axis for a threshold model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.history import ExecutionRecord
from repro.core.pretrain import PretrainedStreamTune
from repro.utils.rng import seeded_rng


@dataclass
class PredictionDataset:
    """Training rows for M_f: features ``[h_v, p_norm]`` and 0/1 labels."""

    features: list[np.ndarray] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.labels)

    def append(self, feature_row: np.ndarray, label: int) -> None:
        if label not in (0, 1):
            raise ValueError("M_f rows must carry definite 0/1 labels")
        self.features.append(np.asarray(feature_row, dtype=np.float64))
        self.labels.append(label)

    def extend(self, other: "PredictionDataset") -> None:
        self.features.extend(other.features)
        self.labels.extend(other.labels)

    def matrices(self) -> tuple[np.ndarray, np.ndarray]:
        if not self.labels:
            raise ValueError("dataset is empty")
        return np.stack(self.features), np.asarray(self.labels, dtype=np.int64)

    @property
    def n_positive(self) -> int:
        return int(sum(self.labels))

    def has_both_classes(self) -> bool:
        return 0 < self.n_positive < len(self.labels)


#: Geometric grid of parallelism degrees probed during distillation.
DISTILLATION_GRID = (1, 2, 3, 4, 6, 8, 11, 16, 22, 32, 45, 60)


def shared_structure_key(flow, cluster: int, source_rates: dict[str, float]) -> tuple:
    """The cross-query cache identity of rate-conditioned pure values.

    Distilled operating points and parallelism-agnostic embeddings are pure
    functions of ``(cluster encoder, dataflow structure, source rates)`` —
    the query's *name* never enters the computation.  Keying the cache
    sections on the full-fidelity :meth:`LogicalDataflow.tuning_signature`
    (instead of ``flow.name``) lets every campaign over a structurally
    identical dataflow share one entry.  Source rates are canonicalised to
    topological operator indices so renamed-but-identical flows agree on
    the key; rates for operators the flow does not contain cannot affect
    the encoding and are excluded.
    """
    order = flow.topological_order()
    index = {name: position for position, name in enumerate(order)}
    rates = tuple(
        sorted(
            (index[name], float(rate))
            for name, rate in source_rates.items()
            if name in index
        )
    )
    return (cluster, flow.tuning_signature(), rates)


def cluster_history_signature(
    pretrained: PretrainedStreamTune, cluster: int
) -> str:
    """A content hash identifying everything a warm-up dataset depends on.

    :func:`build_warmup_dataset` is a pure function of the cluster's
    frozen encoder, its member histories, and the feature encoding — not
    of the pretrain-run-local cluster *id*.  Hashing the encoder's weight
    bytes together with every member record's content (flow structure,
    rates, parallelisms, labels) yields a key under which two pretrained
    artifacts collide exactly when their warm-up datasets would be
    bit-identical — so warm-up caches (and their snapshots) are shareable
    across runs, like PR 5 made ``distill``/``embed`` entries.

    Signatures are memoized on the pretrained artifact; the encoder is
    frozen after pretraining, so the hash never goes stale.
    """
    memo = getattr(pretrained, "_cluster_signatures", None)
    if memo is None:
        memo = {}
        pretrained._cluster_signatures = memo
    cached = memo.get(cluster)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for parameter in pretrained.encoders[cluster].parameters():
        digest.update(np.ascontiguousarray(parameter.value).tobytes())
    digest.update(str(pretrained.max_parallelism).encode())
    for record in pretrained.records_by_cluster[cluster]:
        digest.update(record.flow.tuning_signature().encode())
        for name, rate in sorted(record.source_rates.items()):
            digest.update(f"{name}={rate!r};".encode())
        for name, degree in sorted(record.parallelisms.items()):
            digest.update(f"{name}:{degree};".encode())
        for name, label in sorted(record.labels.items()):
            digest.update(f"{name}>{label};".encode())
    signature = digest.hexdigest()
    memo[cluster] = signature
    return signature


def warmup_cache_key(
    pretrained: PretrainedStreamTune,
    cluster: int,
    max_rows: int,
    seed: int | None,
    batch_encode: bool,
) -> tuple:
    """The cross-run cache identity of one warm-up dataset.

    Keyed by the cluster's *history signature* rather than its id: ids
    are an artifact of one pretraining run's cluster ordering, while the
    signature names the actual inputs of the computation.
    """
    return (
        cluster_history_signature(pretrained, cluster),
        max_rows,
        seed,
        batch_encode,
    )


def agnostic_embeddings(
    pretrained: PretrainedStreamTune,
    encoder,
    flow,
    source_rates: dict[str, float],
) -> np.ndarray:
    """Parallelism-agnostic operator embeddings under ``source_rates``.

    One row per operator in topological order (``flow.topological_order()``
    — the same order :func:`~repro.dataflow.features.FeatureEncoder.
    encode_dataflow` emits), so callers recover the name mapping from the
    flow without re-encoding.
    """
    from repro.gnn.data import build_sample  # local import to avoid a cycle

    placeholder = dict.fromkeys(flow.operator_names, 1)
    sample = build_sample(
        flow,
        source_rates,
        placeholder,
        labels={},
        encoder=pretrained.feature_encoder,
        max_parallelism=pretrained.max_parallelism,
    )
    return encoder.encode(sample, parallelism_aware=False)


def distill_rows(
    pretrained: PretrainedStreamTune,
    encoder,
    flow,
    source_rates: dict[str, float],
    grid: tuple[int, ...] = DISTILLATION_GRID,
) -> PredictionDataset:
    """Probe the GNN across a parallelism grid and emit soft-label rows.

    With FUSE applied after encoding (the default architecture), a node's
    parallelism-aware prediction depends only on its *own* degree, so one
    forward pass with a uniform degree ``p`` yields every operator's
    prediction at ``p``.
    """
    from repro.gnn.data import build_sample  # local import to avoid a cycle

    placeholder = dict.fromkeys(flow.operator_names, 1)
    sample = build_sample(
        flow,
        source_rates,
        placeholder,
        labels={},
        encoder=pretrained.feature_encoder,
        max_parallelism=pretrained.max_parallelism,
    )
    embeddings = encoder.encode(sample, parallelism_aware=False)
    degrees = [d for d in grid if d <= pretrained.max_parallelism]
    p_norms = np.array(
        [
            pretrained.feature_encoder.normalize_parallelism(
                degree, pretrained.max_parallelism
            )
            for degree in degrees
        ]
    )
    # One encoder pass for the whole degree grid (fuse-after-readout makes
    # the message-passing state degree-independent).
    probability_grid = encoder.predict_probabilities_grid(sample, p_norms)
    rows = PredictionDataset()
    for grid_index, p_norm in enumerate(p_norms):
        probabilities = probability_grid[grid_index]
        for index in range(sample.n_nodes):
            rows.append(
                np.concatenate([embeddings[index], [p_norm]]),
                int(probabilities[index] > 0.5),
            )
    return rows


def rows_from_record(
    pretrained: PretrainedStreamTune,
    encoder,
    record: ExecutionRecord,
) -> PredictionDataset:
    """Encode one record into M_f training rows (labelled operators only)."""
    sample = pretrained.sample_for(record)
    embeddings = encoder.encode(sample, parallelism_aware=False)
    rows = PredictionDataset()
    for index, name in enumerate(sample.node_names):
        label = record.labels.get(name, -1)
        if label < 0:
            continue
        p_norm = pretrained.feature_encoder.normalize_parallelism(
            record.parallelisms[name], pretrained.max_parallelism
        )
        rows.append(np.concatenate([embeddings[index], [p_norm]]), label)
    return rows


def build_warmup_dataset(
    pretrained: PretrainedStreamTune,
    cluster: int,
    max_rows: int = 600,
    n_distill_records: int = 8,
    seed: int | None = None,
    batch_encode: bool = False,
) -> PredictionDataset:
    """Algorithm 2, line 3: sample the cluster's history into T.

    Recorded rows (real Algorithm 1 labels) come first; GNN-distilled rows
    over the parallelism grid of up to ``n_distill_records`` sampled
    dataflows densify the parallelism axis.

    ``batch_encode=True`` embeds the selected records through the
    block-diagonal batching of :mod:`repro.gnn.batch` (one encoder pass per
    batch instead of one per record).  Row selection and ordering are
    unchanged; values are numerically equivalent but may differ from the
    per-record path in the last floating-point ulp.
    """
    if not 0 <= cluster < pretrained.n_clusters:
        raise ValueError(f"cluster {cluster} out of range")
    rng = seeded_rng(seed)
    encoder = pretrained.encoders[cluster]
    members = list(pretrained.records_by_cluster[cluster])
    order = rng.permutation(len(members))
    dataset = PredictionDataset()
    if batch_encode:
        from repro.gnn.batch import encode_samples

        chosen: list[ExecutionRecord] = []
        n_rows = 0
        for index in order:
            record = members[index]
            chosen.append(record)
            n_rows += sum(1 for label in record.labels.values() if label >= 0)
            if n_rows >= max_rows:
                break
        samples = [pretrained.sample_for(record) for record in chosen]
        embedded = encode_samples(encoder, samples, parallelism_aware=False)
        for record, sample, embeddings in zip(chosen, samples, embedded):
            for node_index, name in enumerate(sample.node_names):
                label = record.labels.get(name, -1)
                if label < 0:
                    continue
                p_norm = pretrained.feature_encoder.normalize_parallelism(
                    record.parallelisms[name], pretrained.max_parallelism
                )
                dataset.append(
                    np.concatenate([embeddings[node_index], [p_norm]]), label
                )
    else:
        for index in order:
            dataset.extend(rows_from_record(pretrained, encoder, members[index]))
            if len(dataset) >= max_rows:
                break
    for index in order[:n_distill_records]:
        record = members[index]
        dataset.extend(
            distill_rows(pretrained, encoder, record.flow, record.source_rates)
        )
    return dataset
