"""StreamTune online tuning — paper Algorithm 2.

Per tuning process (one source-rate change):

1. assign the target DAG to its nearest cluster and retrieve the frozen
   pre-trained encoder (done once per query in :meth:`prepare`);
2. build the warm-up dataset T from the cluster's history (once per query);
3. iterate: fit the monotone prediction layer M_f on T; for every operator
   in topological order compute its parallelism-agnostic embedding h_v and
   binary-search the minimum degree M_f deems non-bottleneck; redeploy;
   collect Algorithm 1 labels from the new measurement into T;
4. stop when no backpressure is observed and the recommendation no longer
   changes.

Only M_f is refit between iterations — the GNN encoder never moves, which
is the paper's "model updates restricted to a lightweight prediction
layer".  T persists across rate changes of the same query, so feedback
keeps accumulating over a tuning campaign exactly like the dataflow
execution histories it extends.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.api import ParallelismTuner, TuningResult, TuningStep
from repro.core.finetune import (
    PredictionDataset,
    agnostic_embeddings,
    build_warmup_dataset,
    distill_rows,
    shared_structure_key,
    warmup_cache_key,
)
from repro.core.labeling import label_operators
from repro.core.pretrain import PretrainedStreamTune
from repro.engines.base import Deployment, EngineCluster
from repro.models import make_prediction_model
from repro.models.search import min_feasible_parallelism
from repro.utils.rng import seeded_rng, stable_hash
from repro.utils.timer import Timer
from repro.workloads.query import StreamingQuery


@dataclass
class QueryTuningState:
    """Everything the tuner accumulates for one query.

    Grouping the per-query mutable state into one object (instead of three
    parallel instance dictionaries) is what makes :meth:`StreamTuneTuner.tune`
    reentrant: a tuning process touches only its own state record plus local
    variables, so one tuner instance can drive interleaved campaigns for
    *different* queries from multiple threads.  Concurrent processes for the
    *same* query still require external serialisation (feedback is an
    append-log shared across that query's rate changes by design).
    """

    job_key: str
    cluster: int
    dataset: PredictionDataset
    feedback: PredictionDataset = field(default_factory=PredictionDataset)
    #: Previous SVM solution for this query; warm-starts the next refit on
    #: the deduplicated fitting path (same seed => same RFF feature space).
    warm_theta: np.ndarray | None = None


class StreamTuneTuner(ParallelismTuner):
    """The paper's system: pre-trained encoder + monotone fine-tuned layer."""

    name = "StreamTune"

    def __init__(
        self,
        engine: EngineCluster,
        pretrained: PretrainedStreamTune,
        model_kind: str = "svm",
        max_iterations: int = 8,
        warmup_rows: int = 300,
        probability_threshold: float | None = 0.35,
        max_class_imbalance: float = 3.0,
        seed: int = 17,
        caches=None,
        fit_dedup: bool = False,
        batch_encode: bool = False,
    ) -> None:
        """``probability_threshold`` below 0.5 biases recommendations
        conservatively: an operator must be *clearly* safe before its degree
        is accepted, which is what keeps StreamTune backpressure-free at the
        edge of the pre-training rate support (Table III).

        ``caches`` is an optional lookaside store with a single method
        ``get_or_compute(kind, key, builder)`` (see
        :class:`repro.service.cache.TuningCacheSet`); the tuner consults it
        for warm-up datasets, distilled operating points and
        parallelism-agnostic embeddings, all of which are pure functions of
        their key.  ``fit_dedup=True`` collapses the (heavily duplicated)
        training multiset into weighted unique rows before fitting, for
        model kinds whose ``fit`` accepts ``sample_weight`` (others fall
        back to the duplicated-row fit); the optimised objective is
        mathematically identical.  ``batch_encode=True`` builds warm-up
        datasets through the block-diagonal batched GNN inference of
        :mod:`repro.gnn.batch` (one encoder pass per record batch).
        """
        super().__init__(engine)
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.pretrained = pretrained
        self.model_kind = model_kind
        self.max_iterations = max_iterations
        self.warmup_rows = warmup_rows
        self.probability_threshold = probability_threshold
        self.max_class_imbalance = max_class_imbalance
        self.operating_point_weight = 4
        self.observed_weight = 10
        self.seed = seed
        self.caches = caches
        self.fit_dedup = fit_dedup
        self.batch_encode = batch_encode
        self._dedup_supported: bool | None = None
        self._states: dict[str, QueryTuningState] = {}
        self._state_lock = threading.Lock()
        self._model_seed = seed

    # ------------------------------------------------------------------
    # per-query state (compatibility views kept for callers and tests)
    # ------------------------------------------------------------------

    @property
    def _cluster_of(self) -> dict[str, int]:
        return {job: state.cluster for job, state in self._states.items()}

    @property
    def _dataset_of(self) -> dict[str, PredictionDataset]:
        return {job: state.dataset for job, state in self._states.items()}

    @property
    def _feedback_of(self) -> dict[str, PredictionDataset]:
        return {job: state.feedback for job, state in self._states.items()}

    def _cached(self, kind: str, key: tuple, builder):
        if self.caches is None:
            return builder()
        return self.caches.get_or_compute(kind, key, builder)

    def _weighted_fit_supported(self) -> bool:
        """Whether ``model_kind`` can consume weighted unique rows.

        Model kinds without ``sample_weight`` support (the xgboost /
        isotonic / nn ablation layers) silently fall back to the
        duplicated-row fit, so ``fit_dedup=True`` is always safe to pass.
        """
        if self._dedup_supported is None:
            probe = make_prediction_model(self.model_kind, seed=self.seed)
            self._dedup_supported = _supports_sample_weight(probe)
        return self._dedup_supported

    def _build_state(self, flow) -> QueryTuningState:
        cluster = self._cached(
            "assign",
            (flow.structural_signature(),),
            lambda: self.pretrained.assign_cluster(flow),
        )
        # Warm-up datasets are keyed by the cluster's history signature
        # (not its pretrain-run-local id), so any run over the same
        # histories — including one warmed from a snapshot — shares the
        # entry, the same cross-run contract distill/embed keys carry.
        dataset = self._cached(
            "warmup",
            warmup_cache_key(
                self.pretrained,
                cluster,
                self.warmup_rows,
                self.seed,
                self.batch_encode,
            ),
            lambda: build_warmup_dataset(
                self.pretrained,
                cluster,
                max_rows=self.warmup_rows,
                seed=self.seed,
                batch_encode=self.batch_encode,
            ),
        )
        return QueryTuningState(job_key=flow.name, cluster=cluster, dataset=dataset)

    # ------------------------------------------------------------------
    # Algorithm 2, lines 1-3 (per query)
    # ------------------------------------------------------------------

    def prepare(self, query: StreamingQuery) -> None:
        self._state_for(query.flow)

    def _state_for(self, flow) -> QueryTuningState:
        job = flow.name
        with self._state_lock:
            state = self._states.get(job)
        if state is not None:
            return state
        state = self._build_state(flow)
        with self._state_lock:
            # Another thread may have prepared the same query concurrently;
            # keep the first-registered state so feedback stays in one log.
            return self._states.setdefault(job, state)

    # ------------------------------------------------------------------
    # Algorithm 2, lines 4-12 (per tuning process)
    # ------------------------------------------------------------------

    def tune(self, deployment: Deployment, target_rates: dict[str, float]) -> TuningResult:
        self.engine.set_source_rates(deployment, target_rates)
        state = self._state_for(deployment.flow)
        cluster, dataset = state.cluster, state.dataset
        encoder = self.pretrained.encoders[cluster]
        flow = deployment.flow
        result = TuningResult(query_name=flow.name, tuner_name=self.name)

        feedback = state.feedback
        # Per-process feasibility floors: when a redeployment backpressures,
        # the measured served rate bounds the bottleneck's true per-instance
        # ability, so degrees below ceil(p * demand/served) are provably
        # infeasible for this demand — recommending them again would only
        # replay the backpressure (the paper's loop assumes the refit model
        # moves enough; with small T the floor guarantees it).
        floors: dict[str, int] = {}
        previous_recommendation: dict[str, int] | None = None
        for _ in range(self.max_iterations):
            with Timer() as timer:
                # M_f = the GNN's knowledge, monotonized and locally
                # corrected: per-operator distillation at the target rates
                # carries the encoder's threshold surface, the job's own
                # Algorithm 1 feedback dominates on conflict, and the
                # cluster warm-up acts as light regularisation.
                # Distilled rows and embeddings are keyed by the dataflow's
                # full-fidelity structure signature (not its name), so every
                # campaign over a structurally identical query shares one
                # cached entry — the cross-query reuse of "learning from the
                # past" applied to the service's own computations.
                shared_key = shared_structure_key(flow, cluster, target_rates)
                operating_point = self._cached(
                    "distill",
                    shared_key,
                    lambda: distill_rows(
                        self.pretrained, encoder, flow, target_rates
                    ),
                )
                # Once real feedback exists for this job it must be able to
                # overrule the distilled prior, so the prior's weight drops.
                prior_weight = (
                    self.operating_point_weight if not feedback else
                    max(1, self.operating_point_weight // 2)
                )
                if self.fit_dedup and self._weighted_fit_supported():
                    model = self._fit_model_weighted(
                        operating_point, feedback, dataset, prior_weight, state
                    )
                else:
                    training_set = PredictionDataset()
                    for _repeat in range(prior_weight):
                        training_set.extend(operating_point)
                    for _repeat in range(self.observed_weight):
                        training_set.extend(feedback)
                    training_set.extend(dataset)
                    model = self._fit_model(training_set, job_key=flow.name)
                # The cached value is the embedding matrix alone (topological
                # row order); the name mapping is recovered from the flow, so
                # renamed-but-identical queries can share the entry.
                order = flow.topological_order()
                embeddings = self._cached(
                    "embed",
                    shared_key,
                    lambda: agnostic_embeddings(
                        self.pretrained, encoder, flow, target_rates
                    ),
                )
                recommendation = self._recommend(model, embeddings, order)
                for name, floor in floors.items():
                    recommendation[name] = max(recommendation[name], floor)
                recommendation = self.stabilize(
                    recommendation,
                    deployment.parallelisms,
                    has_backpressure=previous_recommendation is None
                    or result.steps[-1].backpressure_after,
                )
            if (
                previous_recommendation is not None
                and recommendation == previous_recommendation
            ):
                # The model did not move despite the new feedback; escalate
                # the operators still labelled as bottlenecks so the loop
                # cannot stall under persistent backpressure.
                recommendation = self._escalate(recommendation, dataset, deployment)
            changed = self.apply(deployment, recommendation)
            telemetry = self.engine.measure(deployment)
            labels = label_operators(flow, telemetry, self.engine.name)
            self._absorb_feedback(
                feedback, embeddings, order, deployment.parallelisms, labels
            )
            if telemetry.has_backpressure:
                self._raise_floors(floors, deployment, telemetry, labels, target_rates)
            result.steps.append(
                TuningStep(
                    parallelisms=dict(deployment.parallelisms),
                    reconfigured=changed,
                    backpressure_after=telemetry.has_backpressure,
                    recommendation_seconds=timer.elapsed,
                    mean_cpu_utilisation=self.observe_cpu(telemetry),
                )
            )
            if not telemetry.has_backpressure and (
                not changed or recommendation == previous_recommendation
            ):
                result.converged = True
                break
            previous_recommendation = recommendation
        return result

    # ------------------------------------------------------------------
    # pieces of the loop
    # ------------------------------------------------------------------

    def _fit_model(self, dataset: PredictionDataset, job_key: str = ""):
        """Line 5: fit the monotone M_f to the current T.

        Execution histories label far more operators 0 than 1 (most random
        deployments over-provision most operators), so the minority class
        is oversampled to at most ``max_class_imbalance``:1 before fitting —
        otherwise every model family collapses to "never a bottleneck".
        """
        if not dataset.has_both_classes():
            return _ConstantModel(1.0 if dataset.n_positive else 0.0)
        features, labels = dataset.matrices()
        features, labels = self._rebalance(features, labels, job_key)
        model = make_prediction_model(
            self.model_kind, seed=self.seed + stable_hash(job_key, 1000)
        )
        return model.fit(features, labels)

    def _fit_model_weighted(
        self,
        operating_point: PredictionDataset,
        feedback: PredictionDataset,
        warmup: PredictionDataset,
        prior_weight: int,
        state: QueryTuningState,
    ):
        """Deduplicated fit: weighted unique rows instead of a row multiset.

        The training multiset duplicates rows *by construction* — the
        distilled prior is replicated ``prior_weight`` times, feedback
        ``observed_weight`` times, and the warm-up history repeats rows for
        every redeployment of the same query — so accumulating multiplicity
        weights over unique rows (hash of the raw bytes, insertion-ordered
        and therefore deterministic) lets the optimiser touch a fraction of
        the rows per iteration while minimising the same weighted objective.
        Class rebalancing becomes a fractional reweighting of the minority
        class (rather than sampled row repetition), and successive refits of
        the same query warm-start L-BFGS from the previous solution — every
        step is a pure function of the accumulated state, so results are
        reproducible run-to-run and independent of campaign interleaving.
        """
        index_of: dict[tuple[bytes, int], int] = {}
        rows: list[np.ndarray] = []
        labels: list[int] = []
        weights: list[float] = []

        def absorb(dataset: PredictionDataset, multiplicity: float) -> None:
            for row, label in zip(dataset.features, dataset.labels):
                key = (row.tobytes(), label)
                position = index_of.get(key)
                if position is None:
                    index_of[key] = len(rows)
                    rows.append(row)
                    labels.append(label)
                    weights.append(multiplicity)
                else:
                    weights[position] += multiplicity

        absorb(operating_point, float(prior_weight))
        absorb(feedback, float(self.observed_weight))
        absorb(warmup, 1.0)
        if not rows:
            raise ValueError("cannot fit on an empty dataset")
        label_array = np.asarray(labels, dtype=np.int64)
        weight_array = np.asarray(weights, dtype=np.float64)
        positive = label_array == 1
        w_pos = float(weight_array[positive].sum())
        w_neg = float(weight_array[~positive].sum())
        if w_pos == 0.0 or w_neg == 0.0:
            return _ConstantModel(1.0 if w_pos else 0.0)
        # Fractional minority reweighting replaces the sampled oversampling
        # of the duplicate-row path: scale the minority class up to the
        # allowed imbalance ratio exactly (no RNG needed).
        major, minor = max(w_pos, w_neg), min(w_pos, w_neg)
        if major / minor > self.max_class_imbalance:
            factor = (major / self.max_class_imbalance) / minor
            minority = positive if w_pos < w_neg else ~positive
            weight_array = np.where(minority, weight_array * factor, weight_array)
        model = make_prediction_model(
            self.model_kind, seed=self.seed + stable_hash(state.job_key, 1000)
        )
        kwargs = {}
        if state.warm_theta is not None and _supports_theta0(model):
            kwargs["theta0"] = state.warm_theta
        if hasattr(model, "platt_tol"):
            model.platt_tol = 1e-7
        if hasattr(model, "solver_options"):
            model.solver_options = {"ftol": 1e-7, "gtol": 1e-4}
        fitted = model.fit(
            np.stack(rows), label_array, sample_weight=weight_array, **kwargs
        )
        state.warm_theta = getattr(fitted, "solution_theta", None)
        return fitted

    def _rebalance(self, features: np.ndarray, labels: np.ndarray, job_key: str):
        """Deterministic minority oversampling (same rows, same model)."""
        positive = labels == 1
        n_pos, n_neg = int(positive.sum()), int((~positive).sum())
        if n_pos == 0 or n_neg == 0:
            return features, labels
        minority = positive if n_pos < n_neg else ~positive
        ratio = max(n_pos, n_neg) / min(n_pos, n_neg)
        if ratio <= self.max_class_imbalance:
            return features, labels
        n_extra = int(max(n_pos, n_neg) / self.max_class_imbalance) - min(n_pos, n_neg)
        pool = np.nonzero(minority)[0]
        rng = seeded_rng(self.seed + stable_hash(job_key, 100_000))
        picks = rng.choice(pool, size=n_extra, replace=True)
        return (
            np.concatenate([features, features[picks]]),
            np.concatenate([labels, labels[picks]]),
        )

    def _recommend(self, model, embeddings, order) -> dict[str, int]:
        """Lines 6-9: minimum feasible degree per operator, topologically."""
        normalize = lambda p: self.pretrained.feature_encoder.normalize_parallelism(  # noqa: E731
            p, self.pretrained.max_parallelism
        )
        recommendation: dict[str, int] = {}
        for index, name in enumerate(order):
            recommendation[name] = min_feasible_parallelism(
                model,
                embeddings[index],
                self.engine.max_parallelism,
                normalize,
                probability_threshold=self.probability_threshold,
            )
        return recommendation

    def _absorb_feedback(self, dataset, embeddings, order, parallelisms, labels) -> None:
        """Lines 10-11: ΔT from the redeployed job's labels."""
        for index, name in enumerate(order):
            label = labels.get(name, -1)
            if label < 0:
                continue
            p_norm = self.pretrained.feature_encoder.normalize_parallelism(
                parallelisms[name], self.pretrained.max_parallelism
            )
            dataset.append(np.concatenate([embeddings[index], [p_norm]]), label)

    def _raise_floors(
        self,
        floors: dict[str, int],
        deployment: Deployment,
        telemetry,
        labels: dict[str, int],
        target_rates: dict[str, float],
    ) -> None:
        """Convert an observed backpressure into per-operator lower bounds.

        The bottleneck served ``served_in`` records/s with ``p`` instances,
        so sustaining the propagated target demand needs at least
        ``ceil(p * demand / served)`` instances.  Applied to operators
        Algorithm 1 labelled 1 (falling back to the hottest operator when
        the overload sits below the engine's detection threshold).
        """
        from repro.baselines._demand import propagate_target_demand

        demand = propagate_target_demand(deployment, telemetry, target_rates)
        flagged = [name for name, label in labels.items() if label == 1]
        if not flagged:
            flagged = [
                max(
                    telemetry.operators.values(),
                    key=lambda metrics: metrics.cpu_load,
                ).name
            ]
        for name in flagged:
            served = telemetry[name].input_rate
            current = deployment.parallelisms[name]
            if served <= 0 or demand.get(name, 0.0) <= 0:
                bound = current + 1
            else:
                bound = max(
                    current + 1,
                    int(np.ceil(current * demand[name] / served)),
                )
            floors[name] = max(floors.get(name, 1), self.clamp(bound))

    def _escalate(
        self,
        recommendation: dict[str, int],
        dataset: PredictionDataset,
        deployment: Deployment,
    ) -> dict[str, int]:
        """Stall-breaker: bump degrees of operators still labelled 1.

        The paper's loop relies on the refit M_f moving after ΔT; with very
        small T the model can be inert, so operators whose most recent
        feedback was "bottleneck at the recommended degree" get a
        multiplicative raise instead of an identical re-recommendation.
        """
        telemetry = self.engine.measure(deployment)
        labels = label_operators(deployment.flow, telemetry, self.engine.name)
        bumped = dict(recommendation)
        flagged = [name for name, label in labels.items() if label == 1]
        if not flagged and telemetry.has_backpressure:
            # Mild overload below the engine's detection threshold:
            # Algorithm 1 cannot attribute it (all labels -1), so fall back
            # to nudging the hottest operator — otherwise the loop livelocks
            # on an invisible bottleneck.
            flagged = [
                max(
                    telemetry.operators.values(),
                    key=lambda metrics: metrics.cpu_load,
                ).name
            ]
        for name in flagged:
            base = max(bumped[name], deployment.parallelisms[name])
            bumped[name] = self.clamp(max(base + 1, int(base * 1.5)))
        return bumped


def _supports_sample_weight(model) -> bool:
    try:
        return "sample_weight" in inspect.signature(model.fit).parameters
    except (TypeError, ValueError):
        return False


def _supports_theta0(model) -> bool:
    try:
        return "theta0" in inspect.signature(model.fit).parameters
    except (TypeError, ValueError):
        return False


class _ConstantModel:
    """Degenerate M_f when T has a single class (trivially monotone)."""

    def __init__(self, probability: float) -> None:
        self._probability = probability

    def fit(self, features, labels):
        return self

    def predict_proba(self, features) -> np.ndarray:
        return np.full(len(features), self._probability)

    def predict(self, features) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)
