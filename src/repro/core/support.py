"""Pre-training support diagnostics (operational tooling).

EXPERIMENTS.md's known-deviation #2 observes that StreamTune's rare
residual backpressure events are *first visits to rates at the edge of
the pre-training support*: the encoder extrapolates there, and the first
recommendation can land one notch low before Algorithm 2's feedback
floor corrects it.

This module makes that boundary observable before deploying a
recommendation.  :class:`SupportProfile` summarises, per cluster, the
operating region the encoder actually saw — source-rate range per
first-level operator position and parallelism range — and
:meth:`SupportProfile.check` classifies a target operating point as
inside, near-boundary, or extrapolating, with the margin per dimension.

Operators of StreamTune deployments use it as a pre-flight check: an
``extrapolating`` verdict says "trust the first recommendation less —
expect one corrective iteration", which is exactly the observed system
behaviour.  The tuner itself is intentionally left unchanged (its
feedback loop already recovers); this is monitoring, not control.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.history import ExecutionRecord
from repro.core.pretrain import PretrainedStreamTune

#: Fraction of the observed range treated as "near boundary".
BOUNDARY_BAND = 0.1

#: Verdict labels, ordered by increasing risk.
VERDICTS = ("inside", "near-boundary", "extrapolating")


@dataclass(frozen=True)
class DimensionSupport:
    """Observed range of one operating dimension in a cluster's history."""

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"{self.name}: high must be >= low")

    @property
    def width(self) -> float:
        return self.high - self.low

    def verdict(self, value: float) -> str:
        """Classify ``value`` against this dimension's support."""
        if value < self.low or value > self.high:
            return "extrapolating"
        band = BOUNDARY_BAND * self.width
        if band == 0.0:
            # Degenerate support (a single observed value): anything that
            # matched exactly is "inside" but fragile — flag the boundary.
            return "near-boundary"
        if value < self.low + band or value > self.high - band:
            return "near-boundary"
        return "inside"

    def margin(self, value: float) -> float:
        """Distance to the nearest boundary, negative when outside."""
        return min(value - self.low, self.high - value)


@dataclass(frozen=True)
class SupportVerdict:
    """Outcome of checking one operating point against a profile."""

    verdict: str                         # worst dimension's classification
    per_dimension: dict[str, str]
    margins: dict[str, float]

    @property
    def is_safe(self) -> bool:
        return self.verdict == "inside"


class SupportProfile:
    """Per-cluster operating region extracted from pre-training records."""

    def __init__(self, rate_support: DimensionSupport, parallelism_support: DimensionSupport) -> None:
        self.rate_support = rate_support
        self.parallelism_support = parallelism_support

    @classmethod
    def from_records(cls, records: list[ExecutionRecord]) -> "SupportProfile":
        """Profile the total-source-rate and parallelism ranges seen."""
        if not records:
            raise ValueError("cannot profile an empty record set")
        total_rates = [sum(record.source_rates.values()) for record in records]
        degrees = [
            degree
            for record in records
            for degree in record.parallelisms.values()
        ]
        return cls(
            rate_support=DimensionSupport(
                "total_source_rate", min(total_rates), max(total_rates)
            ),
            parallelism_support=DimensionSupport(
                "parallelism", float(min(degrees)), float(max(degrees))
            ),
        )

    def check(
        self,
        source_rates: dict[str, float],
        parallelisms: dict[str, int] | None = None,
    ) -> SupportVerdict:
        """Classify a target operating point against this profile.

        ``parallelisms`` is optional: before the first recommendation only
        the rates are known.
        """
        per_dimension: dict[str, str] = {}
        margins: dict[str, float] = {}

        total_rate = sum(source_rates.values())
        per_dimension["total_source_rate"] = self.rate_support.verdict(total_rate)
        margins["total_source_rate"] = self.rate_support.margin(total_rate)

        if parallelisms:
            worst_degree_verdict = "inside"
            worst_margin = float("inf")
            for degree in parallelisms.values():
                verdict = self.parallelism_support.verdict(float(degree))
                if VERDICTS.index(verdict) > VERDICTS.index(worst_degree_verdict):
                    worst_degree_verdict = verdict
                worst_margin = min(
                    worst_margin, self.parallelism_support.margin(float(degree))
                )
            per_dimension["parallelism"] = worst_degree_verdict
            margins["parallelism"] = worst_margin

        overall = max(per_dimension.values(), key=VERDICTS.index)
        return SupportVerdict(
            verdict=overall, per_dimension=per_dimension, margins=margins
        )


def cluster_support_profiles(
    pretrained: PretrainedStreamTune,
) -> list[SupportProfile]:
    """One :class:`SupportProfile` per pre-trained cluster."""
    return [
        SupportProfile.from_records(records)
        for records in pretrained.records_by_cluster
    ]


def preflight_check(
    pretrained: PretrainedStreamTune,
    flow,
    source_rates: dict[str, float],
) -> SupportVerdict:
    """Pre-flight support check for a target job's operating point.

    Assigns the job to its cluster (Algorithm 2, line 1) and checks the
    requested rates against that cluster's observed support.
    """
    cluster = pretrained.assign_cluster(flow)
    profiles = cluster_support_profiles(pretrained)
    return profiles[cluster].check(source_rates)
