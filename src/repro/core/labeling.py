"""Operator-level bottleneck identification — paper Algorithm 1.

Labels every operator of a measured dataflow as

* ``1``  — bottleneck (its processing ability is insufficient),
* ``0``  — provably not a bottleneck at its current degree,
* ``-1`` — unlabelled (backpressure distorted its input rate, so its
  sufficiency cannot be judged).

Flink path (the literal Algorithm 1):

1. no job-level backpressure -> everything is 0;
2. otherwise find the *deepest* operators under backpressure (no downstream
   operator also under backpressure); their direct downstream operators are
   labelled by CPU load against the threshold T (the paper's example uses
   60%); everything else stays unlabelled.

Timely path (§V-B): Timely has no backpressure flags — its 85% input/output
rate rule identifies bottleneck operators *directly*.  Flagged operators
are labelled 1.  Operators upstream of (or unrelated to) every flagged
operator processed their full offered rate without being flagged, so they
are labelled 0; operators downstream of a flagged one saw throttled input
and stay unlabelled — the same cascading-effect reasoning Algorithm 1
encodes for Flink.
"""

from __future__ import annotations

from repro.dataflow.graph import LogicalDataflow
from repro.engines.metrics import JobTelemetry

#: Paper §IV-A example: "CPU load exceeding 60%" marks a bottleneck.
CPU_THRESHOLD = 0.60


def label_operators_flink(
    flow: LogicalDataflow,
    telemetry: JobTelemetry,
    cpu_threshold: float = CPU_THRESHOLD,
) -> dict[str, int]:
    """Algorithm 1, verbatim."""
    labels = dict.fromkeys(flow.operator_names, -1)          # line 1
    if not telemetry.has_backpressure:                       # lines 2-6
        return dict.fromkeys(flow.operator_names, 0)

    under_bp = {
        name for name in flow.operator_names if telemetry[name].is_backpressured
    }
    deepest = [                                              # line 7
        name
        for name in under_bp
        if not (flow.descendants(name) & under_bp)
    ]
    for name in deepest:                                     # lines 8-16
        for downstream in flow.downstream(name):
            if telemetry[downstream].cpu_load > cpu_threshold:
                labels[downstream] = 1
            else:
                labels[downstream] = 0
    return labels


def label_operators_timely(
    flow: LogicalDataflow,
    telemetry: JobTelemetry,
) -> dict[str, int]:
    """Rate-based labelling for engines without backpressure (§V-B)."""
    if not telemetry.has_backpressure:
        return dict.fromkeys(flow.operator_names, 0)

    flagged = {
        name for name in flow.operator_names if telemetry[name].is_backpressured
    }
    labels: dict[str, int] = {}
    distorted: set[str] = set()
    for name in flagged:
        distorted |= flow.descendants(name)
    for name in flow.operator_names:
        if name in flagged:
            labels[name] = 1
        elif name in distorted:
            labels[name] = -1
        else:
            labels[name] = 0
    return labels


def label_operators(
    flow: LogicalDataflow,
    telemetry: JobTelemetry,
    engine_name: str,
    cpu_threshold: float = CPU_THRESHOLD,
) -> dict[str, int]:
    """Dispatch to the engine-appropriate labelling strategy."""
    if engine_name == "timely":
        return label_operators_timely(flow, telemetry)
    return label_operators_flink(flow, telemetry, cpu_threshold=cpu_threshold)
