"""Offline pre-training (paper §III, §IV-A, §IV-C).

Pipeline: cluster the history's dataflow DAGs with GED k-means, then train
one GNN-based bottleneck encoder per cluster on the labelled records of
that cluster.  The result — :class:`PretrainedStreamTune` — is what the
online phase consumes: cluster assignment for a target job (Algorithm 2,
line 1) and the frozen per-cluster encoder (line 2).

The §VII "Limited Pre-training Dataset" fallback is supported by passing
``n_clusters=1``: clustering degenerates to a single global encoder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clustering.elbow import choose_k_elbow
from repro.clustering.kmeans import ClusteringResult, GEDKMeans
from repro.core.history import ExecutionRecord
from repro.dataflow.features import FeatureEncoder
from repro.dataflow.graph import LogicalDataflow
from repro.gnn.data import GraphSample, build_sample
from repro.gnn.model import BottleneckGNN, EncoderConfig
from repro.gnn.train import TrainingReport, train_bottleneck_gnn


@dataclass
class PretrainedStreamTune:
    """Everything the online fine-tuning phase retrieves."""

    clustering: ClusteringResult
    encoders: list[BottleneckGNN]
    records_by_cluster: list[list[ExecutionRecord]]
    reports: list[TrainingReport]
    feature_encoder: FeatureEncoder
    max_parallelism: int

    @property
    def n_clusters(self) -> int:
        return self.clustering.n_clusters

    def assign_cluster(self, flow: LogicalDataflow) -> int:
        """Algorithm 2, line 1: nearest cluster by GED to the centers."""
        return self.clustering.predict(flow)

    def encoder_for(self, flow: LogicalDataflow) -> tuple[int, BottleneckGNN]:
        """Algorithm 2, lines 1-2: cluster id and its pre-trained encoder."""
        cluster = self.assign_cluster(flow)
        return cluster, self.encoders[cluster]

    def sample_for(self, record: ExecutionRecord) -> GraphSample:
        """GNN-ready form of a history record under this model's encoding."""
        return build_sample(
            record.flow,
            record.source_rates,
            record.parallelisms,
            record.labels,
            encoder=self.feature_encoder,
            max_parallelism=self.max_parallelism,
        )


def pretrain(
    records: list[ExecutionRecord],
    max_parallelism: int,
    n_clusters: int | None = None,
    k_max: int = 6,
    tau: float = 5.0,
    encoder_hidden: int = 32,
    n_message_passing: int = 2,
    epochs: int = 40,
    seed: int = 7,
    feature_encoder: FeatureEncoder | None = None,
    fuse_per_step: bool = False,
) -> PretrainedStreamTune:
    """Cluster the history and pre-train one encoder per cluster.

    ``n_clusters=None`` selects k by the elbow method (§V-A); pass an
    explicit value to pin it (1 = the §VII global-encoder bypass).
    ``fuse_per_step=True`` injects parallelism at every message-passing
    step (the literal Eq. 3 reading) instead of once after the readout —
    the FUSE-placement ablation of DESIGN.md §5b.
    """
    if not records:
        raise ValueError("cannot pre-train on an empty history")
    feature_encoder = feature_encoder or FeatureEncoder()

    flows = [record.flow for record in records]
    if n_clusters is None:
        n_clusters, _ = choose_k_elbow(flows, k_max=k_max, tau=tau, seed=seed)
    clustering = GEDKMeans(n_clusters, tau=tau, seed=seed).fit(flows)

    encoders: list[BottleneckGNN] = []
    reports: list[TrainingReport] = []
    records_by_cluster: list[list[ExecutionRecord]] = []
    for cluster in range(clustering.n_clusters):
        members = [records[i] for i in clustering.members(cluster)]
        records_by_cluster.append(members)
        samples = [
            build_sample(
                record.flow,
                record.source_rates,
                record.parallelisms,
                record.labels,
                encoder=feature_encoder,
                max_parallelism=max_parallelism,
            )
            for record in members
        ]
        labelled = [s for s in samples if s.n_labelled > 0]
        if not labelled:
            raise ValueError(
                f"cluster {cluster} has no labelled records; "
                "generate a larger history"
            )
        config = EncoderConfig(
            input_dim=labelled[0].features.shape[1],
            hidden_dim=encoder_hidden,
            n_message_passing=n_message_passing,
            fuse_per_step=fuse_per_step,
            seed=seed + cluster,
        )
        model, report = train_bottleneck_gnn(
            labelled, config=config, epochs=epochs, seed=seed + cluster
        )
        encoders.append(model)
        reports.append(report)

    return PretrainedStreamTune(
        clustering=clustering,
        encoders=encoders,
        records_by_cluster=records_by_cluster,
        reports=reports,
        feature_encoder=feature_encoder,
        max_parallelism=max_parallelism,
    )
