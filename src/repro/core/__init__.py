"""StreamTune core: the paper's primary contribution.

* :mod:`repro.core.labeling` — Algorithm 1 bottleneck identification,
* :mod:`repro.core.history` — execution-history records and generation,
* :mod:`repro.core.pretrain` — GED clustering + per-cluster GNN encoders,
* :mod:`repro.core.finetune` — warm-up datasets for the prediction layer,
* :mod:`repro.core.tuner` — Algorithm 2 online parallelism tuning,
* :mod:`repro.core.support` — pre-training support (operating-region)
  diagnostics for deployment pre-flight checks.
"""

from repro.core.labeling import (
    CPU_THRESHOLD,
    label_operators,
    label_operators_flink,
    label_operators_timely,
)
from repro.core.history import ExecutionRecord, HistoryGenerator
from repro.core.pretrain import PretrainedStreamTune, pretrain
from repro.core.finetune import PredictionDataset, build_warmup_dataset
from repro.core.support import (
    SupportProfile,
    SupportVerdict,
    cluster_support_profiles,
    preflight_check,
)
from repro.core.tuner import StreamTuneTuner
from repro.core.persistence import (
    load_history,
    load_pretrained,
    save_history,
    save_pretrained,
)

__all__ = [
    "CPU_THRESHOLD",
    "ExecutionRecord",
    "HistoryGenerator",
    "PredictionDataset",
    "PretrainedStreamTune",
    "StreamTuneTuner",
    "SupportProfile",
    "SupportVerdict",
    "build_warmup_dataset",
    "cluster_support_profiles",
    "label_operators",
    "label_operators_flink",
    "label_operators_timely",
    "load_history",
    "load_pretrained",
    "preflight_check",
    "pretrain",
    "save_history",
    "save_pretrained",
]
