"""Dataflow execution histories (paper §II-A, §V-A "Pre-training Setup").

An :class:`ExecutionRecord` is one historical run: the logical DAG, the
source rates, the deployed parallelism degrees, the Algorithm 1 bottleneck
labels, and the job-level telemetry summary.  A long-running platform
accumulates these from production; here :class:`HistoryGenerator`
synthesises them exactly the way the paper builds its pre-training dataset:

* queries drawn from the Nexmark + PQP corpus (whose node-count
  distribution is Fig. 5),
* source rates uniform in (1 Wu, 10 Wu) — deliberately off-grid so tuning
  rates (integer multiples) never coincide with training rates,
* parallelism degrees uniform in [1, 60],
* labels from Algorithm 1 applied to the measured deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.labeling import label_operators
from repro.dataflow.graph import LogicalDataflow
from repro.engines.base import EngineCluster
from repro.utils.rng import seeded_rng
from repro.workloads.query import StreamingQuery

#: §V-A: "we assigned random values from [1, 60]" for parallelism degrees.
HISTORY_PARALLELISM_RANGE = (1, 60)

#: §V-A: "random values between (1Wu, 10Wu)" for source rates.
HISTORY_RATE_MULTIPLIER_RANGE = (1.0, 10.0)


@dataclass(frozen=True)
class ExecutionRecord:
    """One historical dataflow execution with bottleneck labels."""

    flow: LogicalDataflow
    source_rates: dict[str, float]
    parallelisms: dict[str, int]
    labels: dict[str, int]
    engine_name: str
    has_backpressure: bool
    job_latency_seconds: float
    query_name: str = ""
    cpu_loads: dict[str, float] = field(default_factory=dict)

    @property
    def n_labelled(self) -> int:
        return sum(1 for label in self.labels.values() if label >= 0)

    @property
    def n_bottlenecks(self) -> int:
        return sum(1 for label in self.labels.values() if label == 1)

    def to_dict(self) -> dict:
        return {
            "flow": self.flow.to_dict(),
            "source_rates": dict(self.source_rates),
            "parallelisms": dict(self.parallelisms),
            "labels": dict(self.labels),
            "engine_name": self.engine_name,
            "has_backpressure": self.has_backpressure,
            "job_latency_seconds": self.job_latency_seconds,
            "query_name": self.query_name,
            "cpu_loads": dict(self.cpu_loads),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionRecord":
        return cls(
            flow=LogicalDataflow.from_dict(data["flow"]),
            source_rates=data["source_rates"],
            parallelisms=data["parallelisms"],
            labels=data["labels"],
            engine_name=data["engine_name"],
            has_backpressure=data["has_backpressure"],
            job_latency_seconds=data["job_latency_seconds"],
            query_name=data.get("query_name", ""),
            cpu_loads=data.get("cpu_loads", {}),
        )


class HistoryGenerator:
    """Synthesises execution histories by running queries on an engine."""

    def __init__(
        self,
        engine: EngineCluster,
        parallelism_range: tuple[int, int] = HISTORY_PARALLELISM_RANGE,
        rate_multiplier_range: tuple[float, float] = HISTORY_RATE_MULTIPLIER_RANGE,
        seed: int | None = None,
    ) -> None:
        low, high = parallelism_range
        if not 1 <= low <= high:
            raise ValueError("invalid parallelism_range")
        self.engine = engine
        self.parallelism_range = (low, min(high, engine.max_parallelism))
        self.rate_multiplier_range = rate_multiplier_range
        self._rng = seeded_rng(seed)

    def run_once(self, query: StreamingQuery) -> ExecutionRecord:
        """Deploy ``query`` at a random configuration and label it."""
        multiplier = float(
            self._rng.uniform(*self.rate_multiplier_range)
        )
        source_rates = query.rates_at(multiplier)
        low, high = self.parallelism_range
        parallelisms = {
            name: int(self._rng.integers(low, high + 1))
            for name in query.flow.operator_names
        }
        deployment = self.engine.deploy(query.flow, parallelisms, source_rates)
        telemetry = self.engine.measure(deployment)
        labels = label_operators(query.flow, telemetry, self.engine.name)
        record = ExecutionRecord(
            flow=query.flow,
            source_rates=source_rates,
            parallelisms=parallelisms,
            labels=labels,
            engine_name=self.engine.name,
            has_backpressure=telemetry.has_backpressure,
            job_latency_seconds=telemetry.job_latency_seconds,
            query_name=query.name,
            cpu_loads={
                name: metrics.cpu_load
                for name, metrics in telemetry.operators.items()
            },
        )
        self.engine.stop(deployment)
        return record

    def generate(
        self,
        queries: list[StreamingQuery],
        n_records: int,
    ) -> list[ExecutionRecord]:
        """``n_records`` runs with queries drawn uniformly from the corpus."""
        if not queries:
            raise ValueError("need at least one query")
        if n_records < 1:
            raise ValueError("n_records must be >= 1")
        records = []
        for _ in range(n_records):
            query = queries[int(self._rng.integers(len(queries)))]
            records.append(self.run_once(query))
        return records
