"""Persistence for histories and pre-trained StreamTune artifacts.

Pre-training is the expensive phase (§V-G, Fig. 9b), so a production
deployment trains once and serves many tuning sessions.  This module
saves/loads:

* execution histories — JSON lines (one record per line, append-friendly),
* pre-trained artifacts — a directory with the clustering metadata (JSON)
  and every encoder's weights (``.npz``).

Loaded artifacts are bit-identical in behaviour: encoder weights, cluster
centers and per-cluster record sets round-trip exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.clustering.kmeans import ClusteringResult
from repro.core.history import ExecutionRecord
from repro.core.pretrain import PretrainedStreamTune
from repro.dataflow.embeddings import (
    BUILTIN_PROPERTIES,
    OperatorProperties,
    OperatorTaxonomy,
    SemanticFeatureEncoder,
)
from repro.dataflow.features import FeatureEncoder
from repro.dataflow.graph import LogicalDataflow
from repro.ged.search import GEDCache
from repro.gnn.model import BottleneckGNN, EncoderConfig
from repro.gnn.train import TrainingReport


# ----------------------------------------------------------------------
# feature encoders
# ----------------------------------------------------------------------

def encoder_to_dict(encoder: FeatureEncoder) -> dict:
    """Serialise a feature encoder (kind, ceilings, custom taxonomy)."""
    meta = {
        "kind": "one-hot",
        "max_window_length": encoder.max_window_length,
        "max_tuple_width": encoder.max_tuple_width,
        "max_source_rate": encoder.max_source_rate,
    }
    if isinstance(encoder, SemanticFeatureEncoder):
        meta["kind"] = "semantic"
        meta["custom_kinds"] = {
            kind: encoder.taxonomy.properties_for(kind).as_dict()
            for kind in encoder.taxonomy.kinds
            if kind not in BUILTIN_PROPERTIES
        }
    return meta


def encoder_from_dict(meta: dict) -> FeatureEncoder:
    """Restore a feature encoder saved by :func:`encoder_to_dict`."""
    ceilings = {
        "max_window_length": meta["max_window_length"],
        "max_tuple_width": meta["max_tuple_width"],
        "max_source_rate": meta["max_source_rate"],
    }
    if meta["kind"] == "one-hot":
        return FeatureEncoder(**ceilings)
    if meta["kind"] == "semantic":
        taxonomy = OperatorTaxonomy()
        for kind, properties in meta.get("custom_kinds", {}).items():
            taxonomy.register(kind, OperatorProperties(**properties))
        return SemanticFeatureEncoder(taxonomy=taxonomy, **ceilings)
    raise ValueError(f"unknown feature-encoder kind {meta['kind']!r}")


# ----------------------------------------------------------------------
# histories
# ----------------------------------------------------------------------

def save_history(records: list[ExecutionRecord], path: str | Path) -> None:
    """Write records as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")


def load_history(path: str | Path) -> list[ExecutionRecord]:
    """Read records written by :func:`save_history`."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(ExecutionRecord.from_dict(json.loads(line)))
    return records


# ----------------------------------------------------------------------
# GNN weights
# ----------------------------------------------------------------------

def _model_arrays(model: BottleneckGNN) -> dict[str, np.ndarray]:
    return {f"p{i}": parameter.value for i, parameter in enumerate(model.parameters())}


def save_model(model: BottleneckGNN, path: str | Path) -> None:
    """Serialise a bottleneck GNN (config as JSON metadata + weights)."""
    path = Path(path)
    config = model.config
    meta = {
        "input_dim": config.input_dim,
        "hidden_dim": config.hidden_dim,
        "n_message_passing": config.n_message_passing,
        "head_hidden_dim": config.head_hidden_dim,
        "jumping_knowledge": config.jumping_knowledge,
        "fuse_per_step": config.fuse_per_step,
        "seed": config.seed,
    }
    np.savez(
        path,
        __config__=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        **_model_arrays(model),
    )


def load_model(path: str | Path) -> BottleneckGNN:
    """Restore a bottleneck GNN saved by :func:`save_model`."""
    data = np.load(Path(path))
    meta = json.loads(bytes(data["__config__"]).decode("utf-8"))
    model = BottleneckGNN(EncoderConfig(**meta))
    parameters = model.parameters()
    for i, parameter in enumerate(parameters):
        stored = data[f"p{i}"]
        if stored.shape != parameter.value.shape:
            raise ValueError(
                f"weight {i} shape mismatch: stored {stored.shape}, "
                f"expected {parameter.value.shape}"
            )
        parameter.value[...] = stored
    return model


# ----------------------------------------------------------------------
# full pre-trained artifacts
# ----------------------------------------------------------------------

def save_pretrained(artifact: PretrainedStreamTune, directory: str | Path) -> None:
    """Write a pre-trained StreamTune artifact into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    meta = {
        "n_clusters": artifact.n_clusters,
        "max_parallelism": artifact.max_parallelism,
        "center_graphs": [g.to_dict() for g in artifact.clustering.center_graphs],
        "assignments": artifact.clustering.assignments,
        "inertia": artifact.clustering.inertia,
        "accuracies": [report.final_accuracy for report in artifact.reports],
        "feature_encoder": encoder_to_dict(artifact.feature_encoder),
    }
    (directory / "meta.json").write_text(json.dumps(meta), encoding="utf-8")

    for cluster in range(artifact.n_clusters):
        save_model(artifact.encoders[cluster], directory / f"encoder_{cluster}.npz")
        save_history(
            artifact.records_by_cluster[cluster],
            directory / f"records_{cluster}.jsonl",
        )


def load_pretrained(directory: str | Path) -> PretrainedStreamTune:
    """Restore an artifact saved by :func:`save_pretrained`."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text(encoding="utf-8"))

    encoders = []
    records_by_cluster = []
    reports = []
    for cluster in range(meta["n_clusters"]):
        encoders.append(load_model(directory / f"encoder_{cluster}.npz"))
        records_by_cluster.append(load_history(directory / f"records_{cluster}.jsonl"))
        report = TrainingReport()
        report.accuracies.append(meta["accuracies"][cluster])
        report.losses.append(float("nan"))
        reports.append(report)

    all_records = [record for cluster in records_by_cluster for record in cluster]
    clustering = ClusteringResult(
        graphs=[record.flow for record in all_records],
        assignments=[
            cluster
            for cluster, records in enumerate(records_by_cluster)
            for _ in records
        ],
        center_graphs=[
            LogicalDataflow.from_dict(data) for data in meta["center_graphs"]
        ],
        inertia=meta["inertia"],
        n_iterations=0,
        cache=GEDCache(),
    )
    if "feature_encoder" in meta:
        feature_encoder = encoder_from_dict(meta["feature_encoder"])
    else:
        # Artifacts written before encoder metadata existed used one-hot.
        feature_encoder = FeatureEncoder()
    return PretrainedStreamTune(
        clustering=clustering,
        encoders=encoders,
        records_by_cluster=records_by_cluster,
        reports=reports,
        feature_encoder=feature_encoder,
        max_parallelism=meta["max_parallelism"],
    )
