"""StreamTune reproduction — adaptive parallelism tuning for stream
processing systems (ICDE 2025).

Public API quick map — start at :mod:`repro.api`, the declarative front
door:

* declare what to tune            — :class:`repro.api.TuningPlan` (one query),
                                    :class:`repro.api.CampaignPlan` (a fleet);
                                    both round-trip through dicts/JSON/TOML
                                    (:func:`repro.api.load_plan`)
* execute a plan                  — :class:`repro.api.TuningSession` (sync),
                                    :class:`repro.api.AsyncTuningSession` (awaitable)
* extend by name                  — the :data:`repro.api.ENGINES` /
                                    :data:`repro.api.TUNERS` /
                                    :data:`repro.api.WORKLOADS` /
                                    :data:`repro.api.MODELS` registries

The building blocks underneath (importable directly when you need them):

* dataflows / queries             — :mod:`repro.dataflow`, :mod:`repro.workloads`
* simulated engines               — :mod:`repro.engines`
* histories + pre-training        — :mod:`repro.core`
* online tuning methods           — :mod:`repro.core.tuner`, :mod:`repro.baselines`
* concurrent tuning service       — :mod:`repro.service`
* paper experiments               — :mod:`repro.experiments`

See ``examples/quickstart.py`` for the 60-second tour.

Importing the legacy classes from this top-level package
(``from repro import StreamTuneTuner``) still works but emits a
:class:`DeprecationWarning`; import from the canonical module instead.
"""

from repro.api import (
    AsyncTuningSession,
    CampaignPlan,
    EventBus,
    SessionResult,
    SweepPlan,
    SweepResult,
    TuningPlan,
    TuningSession,
    load_plan,
    save_plan,
)

__version__ = "2.1.0"

#: Legacy top-level re-exports, kept working through a lazy deprecation
#: shim: name -> (module, attribute).
_DEPRECATED_EXPORTS = {
    "ClusterTopology": ("repro.engines", "ClusterTopology"),
    "ContTuneTuner": ("repro.baselines", "ContTuneTuner"),
    "DS2Tuner": ("repro.baselines", "DS2Tuner"),
    "ExecutionRecord": ("repro.core", "ExecutionRecord"),
    "FlinkCluster": ("repro.engines", "FlinkCluster"),
    "HistoryGenerator": ("repro.core", "HistoryGenerator"),
    "LogicalDataflow": ("repro.dataflow", "LogicalDataflow"),
    "OperatorSpec": ("repro.dataflow", "OperatorSpec"),
    "OperatorTaxonomy": ("repro.dataflow.embeddings", "OperatorTaxonomy"),
    "OperatorType": ("repro.dataflow", "OperatorType"),
    "OracleTuner": ("repro.baselines", "OracleTuner"),
    "PretrainedStreamTune": ("repro.core", "PretrainedStreamTune"),
    "SchedulingAwareTimely": ("repro.engines", "SchedulingAwareTimely"),
    "SemanticFeatureEncoder": ("repro.dataflow.embeddings", "SemanticFeatureEncoder"),
    "StreamTuneTuner": ("repro.core", "StreamTuneTuner"),
    "TimelyCluster": ("repro.engines", "TimelyCluster"),
    "ZeroTuneTuner": ("repro.baselines", "ZeroTuneTuner"),
    "nexmark_queries": ("repro.workloads", "nexmark_queries"),
    "pqp_query_set": ("repro.workloads", "pqp_query_set"),
    "pretrain": ("repro.core", "pretrain"),
}

__all__ = [
    "AsyncTuningSession",
    "CampaignPlan",
    "EventBus",
    "SessionResult",
    "SweepPlan",
    "SweepResult",
    "TuningPlan",
    "TuningSession",
    "__version__",
    "load_plan",
    "save_plan",
    *sorted(_DEPRECATED_EXPORTS),
]


def __getattr__(name: str):
    """Resolve legacy top-level names lazily, with a deprecation nudge."""
    try:
        module_name, attribute = _DEPRECATED_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    import warnings

    warnings.warn(
        f"importing {name} from 'repro' is deprecated; import it from "
        f"'{module_name}' (or drive the pipeline through 'repro.api')",
        DeprecationWarning,
        stacklevel=2,
    )
    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value       # cache: warn once per process per name
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_DEPRECATED_EXPORTS))
