"""StreamTune reproduction — adaptive parallelism tuning for stream
processing systems (ICDE 2025).

Public API quick map:

* build dataflows / queries    — :mod:`repro.dataflow`, :mod:`repro.workloads`
* simulated engines            — :class:`repro.engines.FlinkCluster`,
                                 :class:`repro.engines.TimelyCluster`
* histories + pre-training     — :class:`repro.core.HistoryGenerator`,
                                 :func:`repro.core.pretrain`
* online tuning                — :class:`repro.core.StreamTuneTuner` and the
                                 baselines in :mod:`repro.baselines`
* paper experiments            — :mod:`repro.experiments`

See ``examples/quickstart.py`` for the 60-second tour.
"""

from repro.dataflow import LogicalDataflow, OperatorSpec, OperatorType
from repro.dataflow.embeddings import OperatorTaxonomy, SemanticFeatureEncoder
from repro.engines import (
    ClusterTopology,
    FlinkCluster,
    SchedulingAwareTimely,
    TimelyCluster,
)
from repro.core import (
    ExecutionRecord,
    HistoryGenerator,
    PretrainedStreamTune,
    StreamTuneTuner,
    pretrain,
)
from repro.baselines import ContTuneTuner, DS2Tuner, OracleTuner, ZeroTuneTuner
from repro.workloads import nexmark_queries, pqp_query_set

__version__ = "1.0.0"

__all__ = [
    "ClusterTopology",
    "ContTuneTuner",
    "DS2Tuner",
    "ExecutionRecord",
    "FlinkCluster",
    "HistoryGenerator",
    "LogicalDataflow",
    "OperatorSpec",
    "OperatorTaxonomy",
    "OperatorType",
    "OracleTuner",
    "PretrainedStreamTune",
    "SchedulingAwareTimely",
    "SemanticFeatureEncoder",
    "StreamTuneTuner",
    "TimelyCluster",
    "ZeroTuneTuner",
    "__version__",
    "nexmark_queries",
    "pqp_query_set",
    "pretrain",
]
