"""Per-tenant admission control and priority dispatch for the daemon.

The control plane accepts plan submissions from many tenants but
executes them through one long-lived session, so the queue is where
fairness and overload policy live:

* **admission control** — each tenant owns a bounded slice of the queue
  (``max_depth`` jobs); a submission beyond it is rejected *at the front
  door* with :class:`QueueFull` (HTTP 429 upstream), so one chatty
  tenant can slow only itself, never grow the daemon's memory without
  bound;
* **priority ordering** — jobs dispatch highest ``priority`` first, FIFO
  within a priority level (a stable total order: ties break on the
  submission sequence number, so two equal submissions can never swap);
* **draining** — once :meth:`close` is called (graceful shutdown) every
  further ``push`` raises :class:`QueueDraining` (HTTP 503 upstream) and
  ``pop`` returns ``None`` as soon as the queue is empty, letting the
  dispatcher thread exit cleanly while leftover jobs stay queued in the
  manifest for the next ``--resume auto`` start.

The queue is plain ``threading`` — it synchronises the HTTP handler
threads with the single dispatcher thread inside one process.
"""

from __future__ import annotations

import heapq
import itertools
import threading

__all__ = ["QueueDraining", "QueueFull", "TenantQueue"]


class QueueFull(RuntimeError):
    """A tenant's queue slice is at capacity; the submission was refused."""

    def __init__(self, tenant: str, depth: int) -> None:
        self.tenant = tenant
        self.depth = depth
        super().__init__(
            f"tenant {tenant!r} already has {depth} queued job(s) (the "
            "admission limit); retry after some complete"
        )


class QueueDraining(RuntimeError):
    """The daemon is shutting down; no further submissions are admitted."""

    def __init__(self) -> None:
        super().__init__(
            "the daemon is draining (shutdown in progress); resubmit after "
            "it restarts"
        )


class TenantQueue:
    """A bounded, priority-ordered, multi-tenant job queue."""

    def __init__(self, max_depth: int = 16) -> None:
        if not isinstance(max_depth, int) or max_depth < 1:
            raise ValueError(
                f"max_depth must be a positive integer, got {max_depth!r}"
            )
        self.max_depth = max_depth
        self._lock = threading.Condition()
        self._heap: list = []           # (-priority, seq, job)
        self._seq = itertools.count()
        self._depths: dict[str, int] = {}
        self._draining = False

    # -- producers ------------------------------------------------------

    def push(self, job, force: bool = False) -> None:
        """Admit ``job`` (its ``tenant``/``priority`` attributes decide
        placement) or raise :class:`QueueFull`/:class:`QueueDraining`.

        ``force=True`` skips admission (depth limit and draining) — the
        restart-recovery path, which must never drop a manifest-recorded
        job, even when a tenant had over-subscribed before the kill.
        """
        with self._lock:
            if self._draining and not force:
                raise QueueDraining()
            depth = self._depths.get(job.tenant, 0)
            if depth >= self.max_depth and not force:
                raise QueueFull(job.tenant, depth)
            self._depths[job.tenant] = depth + 1
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._lock.notify()

    # -- the dispatcher -------------------------------------------------

    def pop(self, timeout: float | None = None):
        """The next job to run, or ``None`` on timeout / empty-and-draining.

        Blocks up to ``timeout`` seconds (forever when ``None``) for a job
        to arrive.  Once draining, an empty queue returns ``None``
        immediately — the dispatcher's exit signal.
        """
        with self._lock:
            while not self._heap:
                if self._draining:
                    return None
                if not self._lock.wait(timeout=timeout):
                    return None
            _, _, job = heapq.heappop(self._heap)
            depth = self._depths.get(job.tenant, 0)
            if depth <= 1:
                self._depths.pop(job.tenant, None)
            else:
                self._depths[job.tenant] = depth - 1
            return job

    # -- introspection / shutdown --------------------------------------

    def depth(self, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is not None:
                return self._depths.get(tenant, 0)
            return len(self._heap)

    def depths(self) -> dict[str, int]:
        """Queued jobs per tenant (tenants with zero queued are absent)."""
        with self._lock:
            return dict(self._depths)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def close(self) -> list:
        """Start draining: refuse new pushes, return the jobs still queued.

        The returned jobs are **not** removed — the dispatcher may still
        pop them if it keeps running; callers that stop dispatching use
        the list to mark leftovers resumable.
        """
        with self._lock:
            self._draining = True
            self._lock.notify_all()
            return [job for _, _, job in sorted(self._heap)]
