"""Prometheus text exposition for the daemon's ``GET /metrics``.

:func:`render_metrics` is a pure function from a plain snapshot dict to
the Prometheus text format (version 0.0.4) — the daemon gathers the
snapshot under its locks and rendering happens outside them, and the
purity keeps the golden test trivial: fixed snapshot in, exact bytes
out.

The metric families:

* ``repro_jobs_total{state=...}`` — jobs ever seen per lifecycle state
  (a gauge over the job table, so a job moves between labels);
* ``repro_queue_depth{tenant=...}`` / ``repro_queue_depth_total`` —
  currently queued jobs;
* ``repro_tenant_submitted_total{tenant=...}`` — submissions per tenant
  over the manifest's recorded life;
* ``repro_campaigns_finished_total`` / ``repro_campaigns_failed_total``,
  ``repro_steps_total``, ``repro_reconfigurations_total``,
  ``repro_events_total`` — the :class:`~repro.api.events
  .MetricsAggregator` view of everything executed by this process;
* ``repro_cache_hits_total`` / ``repro_cache_misses_total`` /
  ``repro_cache_size`` ``{section=...}`` and
  ``repro_cache_hit_ratio{section=...}`` — the shared cache plane,
  merged across workers via
  :func:`~repro.service.cache.merge_cache_stats`;
* ``repro_uptime_seconds`` — seconds since the daemon started serving.
"""

from __future__ import annotations

__all__ = ["render_metrics"]


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value) -> str:
    """A number in exposition form: integers bare, floats via repr."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Renderer:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value, **labels) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(val)}"'
                for key, val in sorted(labels.items())
            )
            self.lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
        else:
            self.lines.append(f"{name} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_metrics(snapshot: dict) -> str:
    """Render a daemon metrics snapshot as Prometheus text (0.0.4).

    ``snapshot`` keys (all optional; absent ones render as empty/zero):

    - ``jobs``: ``{state: count}`` over the job table;
    - ``queue_depths``: ``{tenant: queued}``;
    - ``tenants_submitted``: ``{tenant: total submissions}``;
    - ``campaigns_finished`` / ``campaigns_failed`` / ``steps`` /
      ``reconfigurations`` / ``events``: process-lifetime counters;
    - ``cache_stats``: ``{section: {hits, misses, size}}`` (the
      ``merge_cache_stats`` shape);
    - ``uptime_seconds``: float.

    Output is deterministic: label sets render sorted.
    """
    out = _Renderer()

    out.family(
        "repro_jobs_total", "gauge",
        "Jobs in the daemon's table, by lifecycle state.",
    )
    jobs = snapshot.get("jobs", {})
    for state in ("queued", "running", "finished", "failed"):
        out.sample("repro_jobs_total", jobs.get(state, 0), state=state)

    out.family(
        "repro_queue_depth", "gauge",
        "Jobs currently queued, per tenant.",
    )
    queue_depths = snapshot.get("queue_depths", {})
    for tenant in sorted(queue_depths):
        out.sample("repro_queue_depth", queue_depths[tenant], tenant=tenant)
    out.family(
        "repro_queue_depth_total", "gauge",
        "Jobs currently queued, all tenants.",
    )
    out.sample("repro_queue_depth_total", sum(queue_depths.values()))

    out.family(
        "repro_tenant_submitted_total", "counter",
        "Plan submissions accepted, per tenant.",
    )
    submitted = snapshot.get("tenants_submitted", {})
    for tenant in sorted(submitted):
        out.sample(
            "repro_tenant_submitted_total", submitted[tenant], tenant=tenant
        )

    for name, key, help_text in (
        ("repro_campaigns_finished_total", "campaigns_finished",
         "Campaigns finished by this daemon process."),
        ("repro_campaigns_failed_total", "campaigns_failed",
         "Campaigns failed in this daemon process."),
        ("repro_steps_total", "steps",
         "Tuning steps executed by this daemon process."),
        ("repro_reconfigurations_total", "reconfigurations",
         "Parallelism reconfigurations applied by this daemon process."),
        ("repro_events_total", "events",
         "Typed events observed by this daemon process."),
    ):
        out.family(name, "counter", help_text)
        out.sample(name, snapshot.get(key, 0))

    cache_stats = snapshot.get("cache_stats", {})
    out.family(
        "repro_cache_hits_total", "counter",
        "Shared cache plane hits, per section.",
    )
    for section in sorted(cache_stats):
        out.sample(
            "repro_cache_hits_total",
            cache_stats[section].get("hits", 0), section=section,
        )
    out.family(
        "repro_cache_misses_total", "counter",
        "Shared cache plane misses, per section.",
    )
    for section in sorted(cache_stats):
        out.sample(
            "repro_cache_misses_total",
            cache_stats[section].get("misses", 0), section=section,
        )
    out.family(
        "repro_cache_size", "gauge",
        "Entries resident in the shared cache plane, per section.",
    )
    for section in sorted(cache_stats):
        out.sample(
            "repro_cache_size",
            cache_stats[section].get("size", 0), section=section,
        )
    out.family(
        "repro_cache_hit_ratio", "gauge",
        "Hits over lookups in the shared cache plane, per section.",
    )
    for section in sorted(cache_stats):
        hits = cache_stats[section].get("hits", 0)
        misses = cache_stats[section].get("misses", 0)
        lookups = hits + misses
        out.sample(
            "repro_cache_hit_ratio",
            (hits / lookups) if lookups else 0.0, section=section,
        )

    out.family(
        "repro_uptime_seconds", "gauge",
        "Seconds since this daemon process started serving.",
    )
    out.sample("repro_uptime_seconds", snapshot.get("uptime_seconds", 0.0))

    return out.text()
