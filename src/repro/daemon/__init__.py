"""The ``repro serve`` control plane: a persistent tuning daemon.

:class:`~repro.daemon.server.TuningDaemon` hosts one long-lived
:class:`~repro.api.session.TuningSession` (shared cache plane, shared
shm arena) behind a stdlib HTTP server; plans arrive over ``POST
/v1/plans``, queue through per-tenant admission control, execute on a
single dispatcher, stream their typed events live, and persist
everything to fsynced JSONL ledgers so ``--resume auto`` survives a
SIGKILL.  :class:`~repro.daemon.client.DaemonClient` is the matching
client (``repro submit`` / ``repro jobs``).
"""

from repro.daemon.client import DaemonClient, DaemonClientError
from repro.daemon.jobs import JOB_STATES, Job, JobStore
from repro.daemon.metrics_endpoint import render_metrics
from repro.daemon.queue import QueueDraining, QueueFull, TenantQueue
from repro.daemon.server import TuningDaemon

__all__ = [
    "DaemonClient",
    "DaemonClientError",
    "JOB_STATES",
    "Job",
    "JobStore",
    "QueueDraining",
    "QueueFull",
    "TenantQueue",
    "TuningDaemon",
    "render_metrics",
]
