"""Jobs and the durable job store behind the ``repro serve`` daemon.

A **job** is one submitted plan travelling through the lifecycle
``queued -> running -> finished | failed``.  Everything a job does is
recorded twice, in the same typed-event currency the rest of the repo
speaks:

* the **manifest** (``manifest.jsonl`` in the store directory) is an
  append-only ledger of :class:`~repro.api.events.JobSubmitted` and
  :class:`~repro.api.events.JobStateChanged` events — the submissions
  themselves (full plan payload included) and every state transition,
  fsynced per line so a killed daemon can reconstruct its job table;
* each job's **ledger** (``<job_id>.jsonl``) is the JSONL event log of
  its execution, written by a per-event-fsynced
  :class:`~repro.api.events.JsonlRecorder` — exactly the format
  ``--record`` produces, so it doubles as the job's
  :class:`~repro.api.resume.ResumeLog`.

:meth:`JobStore.recover` is the restart path (``repro serve --resume
auto``): it replays the manifest, marks jobs whose recorded state is
terminal as replayed (their ledgers serve ``GET /v1/jobs/{id}/events``
bit-identically), and re-queues interrupted jobs with their partial
ledger as the resume source — so the restarted daemon executes exactly
the cells the kill lost.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.api.events import JobStateChanged, JobSubmitted, event_from_dict
from repro.api.plans import plan_from_dict
from repro.api.resume import ResumeLog

__all__ = ["JOB_STATES", "Job", "JobStore", "TERMINAL_STATES"]

#: The lifecycle, in order.  ``failed`` covers both campaign failures
#: (CampaignExecutionError after the fleet drained) and daemon-side
#: errors; a failed job is terminal — resubmit to retry.
JOB_STATES = ("queued", "running", "finished", "failed")
TERMINAL_STATES = frozenset({"finished", "failed"})


class Job:
    """One submitted plan and its live, in-memory execution view.

    ``events`` buffers the job's serialized event lines (identical bytes
    to its on-disk ledger) for ``GET /v1/jobs/{id}/events``;
    ``condition`` wakes followers streaming those lines live.  All
    mutation goes through the owning :class:`JobStore`, under the store
    lock.
    """

    def __init__(
        self,
        job_id: str,
        plan,
        plan_data: dict,
        tenant: str = "default",
        priority: int = 0,
        ledger_path: Path | None = None,
        submitted_at: float = 0.0,
    ) -> None:
        self.id = job_id
        self.plan = plan
        self.plan_data = dict(plan_data)
        self.tenant = tenant
        self.priority = priority
        self.ledger_path = Path(ledger_path) if ledger_path else None
        self.state = "queued"
        self.error = ""
        self.submitted_at = submitted_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: Serialized event lines (no trailing newline), ledger-identical.
        self.events: list[str] = []
        self.condition = threading.Condition()
        #: Set on recovery when the terminal state was replayed from a
        #: previous daemon life rather than executed by this one.
        self.replayed = False
        #: ResumeLog for a recovered, partially executed job (else None).
        self.resume: ResumeLog | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def n_cells(self) -> int:
        return len(self.plan.cell_keys())

    def to_dict(self) -> dict:
        """The job's API view (``GET /v1/jobs/{id}``)."""
        return {
            "job": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "error": self.error,
            "plan_kind": self.plan.kind,
            "n_cells": self.n_cells,
            "n_events": len(self.events),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "ledger": self.ledger_path.name if self.ledger_path else "",
            "replayed": self.replayed,
        }


class JobStore:
    """The daemon's job table, durably mirrored to a manifest ledger."""

    def __init__(self, root: str | Path, *, fsync: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.root / "manifest.jsonl"
        self.fsync = fsync
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._next_id = 1
        self._manifest_seq = 0
        #: Submissions per tenant, over the store's whole recorded life.
        self.submitted_per_tenant: dict[str, int] = {}

    # -- durable manifest append ---------------------------------------

    def _append_manifest(self, event) -> None:
        import dataclasses

        event = dataclasses.replace(event, seq=self._manifest_seq)
        self._manifest_seq += 1
        line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
        with open(self.manifest_path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    # -- the write path -------------------------------------------------

    def submit(
        self, plan, plan_data: dict, tenant: str = "default", priority: int = 0
    ) -> Job:
        """Create a job for an already-validated plan and record it."""
        with self._lock:
            job_id = f"j{self._next_id:06d}"
            self._next_id += 1
            job = Job(
                job_id,
                plan,
                plan_data,
                tenant=tenant,
                priority=priority,
                ledger_path=self.root / f"{job_id}.jsonl",
                submitted_at=time.time(),
            )
            self._jobs[job_id] = job
            self._order.append(job_id)
            self.submitted_per_tenant[tenant] = (
                self.submitted_per_tenant.get(tenant, 0) + 1
            )
            self._append_manifest(JobSubmitted(
                job=job.id,
                tenant=tenant,
                priority=priority,
                plan_kind=plan.kind,
                n_cells=job.n_cells,
                ledger=job.ledger_path.name,
                plan=dict(plan_data),
                submitted_at=job.submitted_at,
            ))
            self._append_manifest(JobStateChanged(
                job=job.id, state="queued", at=job.submitted_at,
            ))
        return job

    def mark(self, job: Job, state: str, error: str = "") -> None:
        """Transition ``job`` (durably) and wake its followers."""
        if state not in JOB_STATES:
            raise ValueError(
                f"state must be one of {JOB_STATES}, got {state!r}"
            )
        now = time.time()
        with self._lock:
            self._append_manifest(JobStateChanged(
                job=job.id, state=state, error=error, at=now,
            ))
        with job.condition:
            job.state = state
            job.error = error
            if state == "running":
                job.started_at = now
            elif state in TERMINAL_STATES:
                job.finished_at = now
            job.condition.notify_all()

    def append_event(self, job: Job, line: str) -> None:
        """Buffer one serialized event line and wake live followers."""
        with job.condition:
            job.events.append(line)
            job.condition.notify_all()

    # -- the read path --------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every job, submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts_by_state(self) -> dict[str, int]:
        counts = dict.fromkeys(JOB_STATES, 0)
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # -- restart recovery ----------------------------------------------

    def recover(self) -> list[Job]:
        """Rebuild the job table from the manifest; return jobs to re-run.

        * a job whose recorded state is terminal is **replayed**: its
          ledger lines load into the event buffer verbatim, so clients
          re-reading ``/events`` get bit-identical bytes;
        * a job recorded ``queued``/``running`` (the kill interrupted it)
          is returned for re-queueing, carrying its partial ledger as a
          :class:`~repro.api.resume.ResumeLog` when one parses — the
          re-run replays completed cells and executes only the missing
          ones;
        * malformed manifest/ledger tails (the crash's half-written last
          line) are tolerated, exactly like ``--resume`` logs.
        """
        if not self.manifest_path.exists():
            return []
        with self._lock:
            events = []
            with self.manifest_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(event_from_dict(json.loads(line)))
                    except ValueError:
                        continue
            for event in events:
                self._manifest_seq = max(self._manifest_seq, event.seq + 1)
                if isinstance(event, JobSubmitted):
                    try:
                        plan = plan_from_dict(event.plan)
                    except Exception:  # noqa: BLE001 — foreign/stale manifest line
                        continue
                    job = Job(
                        event.job,
                        plan,
                        event.plan,
                        tenant=event.tenant,
                        priority=event.priority,
                        ledger_path=self.root / (
                            event.ledger or f"{event.job}.jsonl"
                        ),
                        submitted_at=event.submitted_at,
                    )
                    self._jobs[job.id] = job
                    self._order.append(job.id)
                    self.submitted_per_tenant[job.tenant] = (
                        self.submitted_per_tenant.get(job.tenant, 0) + 1
                    )
                    if event.job.startswith("j"):
                        digits = event.job[1:]
                        if digits.isdigit():
                            self._next_id = max(self._next_id, int(digits) + 1)
                elif isinstance(event, JobStateChanged):
                    job = self._jobs.get(event.job)
                    if job is None:
                        continue
                    job.state = event.state
                    job.error = event.error
                    if event.state == "running":
                        job.started_at = event.at
                    elif event.state in TERMINAL_STATES:
                        job.finished_at = event.at
            to_requeue: list[Job] = []
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.terminal:
                    job.replayed = True
                    job.events = self._ledger_lines(job)
                    continue
                job.resume = self._ledger_resume(job)
                job.state = "queued"
                to_requeue.append(job)
        return to_requeue

    @staticmethod
    def _ledger_lines(job: Job) -> list[str]:
        if job.ledger_path is None or not job.ledger_path.exists():
            return []
        lines = job.ledger_path.read_text(encoding="utf-8").splitlines()
        return [line for line in lines if line.strip()]

    @staticmethod
    def _ledger_resume(job: Job) -> ResumeLog | None:
        """The partial ledger as a resume source, when it holds any
        completed campaign (an unparseable or empty ledger re-runs all)."""
        if job.ledger_path is None or not job.ledger_path.exists():
            return None
        try:
            log = ResumeLog.load(job.ledger_path)
        except Exception:  # noqa: BLE001 — unusable ledger: full re-run
            return None
        return log if log.n_completed else None
