"""A stdlib HTTP client for the ``repro serve`` daemon.

:class:`DaemonClient` speaks the daemon's small JSON surface over
``urllib`` — it backs ``repro submit`` / ``repro jobs`` and is the
programmatic way to drive a daemon from tests and notebooks.  Errors the
daemon reports (bad plan, full queue, draining, unknown job) surface as
:class:`DaemonClientError` carrying the HTTP status and the daemon's own
message, so CLI handling can treat them like any other operator error.

Connection-level failures (daemon restarting, socket not yet bound) are
retried with jittered exponential backoff before giving up; HTTP errors
are answers from a live daemon and are never retried.
"""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request
from pathlib import Path

from repro.faults.plane import fire as _fire
from repro.utils.retry import with_retries

__all__ = ["DaemonClient", "DaemonClientError"]


class DaemonClientError(RuntimeError):
    """The daemon refused a request (or was unreachable)."""

    def __init__(self, message: str, status: int | None = None) -> None:
        self.status = status
        super().__init__(message)


class DaemonClient:
    """Talk to one daemon at ``url`` (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        *,
        retries: int = 3,
        retry_rng: random.Random | None = None,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(1, retries)
        self.retry_rng = retry_rng

    # -- plumbing -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
        stream: bool = False,
        timeout: float | None = None,
    ):
        def attempt():
            request = urllib.request.Request(
                self.url + path, data=body, method=method
            )
            if body is not None:
                request.add_header("Content-Type", content_type)
            try:
                # Failpoint before the socket ever opens: an injected
                # URLError here exercises the same retry schedule a real
                # connection refusal would.
                _fire("daemon.client.conn-drop")
                return urllib.request.urlopen(
                    request,
                    timeout=self.timeout if timeout is None else timeout,
                )
            except urllib.error.HTTPError as error:
                # A status line is the daemon answering; surface it as-is
                # (POSTs are not safely repeatable anyway).
                detail = ""
                try:
                    detail = json.loads(error.read().decode()).get("error", "")
                except Exception:  # noqa: BLE001 — error body is best-effort
                    pass
                raise DaemonClientError(
                    detail or f"{error.code} {error.reason}", status=error.code
                ) from None

        try:
            # Only the connection-level URLError is transient — the
            # daemon may be mid-restart or its socket not yet bound.
            response = with_retries(
                attempt,
                retryable=(urllib.error.URLError,),
                attempts=self.retries,
                rng=self.retry_rng,
            )
        except DaemonClientError:
            raise
        except urllib.error.URLError as error:
            raise DaemonClientError(
                f"cannot reach daemon at {self.url}: {error.reason}"
            ) from None
        if stream:
            return response
        with response:
            return json.loads(response.read().decode() or "null")

    # -- the API --------------------------------------------------------

    def submit_plan(
        self,
        plan: "dict | str | Path",
        tenant: str = "default",
        priority: int = 0,
    ) -> dict:
        """Submit a plan (dict, or a ``.json``/``.toml`` file path).

        File submissions ship the raw bytes with the matching content
        type — the daemon does the parsing/validation, so client and
        server can never disagree about what a plan means.
        """
        if isinstance(plan, (str, Path)):
            path = Path(plan)
            body = path.read_bytes()
            content_type = (
                "application/toml" if path.suffix.lower() == ".toml"
                else "application/json"
            )
        else:
            body = json.dumps(plan).encode()
            content_type = "application/json"
        query = f"?tenant={tenant}&priority={priority}"
        return self._request(
            "POST", f"/v1/plans{query}", body=body, content_type=content_type
        )

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, tenant: str | None = None, state: str | None = None) -> list:
        query = "&".join(
            f"{key}={value}"
            for key, value in (("tenant", tenant), ("state", state))
            if value is not None
        )
        suffix = f"?{query}" if query else ""
        return self._request("GET", f"/v1/jobs{suffix}")["jobs"]

    def events(self, job_id: str) -> list[dict]:
        """The job's recorded events so far, parsed from its NDJSON."""
        response = self._request(
            "GET", f"/v1/jobs/{job_id}/events", stream=True
        )
        with response:
            return [
                json.loads(line)
                for line in response.read().decode().splitlines()
                if line.strip()
            ]

    def event_lines(self, job_id: str) -> list[str]:
        """The job's raw ledger lines — for bit-identity assertions."""
        response = self._request(
            "GET", f"/v1/jobs/{job_id}/events", stream=True
        )
        with response:
            return [
                line
                for line in response.read().decode().splitlines()
                if line.strip()
            ]

    def follow(self, job_id: str, timeout: float | None = None):
        """Yield event dicts live until the job reaches a terminal state.

        ``timeout`` bounds each read, not the whole job (default: no
        bound — jobs can legitimately run for a long time).
        """
        response = self._request(
            "GET",
            f"/v1/jobs/{job_id}/events?follow=1",
            stream=True,
            timeout=timeout if timeout is not None else 86400.0,
        )
        with response:
            for raw in response:
                line = raw.decode().strip()
                if line:
                    yield json.loads(line)

    def metrics_text(self) -> str:
        response = self._request("GET", "/metrics", stream=True)
        with response:
            return response.read().decode()

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit (``POST /v1/shutdown``)."""
        return self._request("POST", "/v1/shutdown", body=b"")
